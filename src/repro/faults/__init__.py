"""Deterministic fault-injection harness for the regulation stack.

The paper evaluates MS Manners on healthy machines; this package probes the
implementation's behaviour on *unhealthy* ones.  A :class:`FaultPlan` is a
seeded, reproducible schedule of faults — clock steps, stalled and crashed
threads, failing disks, torn target files, raising telemetry sinks — that a
:class:`FaultInjector` fires into a running simulation.  Named end-to-end
chaos scenarios (:mod:`repro.faults.scenarios`, ``repro faults run``) pair
each fault with the resilience mechanism that must absorb it and report
pass/fail plus a determinism fingerprint through the obs event stream.

See ``docs/robustness.md`` for the fault model and the degraded-mode
contract each scenario enforces.
"""

from repro.faults.injector import FaultInjector, SkewedTime
from repro.faults.plan import IPC_FAULTS, KNOWN_FAULTS, FaultPlan, FaultSpec
from repro.faults.scenarios import (
    SCENARIOS,
    ScenarioReport,
    fingerprint_key,
    load_fingerprints,
    record_fingerprints,
    recorded_fingerprint,
    run_scenario,
)
from repro.faults.stores import FlakySink, FlakyTargetStore, corrupt_target_file

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "KNOWN_FAULTS",
    "IPC_FAULTS",
    "FaultInjector",
    "SkewedTime",
    "FlakyTargetStore",
    "FlakySink",
    "corrupt_target_file",
    "ScenarioReport",
    "SCENARIOS",
    "run_scenario",
    "fingerprint_key",
    "load_fingerprints",
    "recorded_fingerprint",
    "record_fingerprints",
]
