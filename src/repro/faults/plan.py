"""Seedable, deterministic fault schedules.

A :class:`FaultPlan` is an immutable, time-ordered list of
:class:`FaultSpec` entries.  Plans are data: they can be written by hand
for a named scenario or generated pseudo-randomly from a seed, and the same
plan against the same simulation seed always reproduces the same run —
the property the chaos scenarios' determinism fingerprints verify.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import FaultError

__all__ = ["FaultSpec", "FaultPlan", "KNOWN_FAULTS", "IPC_FAULTS"]

#: IPC-level fault kinds, realized by the regulator daemon's chaos engine
#: (:mod:`repro.daemon.chaos`) against the JSON-line worker protocol:
#: dropped, delayed, duplicated, or truncated frames, a peer that goes
#: silent mid-conversation, and process-level kills of a worker or of the
#: daemon itself (``daemon_kill`` is fired by the soak harness, which owns
#: the daemon process).
IPC_FAULTS = frozenset(
    {
        "msg_drop",
        "msg_delay",
        "msg_dup",
        "frame_truncate",
        "peer_hang",
        "worker_kill",
        "daemon_kill",
    }
)

#: Every fault kind any part of the harness understands.  The kernel-level
#: kinds are dispatched by :class:`repro.faults.injector.FaultInjector`;
#: ``save_fail``/``torn_file``/``sink_raise`` are realized by the seams in
#: :mod:`repro.faults.stores` and the scenario harness; the
#: :data:`IPC_FAULTS` kinds by the daemon chaos engine.
KNOWN_FAULTS = (
    frozenset(
        {
            "clock_backstep",
            "clock_jump",
            "stall",
            "unstall",
            "crash",
            "disk_fail",
            "save_fail",
            "torn_file",
            "sink_raise",
        }
    )
    | IPC_FAULTS
)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One planned fault.

    Attributes:
        at: Simulation time (engine frame, seconds) at which to fire.
        kind: One of :data:`KNOWN_FAULTS`.
        target: The victim — a thread name, disk name, or app id,
            depending on ``kind``.
        param: Kind-specific magnitude: seconds of clock skew for the
            clock kinds, failure count for ``disk_fail``/``save_fail``.
    """

    at: float
    kind: str
    target: str = ""
    param: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.at) or self.at < 0.0:
            raise FaultError(f"fault time must be finite and >= 0, got {self.at}")
        if self.kind not in KNOWN_FAULTS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; known: {sorted(KNOWN_FAULTS)}"
            )
        if not math.isfinite(self.param):
            raise FaultError(f"fault param must be finite, got {self.param}")


class FaultPlan:
    """A time-ordered, immutable schedule of faults."""

    __slots__ = ("specs",)

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(
            sorted(specs, key=lambda s: (s.at, s.kind, s.target))
        )

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        """Iterate over the specs in firing order."""
        return iter(self.specs)

    def of_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        """The plan's specs of one kind, in firing order."""
        return tuple(s for s in self.specs if s.kind == kind)

    @classmethod
    def generate(
        cls,
        seed: int,
        duration: float = 100.0,
        count: int = 5,
        kinds: Sequence[str] = ("clock_backstep", "clock_jump", "stall", "disk_fail"),
        targets: Sequence[str] = ("w1",),
    ) -> "FaultPlan":
        """Pseudo-randomly generate a plan; same seed, same plan.

        Faults land in the middle 80% of ``duration`` so the run has time
        to bootstrap before chaos and to recover after it.  A ``stall``
        automatically gets a paired ``unstall`` 5-15 seconds later.
        """
        if count < 1:
            raise FaultError(f"count must be >= 1, got {count}")
        if not math.isfinite(duration) or duration <= 0.0:
            raise FaultError(f"duration must be finite and positive, got {duration}")
        for kind in kinds:
            if kind not in KNOWN_FAULTS:
                raise FaultError(f"unknown fault kind {kind!r}")
        if not kinds or not targets:
            raise FaultError("kinds and targets must be non-empty")
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        for _ in range(count):
            at = rng.uniform(0.1 * duration, 0.9 * duration)
            kind = rng.choice(tuple(kinds))
            target = rng.choice(tuple(targets))
            if kind == "clock_backstep":
                param = rng.uniform(1.0, 10.0)
            elif kind == "clock_jump":
                param = rng.uniform(60.0, 3600.0)
            elif kind in ("disk_fail", "save_fail"):
                param = float(rng.randint(1, 3))
            elif kind == "msg_delay":
                param = rng.uniform(0.5, 2.0)
            elif kind == "peer_hang":
                param = rng.uniform(1.5, 4.0)
            else:
                param = 0.0
            specs.append(FaultSpec(at=at, kind=kind, target=target, param=param))
            if kind == "stall":
                specs.append(
                    FaultSpec(
                        at=at + rng.uniform(5.0, 15.0),
                        kind="unstall",
                        target=target,
                    )
                )
        return cls(specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({len(self.specs)} specs)"
