"""Fires planned faults into a running simulation.

:class:`FaultInjector` owns the kernel-level fault kinds — clock skew,
thread stalls and crashes, disk failures — arming a
:class:`~repro.faults.plan.FaultPlan` onto the event engine and emitting a
:class:`~repro.obs.events.FaultInjected` event at each firing so traces
show the fault right next to the regulation stack's reaction.

:class:`SkewedTime` is the clock seam: a callable time source (for
:class:`~repro.simos.sim_manners.SimManners`'s ``time_source`` hook) that
adds a fault-controlled offset to honest engine time, modelling a stepped
or leaping OS clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.errors import FaultError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import events as obs_events
from repro.simos.engine import SimulationError
from repro.simos.kernel import Kernel, SimThread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["SkewedTime", "FaultInjector"]

#: Fault kinds this injector can dispatch directly.
_DISPATCHABLE = frozenset(
    {"clock_backstep", "clock_jump", "stall", "unstall", "crash", "disk_fail"}
)


class SkewedTime:
    """Honest time plus a fault-controlled offset.

    Models the clock the regulation library actually reads: normally it
    tracks true time, but an injected ``clock_backstep`` subtracts from
    the offset (the reading regresses) and a ``clock_jump`` adds to it
    (the reading leaps ahead).  Between faults both clocks advance at the
    same rate.
    """

    __slots__ = ("_base", "offset")

    def __init__(self, base: Callable[[], float]) -> None:
        self._base = base
        #: Current skew in seconds (readings are ``base() + offset``).
        self.offset = 0.0

    def __call__(self) -> float:
        """The skewed reading."""
        return self._base() + self.offset

    def apply(self, kind: str, param: float) -> None:
        """Apply one clock fault (``clock_backstep`` or ``clock_jump``)."""
        if kind == "clock_backstep":
            self.offset -= param
        elif kind == "clock_jump":
            self.offset += param
        else:
            raise FaultError(f"{kind!r} is not a clock fault")


class FaultInjector:
    """Arms a fault plan onto a kernel and dispatches the firings.

    Thread-targeting faults (``stall``/``unstall``/``crash``) resolve
    their targets through :meth:`register_thread`; clock faults require a
    :class:`SkewedTime` (the same instance handed to the simulation's
    regulation stack); ``disk_fail`` targets a kernel disk by name.
    """

    def __init__(
        self,
        kernel: Kernel,
        plan: FaultPlan | None = None,
        telemetry: "Telemetry | None" = None,
        skew: SkewedTime | None = None,
    ) -> None:
        self._kernel = kernel
        self._plan = plan if plan is not None else FaultPlan()
        self._telemetry = telemetry
        self._skew = skew
        self._threads: dict[str, SimThread] = {}
        #: Specs fired so far, in firing order.
        self.fired: list[FaultSpec] = []

    def register_thread(self, thread: SimThread) -> None:
        """Make ``thread`` targetable by its kernel name."""
        self._threads[thread.name] = thread

    def arm(self) -> int:
        """Schedule every dispatchable spec in the plan; return the count.

        Raises :class:`FaultError` if the plan contains a kind this
        injector cannot dispatch (those belong to the store/sink seams)
        or a thread target that was never registered.
        """
        armed = 0
        for spec in self._plan:
            if spec.kind not in _DISPATCHABLE:
                raise FaultError(
                    f"injector cannot dispatch {spec.kind!r}; handle it via "
                    "the store/sink fault seams"
                )
            if spec.kind in ("stall", "unstall", "crash") and (
                spec.target not in self._threads
            ):
                raise FaultError(f"unregistered fault target {spec.target!r}")
            self._kernel.engine.call_at(
                spec.at, self.inject, spec.kind, spec.target, spec.param
            )
            armed += 1
        return armed

    def inject(self, kind: str, target: str = "", param: float = 0.0) -> None:
        """Fire one fault right now (also the armed plan's entry point)."""
        if kind in ("clock_backstep", "clock_jump"):
            if self._skew is None:
                raise FaultError("clock faults require a SkewedTime instance")
            self._skew.apply(kind, param)
        elif kind in ("stall", "unstall", "crash"):
            thread = self._threads.get(target)
            if thread is None:
                raise FaultError(f"unregistered fault target {target!r}")
            if kind == "stall":
                self._kernel.suspend_thread(thread)
            elif kind == "unstall":
                self._kernel.resume_thread(thread)
            else:
                self._kernel.kill_thread(
                    thread, error=SimulationError("injected crash")
                )
        elif kind == "disk_fail":
            self._kernel.inject_disk_fault(target, max(int(param), 1))
        else:
            raise FaultError(f"injector cannot dispatch {kind!r}")
        spec = FaultSpec(at=self._kernel.now, kind=kind, target=target, param=param)
        self.fired.append(spec)
        tel = self._telemetry
        if tel is not None:
            now = self._skew() if self._skew is not None else self._kernel.now
            tel.tick(now)
            tel.emit(
                obs_events.FaultInjected(
                    t=now, src="faults", fault=kind, target=target, param=param
                )
            )
            tel.metrics.inc("faults_injected")
            # Push everything buffered so far — including this fault — to
            # the sinks now.  An attached flight recorder auto-dumps on the
            # fault event, so the dump holds the complete ordered history
            # up to the moment of injection even if the run crashes before
            # the next scheduled batch flush.
            tel.flush()
