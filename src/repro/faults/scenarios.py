"""Named end-to-end chaos scenarios (``repro faults run``).

Each scenario builds a small simulated machine, regulates one or more
low-importance workers under contention, injects one class of fault from a
deterministic plan, and then checks the resilience layer's contract for
that fault: regulation must *continue* — suspensions resume, targets
re-bootstrap where they must, and the obs trace records the injected fault
next to the recovery.  Every run is reproducible from its seed; the
report's ``fingerprint`` hashes the full event trace so repeated runs can
be compared bit-for-bit.

Scenarios (the fault → mechanism pairs of ``docs/robustness.md``):

* ``torn-target-store`` — corrupt persisted targets → quarantine + fresh
  bootstrap (:class:`~repro.core.persistence.TargetStore`, lenient load).
* ``clock-jump`` — backward step and forward leap in the regulation
  clock → clock-anomaly discard + hung discard, calibration preserved.
* ``stalled-thread`` — a worker stops testpointing mid-slot → watchdog
  eviction, sibling runs, stall interval discarded.
* ``crash-mid-suspension`` — a worker dies while parked in its
  testpoint → supervisor frees the slot, siblings keep regulating.
* ``flaky-sink`` — a telemetry sink starts raising → sink isolated,
  trace intact, regulation unaffected.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.config import MannersConfig
from repro.core.errors import FaultError
from repro.core.persistence import TargetStore
from repro.faults.injector import FaultInjector, SkewedTime
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.stores import FlakySink, corrupt_target_file
from repro.obs import events as obs_events
from repro.obs.sinks import EventSink, FanoutSink, MemorySink
from repro.obs.telemetry import Telemetry
from repro.obs.trace2 import Tracer
from repro.simos.effects import Delay, DiskRead
from repro.simos.kernel import Kernel
from repro.simos.sim_manners import MannersTestpoint, SimManners

__all__ = [
    "ScenarioReport",
    "SCENARIOS",
    "run_scenario",
    "fingerprint_key",
    "load_fingerprints",
    "recorded_fingerprint",
    "record_fingerprints",
]

#: Recorded determinism fingerprints, keyed ``"<scenario>:<seed>"``.  The
#: file ships with the package; ``repro faults run`` compares every run
#: against it and exits non-zero on drift, so an accidental determinism
#: regression (reordered events, a stray wall-clock read) fails CI
#: instead of silently invalidating the scenarios' reproducibility claim.
#: Regenerate deliberately with ``repro faults run --record-fingerprints``.
FINGERPRINT_FILE = Path(__file__).with_name("fingerprints.json")


def fingerprint_key(name: str, seed: int) -> str:
    """The recorded-fingerprint key for one (scenario, seed) run."""
    return f"{name}:{seed}"


def load_fingerprints(path: Path | None = None) -> dict[str, str]:
    """The recorded fingerprints; empty when none have been recorded."""
    source = path if path is not None else FINGERPRINT_FILE
    try:
        data = json.loads(source.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return {}
    if not isinstance(data, dict):
        return {}
    return {str(k): str(v) for k, v in data.items()}


def recorded_fingerprint(name: str, seed: int, path: Path | None = None) -> str | None:
    """The recorded fingerprint for one run, or ``None`` if unrecorded."""
    return load_fingerprints(path).get(fingerprint_key(name, seed))


def record_fingerprints(
    entries: Mapping[str, str], path: Path | None = None
) -> Path:
    """Merge fingerprints into the recorded file; returns its path."""
    target = path if path is not None else FINGERPRINT_FILE
    merged = load_fingerprints(target)
    merged.update({str(k): str(v) for k, v in entries.items()})
    target.write_text(
        json.dumps(dict(sorted(merged.items())), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


@dataclass
class ScenarioReport:
    """Outcome of one chaos-scenario run.

    ``ok`` is the scenario's pass/fail verdict; ``checks`` lists each
    individual assertion with its result so a failing run explains
    itself.  ``fingerprint`` is a hash over the full event trace (kind,
    timestamp, source): equal seeds must produce equal fingerprints.
    """

    name: str
    seed: int
    ok: bool
    sim_time: float
    testpoints: int
    suspensions: int
    resumes: int
    injected: tuple[str, ...]
    anomalies: tuple[str, ...]
    recoveries: tuple[str, ...]
    fingerprint: str
    checks: tuple[tuple[str, bool], ...] = field(default_factory=tuple)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation (for ``repro faults run --json``)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "sim_time": self.sim_time,
            "testpoints": self.testpoints,
            "suspensions": self.suspensions,
            "resumes": self.resumes,
            "injected": list(self.injected),
            "anomalies": list(self.anomalies),
            "recoveries": list(self.recoveries),
            "fingerprint": self.fingerprint,
            "checks": [{"check": name, "ok": ok} for name, ok in self.checks],
        }


def _chaos_config(**overrides: Any) -> MannersConfig:
    """A fast-converging config so scenarios finish in seconds of sim time."""
    settings: dict[str, Any] = dict(
        bootstrap_testpoints=6,
        probation_period=0.0,
        # Slow target drift: the bootstrap-calibrated (uncontended) target
        # stays authoritative for the whole run, so contention keeps
        # producing POOR judgments instead of being re-learned as normal.
        averaging_n=5000,
        min_testpoint_interval=0.05,
        initial_suspension=0.5,
        max_suspension=16.0,
    )
    settings.update(overrides)
    return MannersConfig(**settings)


def _worker(n: int):
    """A low-importance disk worker reporting one cumulative counter."""
    done = 0.0
    yield MannersTestpoint((done,))
    for i in range(n):
        yield DiskRead("C", (i * 37) % 100_000, 65536)
        done += 1.0
        yield MannersTestpoint((done,))


def _hog(start: float, n: int):
    """High-importance interference: unregulated disk load from ``start``."""
    yield Delay(start)
    for i in range(n):
        yield DiskRead("C", (i * 53 + 7) % 100_000, 65536)


def _make_sink(extra_sink: EventSink | None) -> tuple[MemorySink, EventSink]:
    """The scenario's in-memory trace, optionally teed to ``extra_sink``."""
    memory = MemorySink()
    if extra_sink is None:
        return memory, memory
    return memory, FanoutSink(memory, extra_sink)


def _chaos_telemetry(sink: EventSink, tracer: Tracer | None = None) -> Telemetry:
    """Scenario telemetry with causal tracing on.

    Every scenario traces its decisions so a ``repro obs explain`` over
    the teed trace can reconstruct any suspension the run produced.
    Scenarios that restart the stack mid-run pass a shared ``tracer`` so
    span ids stay unique across the whole trace.
    """
    return Telemetry(
        sink=sink, label="chaos", tracer=tracer if tracer is not None else Tracer()
    )


def _summarize(
    name: str,
    seed: int,
    memory: MemorySink,
    sim_time: float,
    checks: list[tuple[str, bool]],
) -> ScenarioReport:
    """Fold the event trace and check results into a report."""
    events = memory.events
    fingerprint = hashlib.sha256(
        "\n".join(f"{e.kind}:{e.t!r}:{e.src}" for e in events).encode("utf-8")
    ).hexdigest()[:16]
    return ScenarioReport(
        name=name,
        seed=seed,
        ok=all(ok for _, ok in checks),
        sim_time=sim_time,
        testpoints=sum(1 for e in events if e.kind == obs_events.TestpointProcessed.kind),
        suspensions=sum(1 for e in events if e.kind == obs_events.SuspensionStarted.kind),
        resumes=sum(1 for e in events if e.kind == obs_events.SuspensionEnded.kind),
        injected=tuple(e.fault for e in events if e.kind == obs_events.FaultInjected.kind),
        anomalies=tuple(
            e.anomaly for e in events if e.kind == obs_events.AnomalyDetected.kind
        ),
        recoveries=tuple(
            e.action for e in events if e.kind == obs_events.RecoveryAction.kind
        ),
        fingerprint=fingerprint,
        checks=tuple(checks),
    )


def _scenario_torn_target_store(
    seed: int, extra_sink: EventSink | None = None
) -> ScenarioReport:
    """Persist calibrated targets, tear the file, restart leniently.

    The restart must quarantine the corrupt file as ``*.corrupt``,
    re-bootstrap from scratch, and still regulate under contention.
    """
    memory, sink = _make_sink(extra_sink)
    config = _chaos_config()
    app_id = "chaos-app"
    checks: list[tuple[str, bool]] = []
    with tempfile.TemporaryDirectory(prefix="manners-chaos-") as tmp:
        # Phase 1: calibrate under contention and persist the targets.
        kernel1 = Kernel(seed=seed)
        kernel1.add_disk("C")
        tracer = Tracer()
        tel1 = _chaos_telemetry(sink, tracer)
        manners1 = SimManners(kernel1, config, telemetry=tel1)
        w1 = kernel1.spawn("w1", _worker(600), process="li")
        reg1 = manners1.regulate(w1)
        kernel1.spawn("hog", _hog(5.0, 400), process="hog")
        kernel1.run(until=60.0)
        store1 = TargetStore(tmp)
        store1.save(app_id, reg1.export_state())
        corrupt_target_file(store1, app_id, mode="torn")
        tel1.tick(kernel1.now)
        tel1.emit(
            obs_events.FaultInjected(
                t=kernel1.now, src="faults", fault="torn_file", target=app_id
            )
        )

        # Phase 2: restart against the torn file with a lenient store.
        kernel2 = Kernel(seed=seed)
        kernel2.add_disk("C")
        tel2 = _chaos_telemetry(sink, tracer)
        manners2 = SimManners(kernel2, config, telemetry=tel2)
        store2 = TargetStore(tmp, strict=False, telemetry=tel2)
        w2 = kernel2.spawn("w1", _worker(800), process="li")
        reg2 = manners2.regulate(w2, store=store2, app_id=app_id)
        kernel2.spawn("hog", _hog(5.0, 600), process="hog")
        end = kernel2.run(until=120.0)

        quarantine = store2.quarantine_path_for(app_id)
        checks.append(("corrupt file quarantined", quarantine.exists()))
        checks.append(("quarantine recorded", len(store2.quarantined) == 1))
        checks.append(
            ("re-bootstrapped from scratch", reg2.stats.processed > config.bootstrap_testpoints)
        )
        trace = manners2.traces[w2]
        checks.append(
            ("still regulating after restart", any(r.delay > 0.0 for r in trace.records))
        )
        checks.append(("worker kept progressing", len(trace.records) > 50))
    return _summarize("torn-target-store", seed, memory, end, checks)


def _scenario_clock_jump(
    seed: int, extra_sink: EventSink | None = None
) -> ScenarioReport:
    """Step the regulation clock backwards, then leap it an hour ahead.

    The backward step must be discarded by the controller's clock guard
    and the leap by the hung discard; calibration survives both and
    regulation continues in the shifted timeline.
    """
    memory, sink = _make_sink(extra_sink)
    config = _chaos_config()
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    tel = _chaos_telemetry(sink)
    skew = SkewedTime(lambda: kernel.now)
    manners = SimManners(kernel, config, telemetry=tel, time_source=skew)
    w1 = kernel.spawn("w1", _worker(20000), process="li")
    reg = manners.regulate(w1)
    kernel.spawn("hog", _hog(10.0, 20000), process="hog")
    plan = FaultPlan(
        [
            # Backstep lands before contention starts, while the worker is
            # testpointing every few milliseconds, so the guard (not a
            # parked suspension) absorbs it.
            FaultSpec(at=8.0, kind="clock_backstep", target="clock", param=5.0),
            FaultSpec(at=80.0, kind="clock_jump", target="clock", param=3600.0),
        ]
    )
    injector = FaultInjector(kernel, plan, telemetry=tel, skew=skew)
    injector.arm()
    end = kernel.run(until=200.0)

    trace = manners.traces[w1]
    samples_before_jump = reg.stats.calibration_samples
    checks = [
        ("backward step discarded", reg.stats.clock_anomalies >= 1),
        ("forward leap discarded as hung", reg.stats.hung_discards >= 1),
        (
            "worker progressed past the leap",
            any(r.when > 3600.0 for r in trace.records),
        ),
        (
            "still suspending after the leap",
            any(r.when > 3600.0 and r.delay > 0.0 for r in trace.records),
        ),
        ("calibration preserved", samples_before_jump > config.bootstrap_testpoints),
    ]
    return _summarize("clock-jump", seed, memory, end, checks)


def _scenario_stalled_thread(
    seed: int, extra_sink: EventSink | None = None
) -> ScenarioReport:
    """Stall a worker mid-slot; the watchdog must evict it early.

    With ``watchdog_multiplier`` enabled the supervisor learns each
    thread's testpoint spacing and evicts a stalled slot owner long
    before the hung threshold, letting the sibling run; the stalled
    thread's post-resume interval is discarded.
    """
    memory, sink = _make_sink(extra_sink)
    config = _chaos_config(watchdog_multiplier=8.0)
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    tel = _chaos_telemetry(sink)
    manners = SimManners(kernel, config, telemetry=tel)
    w1 = kernel.spawn("w1", _worker(3000), process="li")
    w2 = kernel.spawn("w2", _worker(3000), process="li")
    reg1 = manners.regulate(w1)
    manners.regulate(w2)
    sup = manners.supervisor("li")
    injector = FaultInjector(kernel, telemetry=tel)
    injector.register_thread(w1)
    injector.register_thread(w2)
    stall_window: dict[str, float] = {}

    def attempt() -> None:
        """Stall w1 the moment it owns the execution slot."""
        if not w1.alive:
            return
        if sup.running is w1 and not w1.suspended:
            stall_window["start"] = kernel.now
            stall_window["end"] = kernel.now + 20.0
            injector.inject("stall", "w1", 20.0)
            kernel.engine.call_after(20.0, injector.inject, "unstall", "w1")
        else:
            kernel.engine.call_after(0.5, attempt)

    kernel.engine.call_at(30.0, attempt)
    end = kernel.run(until=150.0)

    trace1 = manners.traces[w1]
    trace2 = manners.traces[w2]
    start = stall_window.get("start", float("inf"))
    stop = stall_window.get("end", float("inf"))
    checks = [
        ("stall was injected", "start" in stall_window),
        ("watchdog noticed the stall", reg1.stats.forced_discards >= 1),
        (
            "sibling ran during the stall",
            any(start < r.when < stop for r in trace2.records),
        ),
        (
            "stalled worker resumed",
            any(r.when > stop for r in trace1.records),
        ),
    ]
    return _summarize("stalled-thread", seed, memory, end, checks)


def _scenario_crash_mid_suspension(
    seed: int, extra_sink: EventSink | None = None
) -> ScenarioReport:
    """Kill a worker while it is parked serving a suspension.

    The supervisor must free the dead thread's slot so the sibling keeps
    regulating; the kernel run completes without error.
    """
    memory, sink = _make_sink(extra_sink)
    config = _chaos_config()
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    tel = _chaos_telemetry(sink)
    manners = SimManners(kernel, config, telemetry=tel)
    w1 = kernel.spawn("w1", _worker(20000), process="li")
    w2 = kernel.spawn("w2", _worker(20000), process="li")
    manners.regulate(w1)
    manners.regulate(w2)
    kernel.spawn("hog", _hog(5.0, 20000), process="hog")
    injector = FaultInjector(kernel, telemetry=tel)
    injector.register_thread(w1)
    crashed: dict[str, float] = {}

    def attempt() -> None:
        """Kill w1 the moment it is parked in a testpoint with a delay."""
        if not w1.alive:
            return
        trace = manners.traces[w1]
        parked_suspended = (
            w1.blocked_on == "manners"
            and bool(trace.records)
            and trace.records[-1].delay > 0.0
        )
        if parked_suspended:
            crashed["at"] = kernel.now
            injector.inject("crash", "w1")
        else:
            kernel.engine.call_after(0.25, attempt)

    kernel.engine.call_at(20.0, attempt)
    end = kernel.run(until=150.0)

    trace2 = manners.traces[w2]
    killed_at = crashed.get("at", float("inf"))
    checks = [
        ("crash was injected", "at" in crashed),
        ("victim is dead", not w1.alive),
        (
            "sibling kept testpointing after the crash",
            any(r.when > killed_at for r in trace2.records),
        ),
        (
            "sibling still regulated after the crash",
            any(r.when > killed_at and r.delay > 0.0 for r in trace2.records),
        ),
    ]
    return _summarize("crash-mid-suspension", seed, memory, end, checks)


def _scenario_flaky_sink(
    seed: int, extra_sink: EventSink | None = None
) -> ScenarioReport:
    """Run with a telemetry sink that starts raising mid-run.

    The fanout must isolate the bad sink after bounded failures; the
    in-memory trace stays complete and regulation is unaffected.
    """
    memory = MemorySink()
    flaky = FlakySink(fail_after=50)
    children: list[EventSink] = [memory, flaky]
    if extra_sink is not None:
        children.append(extra_sink)
    fanout = FanoutSink(*children)
    tel = _chaos_telemetry(fanout)
    config = _chaos_config()
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    manners = SimManners(kernel, config, telemetry=tel)
    w1 = kernel.spawn("w1", _worker(1500), process="li")
    reg = manners.regulate(w1)
    kernel.spawn("hog", _hog(5.0, 1000), process="hog")
    tel.emit(
        obs_events.FaultInjected(
            t=kernel.now,
            src="faults",
            fault="sink_raise",
            target="sink[1]",
            param=float(flaky.fail_after),
        )
    )
    end = kernel.run(until=90.0)

    tel.tick(kernel.now)
    tel.emit(
        obs_events.AnomalyDetected(
            t=kernel.now,
            src="faults",
            anomaly="sink_failure",
            value=float(flaky.raised),
            detail="injected sink failure",
        )
    )
    tel.emit(
        obs_events.RecoveryAction(
            t=kernel.now, src="faults", action="sink_disabled", detail="sink[1]"
        )
    )
    trace = manners.traces[w1]
    checks = [
        ("bad sink isolated", not fanout.enabled(1)),
        ("good sink never dropped", fanout.enabled(0)),
        ("memory trace intact", len(memory.events) > len(trace.records)),
        ("regulation unaffected", reg.stats.processed > config.bootstrap_testpoints),
        ("still suspending", any(r.delay > 0.0 for r in trace.records)),
    ]
    return _summarize("flaky-sink", seed, memory, end, checks)


#: Registry of named chaos scenarios: name -> ``fn(seed, extra_sink)``.
SCENARIOS: dict[str, Callable[[int, EventSink | None], ScenarioReport]] = {
    "torn-target-store": _scenario_torn_target_store,
    "clock-jump": _scenario_clock_jump,
    "stalled-thread": _scenario_stalled_thread,
    "crash-mid-suspension": _scenario_crash_mid_suspension,
    "flaky-sink": _scenario_flaky_sink,
}


def run_scenario(
    name: str, seed: int = 1, extra_sink: EventSink | None = None
) -> ScenarioReport:
    """Run one named scenario; ``extra_sink`` tees the event trace.

    Raises :class:`~repro.core.errors.FaultError` for an unknown name.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise FaultError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        )
    return scenario(seed, extra_sink)
