"""Fault seams for persistence and telemetry I/O.

These are drop-in replacements for the real
:class:`~repro.core.persistence.TargetStore` and event sinks whose
failures are injected on command, exercising the retry, quarantine, and
sink-isolation paths of the resilience layer without touching a real
filesystem fault.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.errors import FaultError
from repro.core.persistence import TargetStore
from repro.obs.events import Event

__all__ = ["FlakyTargetStore", "FlakySink", "corrupt_target_file"]


class FlakyTargetStore(TargetStore):
    """A :class:`TargetStore` whose next N write attempts fail on command.

    :meth:`fail_next` arms injected :class:`OSError` failures at the
    *write-attempt* level, beneath the store's retry loop — so arming one
    failure exercises retry-then-succeed, and arming more failures than
    ``save_retries + 1`` exercises the exhausted-retries
    :class:`~repro.core.errors.PersistenceError` path.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: Write attempts that will fail (decremented per attempt).
        self._fail_attempts = 0
        #: Total write attempts observed, failed or not.
        self.write_attempts = 0

    def fail_next(self, count: int = 1) -> None:
        """Arm the next ``count`` write attempts to raise ``OSError``."""
        if count < 1:
            raise FaultError(f"fail count must be >= 1, got {count}")
        self._fail_attempts += count

    def _write_atomically(self, path: Any, document: Mapping[str, Any]) -> None:
        self.write_attempts += 1
        if self._fail_attempts > 0:
            self._fail_attempts -= 1
            raise OSError("injected write failure")
        super()._write_atomically(path, document)


class FlakySink:
    """An event sink that starts raising after ``fail_after`` emits.

    Used to verify sink-failure isolation: a bad sink must cost telemetry,
    never regulation.  ``emitted`` counts successful deliveries and
    ``raised`` the refused ones.
    """

    __slots__ = ("fail_after", "emitted", "raised")

    def __init__(self, fail_after: int = 0) -> None:
        if fail_after < 0:
            raise FaultError(f"fail_after must be >= 0, got {fail_after}")
        self.fail_after = fail_after
        self.emitted = 0
        self.raised = 0

    def emit(self, event: Event) -> None:
        """Accept the event, or raise once the failure point is reached."""
        if self.emitted >= self.fail_after:
            self.raised += 1
            raise RuntimeError("injected sink failure")
        self.emitted += 1

    def close(self) -> None:
        """Nothing to release."""


def corrupt_target_file(
    store: TargetStore, app_id: str, mode: str = "torn"
) -> None:
    """Damage ``app_id``'s persisted target file in a controlled way.

    Modes: ``"torn"`` truncates the JSON mid-document (a torn write from a
    crash without atomic rename), ``"garbage"`` replaces it with
    non-JSON bytes, ``"bad_version"`` writes valid JSON with an unknown
    format version.  Raises :class:`FaultError` if no file exists yet.
    """
    path = store.path_for(app_id)
    if not path.exists():
        raise FaultError(f"no target file to corrupt for {app_id!r}")
    if mode == "torn":
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: max(len(text) // 2, 1)], encoding="utf-8")
    elif mode == "garbage":
        path.write_bytes(b"\x00\xff not json \xfe")
    elif mode == "bad_version":
        path.write_text(
            json.dumps({"version": 999_999, "state": {}}), encoding="utf-8"
        )
    else:
        raise FaultError(f"unknown corruption mode {mode!r}")
