"""Bounded in-memory flight recorder for post-mortem telemetry.

A :class:`FlightRecorder` is an :class:`~repro.obs.sinks.EventSink` that
keeps the last ``capacity`` events (spans included) in a ring buffer and
snapshots them to disk when something goes wrong — the observability
equivalent of an aircraft's crash-survivable recorder.  Composed into the
sink chain (typically via :class:`~repro.obs.sinks.FanoutSink` next to the
primary trace sink), it costs one deque append per event and nothing else
until a dump triggers.

Dumps trigger two ways:

* **automatically**, when a trigger event flows through ``emit``:
  a :class:`~repro.obs.events.FaultInjected` event (``repro.faults``
  injected a fault), an :class:`~repro.obs.events.AnomalyDetected` tagged
  ``invariant:*`` (a verify monitor recorded a violation), or a
  :class:`~repro.obs.events.RecoveryAction` with ``action ==
  "slot_released"`` (a regulated thread crashed);
* **manually**, via :meth:`FlightRecorder.dump` with a caller-supplied
  reason.

Each dump file is ordinary JSONL readable by
:func:`repro.obs.report.read_events` and ``repro obs explain``: a
:class:`~repro.obs.events.FlightRecorderDump` header line followed by the
buffered events, oldest first, in their original emission order.  File
names are deterministic (``flightrec-0001-<reason>.jsonl``, a
monotone per-recorder sequence) so seeded scenarios produce identical
artifacts run to run.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Deque

from repro.obs.events import (
    AnomalyDetected,
    Event,
    FaultInjected,
    FlightRecorderDump,
    RecoveryAction,
    event_to_dict,
)

__all__ = ["FlightRecorder", "DEFAULT_CAPACITY"]

#: Default ring size: enough for several regulation cycles of spans and
#: events, small enough to be invisible in memory.
DEFAULT_CAPACITY = 256


def _slug(reason: str) -> str:
    """A filesystem-safe fragment of the dump reason."""
    cleaned = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
    return cleaned.strip("-")[:40] or "dump"


def _is_trigger(event: Event) -> bool:
    if isinstance(event, FaultInjected):
        return True
    if isinstance(event, AnomalyDetected):
        return event.anomaly.startswith("invariant:")
    if isinstance(event, RecoveryAction):
        return event.action == "slot_released"
    return False


class FlightRecorder:
    """Ring-buffer sink that snapshots recent telemetry on failure triggers."""

    __slots__ = (
        "capacity",
        "dump_dir",
        "auto_trigger",
        "dropped",
        "dumps",
        "dump_paths",
        "_ring",
        "_seq",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        dump_dir: str | os.PathLike[str] | None = None,
        auto_trigger: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dump_dir = os.fspath(dump_dir) if dump_dir is not None else None
        #: Whether fault/violation/crash events dump automatically.
        self.auto_trigger = auto_trigger
        #: Events discarded by the ring (beyond ``capacity``) since start.
        self.dropped = 0
        #: In-memory snapshots, one ``(header, events)`` pair per dump.
        self.dumps: list[tuple[FlightRecorderDump, tuple[Event, ...]]] = []
        #: Paths of dump files written (empty when ``dump_dir`` is unset).
        self.dump_paths: list[str] = []
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._seq = 0

    # -- EventSink protocol ----------------------------------------------------
    def emit(self, event: Event) -> None:
        """Record one event; auto-dump when it is a failure trigger."""
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append(event)
        if self.auto_trigger and _is_trigger(event):
            self.dump(self._trigger_reason(event), t=event.t)

    def close(self) -> None:
        """Nothing held open between dumps."""

    # -- dumping ---------------------------------------------------------------
    @staticmethod
    def _trigger_reason(event: Event) -> str:
        if isinstance(event, FaultInjected):
            return f"fault-{event.fault}"
        if isinstance(event, AnomalyDetected):
            return event.anomaly.replace(":", "-")
        return "crash"

    @property
    def last_dump(self) -> tuple[FlightRecorderDump, tuple[Event, ...]] | None:
        """The most recent snapshot, or ``None`` before any trigger."""
        return self.dumps[-1] if self.dumps else None

    def dump(self, reason: str, t: float = 0.0) -> str | None:
        """Snapshot the ring now; returns the file path when one is written.

        The snapshot is always retained in :attr:`dumps`; a JSONL file is
        written only when the recorder was given a ``dump_dir``.  Write
        failures are absorbed (a flight recorder must never turn an
        observability problem into a regulation outage).
        """
        events = tuple(self._ring)
        self._seq += 1
        header = FlightRecorderDump(
            t=t,
            src="flightrec",
            reason=reason,
            captured=len(events),
            dropped=self.dropped,
        )
        self.dumps.append((header, events))
        if self.dump_dir is None:
            return None
        path = os.path.join(
            self.dump_dir, f"flightrec-{self._seq:04d}-{_slug(reason)}.jsonl"
        )
        try:
            os.makedirs(self.dump_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(event_to_dict(header)) + "\n")
                for event in events:
                    handle.write(json.dumps(event_to_dict(event)) + "\n")
        except OSError:
            return None
        self.dump_paths.append(path)
        return path
