"""Causal decision tracing for the regulation pipeline (trace v2).

The paper's central claim is that regulation decisions are explainable
from progress rates alone: a suspension happens because the sign test
accumulated enough below-target samples (§4.2) against a calibrated
target (§4.3).  Flat point events cannot answer "why was thread X
suspended at t=412s, and with what evidence?" without re-running the
simulation; :class:`~repro.obs.events.Span` records can.  Every pipeline
step — testpoint sample, sign-test accumulation, judgment, calibration
update, suspension/backoff decision — emits one span carrying its
decision inputs and a causal ``parent`` link (plus ``links`` from a
judgment to every sample in its window), so a suspension reconstructs as
a tree rooted at the testpoints that caused it.

Span names and their causal edges::

    testpoint ──────────────┬─> signtest_sample ─┐ (links)
        │ (parent)          │                    ├─> judgment ─> suspension
        └─> calibration_update                   │       └─────> backoff_reset
                            └────────────────────┘ (parent of judgment =
                                                    triggering testpoint)

plus parentless ``watchdog_eviction`` and ``violation`` spans from the
supervisor watchdog and the verify monitors.

Three pieces live here:

* :class:`Tracer` — the run-wide span-id allocator (deterministic:
  ids are assigned in emission order, starting at 1; 0 means "no
  parent").
* :class:`TraceContext` — the per-scope causal cursor a
  :class:`~repro.obs.telemetry.Telemetry` handle carries when tracing is
  on.  Emission sites read/update it to thread parent links through the
  pipeline without the components knowing about each other.
* :func:`explain` / :func:`explain_events` — reconstruct and render the
  causal audit trail of one suspension decision (the ``repro obs
  explain`` CLI verb).

Zero-cost contract: components reach the tracer only through
``telemetry.trace_ctx``, which is ``None`` unless a tracer was attached —
the disabled path stays one attribute load inside blocks that already
required ``telemetry is not None`` and ``telemetry.emitting``.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.core.errors import MannersError
from repro.obs.events import Event, Span

__all__ = [
    "Tracer",
    "TraceContext",
    "SPAN_NAMES",
    "spans_of",
    "span_index",
    "explain",
    "explain_events",
]

#: Every span name the pipeline emits, for validation and docs.
SPAN_NAMES: tuple[str, ...] = (
    "testpoint",
    "signtest_sample",
    "judgment",
    "suspension",
    "backoff_reset",
    "calibration_update",
    "watchdog_eviction",
    "violation",
)


class Tracer:
    """Run-wide span-id allocator shared by every scope of one telemetry root.

    Ids are handed out in emission order starting at 1 (0 is the null
    parent), so a seeded scenario produces the identical span forest on
    every run — the determinism ``repro obs explain`` relies on.
    """

    __slots__ = ("_next_id",)

    def __init__(self) -> None:
        self._next_id = 1

    @property
    def spans_issued(self) -> int:
        """How many span ids have been allocated so far."""
        return self._next_id - 1

    def next_id(self) -> int:
        """Allocate the next span id."""
        span_id = self._next_id
        self._next_id = span_id + 1
        return span_id


class TraceContext:
    """Per-scope causal cursor: the most recent span ids of each pipeline step.

    One context per telemetry scope (i.e. per regulated thread), all
    sharing the root's :class:`Tracer`.  The controller stamps
    ``testpoint`` on every processed testpoint; the comparator appends
    sample span ids to ``window`` and stamps ``judgment`` when a window
    closes; the suspension timer and calibrator read those cursors as
    parent links.
    """

    __slots__ = ("tracer", "testpoint", "window", "judgment")

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        #: Span id of the scope's current testpoint span (0 = none yet).
        self.testpoint = 0
        #: Sample span ids accumulated in the open sign-test window.
        self.window: list[int] = []
        #: Span id of the scope's most recent judgment span (0 = none yet).
        self.judgment = 0

    def new_id(self) -> int:
        """Allocate a span id from the shared tracer."""
        return self.tracer.next_id()


# -- reconstruction -----------------------------------------------------------


def spans_of(events: Iterable[Event]) -> list[Span]:
    """The span records of a trace, in emission order."""
    return [e for e in events if isinstance(e, Span)]


def span_index(spans: Iterable[Span]) -> dict[int, Span]:
    """Spans keyed by ``span_id`` for parent/link chasing."""
    return {s.span_id: s for s in spans}


def _pick_suspension(
    spans: Sequence[Span], thread: str, at: float | None
) -> Span:
    """The suspension span to explain: latest for ``thread`` at/before ``at``."""
    candidates = [s for s in spans if s.name == "suspension" and s.src == thread]
    if not candidates:
        threads = sorted({s.src for s in spans if s.name == "suspension"})
        hint = f" (threads with suspensions: {', '.join(threads)})" if threads else ""
        raise MannersError(
            f"no suspension spans for thread {thread!r} in trace{hint}"
        )
    if at is not None:
        eligible = [s for s in candidates if s.t <= at]
        if not eligible:
            raise MannersError(
                f"no suspension of thread {thread!r} at or before t={at}; "
                f"the first is at t={candidates[0].t:.1f}s"
            )
        return eligible[-1]
    return candidates[-1]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _threshold_line(attrs: dict) -> str:
    poor_at, good_at = attrs.get("poor_at"), attrs.get("good_at")
    n = attrs.get("samples", attrs.get("n"))
    if poor_at is None and good_at is None:
        return ""
    parts = []
    if poor_at is not None:
        parts.append(f"POOR at >= {poor_at} below")
    if good_at is not None:
        parts.append(f"GOOD at <= {good_at} below")
    return f"threshold row n={n}: " + ", ".join(parts)


def _describe_testpoint(span: Span) -> str:
    a = span.attrs
    bits = [f"testpoint #{span.span_id} at t={span.t:.1f}s"]
    if "duration" in a:
        bits.append(f"measured {_fmt(a['duration'])}s")
    target = a.get("target")
    if target is not None:
        bits.append(f"target {_fmt(target)}s")
    if a.get("probation"):
        bits.append("probation")
    if not a.get("calibrated", True):
        bits.append("uncalibrated")
    return ", ".join(bits)


def _describe_sample(span: Span, index: dict[int, Span]) -> list[str]:
    a = span.attrs
    verdict = "below target" if a.get("below") else "at/above target"
    lines = [
        f"sample {a.get('n', '?')} at t={span.t:.1f}s: "
        f"measured {_fmt(a.get('measured', '?'))}s vs "
        f"target {_fmt(a.get('target', '?'))}s ({verdict}; "
        f"{a.get('below_count', '?')} below so far)"
    ]
    threshold = _threshold_line(a)
    if threshold:
        lines.append(f"  {threshold}")
    parent = index.get(span.parent)
    if parent is not None and parent.name == "testpoint":
        lines.append(f"  from {_describe_testpoint(parent)}")
    return lines


def _backoff_history(spans: Sequence[Span], upto: Span) -> list[str]:
    """The doubling ladder that led to ``upto``: suspensions of the same
    thread since the last backoff reset (or the start of trace)."""
    history: list[Span] = []
    for s in spans:
        if s.src != upto.src or s.t > upto.t:
            continue
        if s.name == "backoff_reset":
            history.clear()
        elif s.name == "suspension":
            history.append(s)
            if s is upto:
                break
    return [
        f"level {s.attrs.get('level', '?')}: {_fmt(s.attrs.get('delay', '?'))}s "
        f"at t={s.t:.1f}s"
        for s in history
    ]


def explain_events(
    events: Iterable[Event], thread: str, at: float | None = None
) -> str:
    """Render the causal audit trail of one suspension decision.

    Walks the span forest from the chosen suspension span (the latest for
    ``thread``, or the latest at/before ``at``) back to the testpoint
    samples that caused it: suspension -> judgment -> sign-test samples
    (with the threshold-table row active at each step) -> testpoints, plus
    the backoff-doubling ladder since the last reset.  Raises
    :class:`~repro.core.errors.MannersError` when the trace has no
    matching decision — the CLI maps that to a non-zero exit.
    """
    spans = spans_of(events)
    if not spans:
        raise MannersError(
            "trace contains no spans; re-run with tracing enabled "
            "(repro faults run writes spans by default)"
        )
    index = span_index(spans)
    suspension = _pick_suspension(spans, thread, at)
    a = suspension.attrs
    out = [
        f"why was {thread!r} suspended at t={suspension.t:.1f}s?",
        "",
        f"suspension #{suspension.span_id}: {_fmt(a.get('delay', '?'))}s "
        f"at backoff level {a.get('level', '?')}"
        + (
            f" (probation floor raised it by {_fmt(a['probation_delay'])}s)"
            if a.get("probation_delay")
            else ""
        ),
    ]
    judgment = index.get(suspension.parent)
    if judgment is not None and judgment.name == "judgment":
        ja = judgment.attrs
        out.append(
            f"└─ judgment #{judgment.span_id}: {str(ja.get('judgment', '?')).upper()} "
            f"at t={judgment.t:.1f}s — {ja.get('below', '?')} of "
            f"{ja.get('samples', '?')} window samples below target"
        )
        threshold = _threshold_line(ja)
        if threshold:
            out.append(f"   {threshold}")
        if "time_to_detect" in ja:
            out.append(
                f"   time to detect: {_fmt(ja['time_to_detect'])}s "
                "from window open to verdict"
            )
        samples = [
            index[sid]
            for sid in judgment.links
            if sid in index and index[sid].name == "signtest_sample"
        ]
        for sample in samples:
            first, *rest = _describe_sample(sample, index)
            out.append(f"   ├─ {first}")
            out.extend(f"   │ {line}" for line in rest)
        trigger = index.get(judgment.parent)
        if trigger is not None and trigger.name == "testpoint":
            out.append(f"   └─ decided at {_describe_testpoint(trigger)}")
    else:
        parent = index.get(suspension.parent)
        if parent is not None and parent.name == "testpoint":
            out.append(f"└─ imposed at {_describe_testpoint(parent)} (no new judgment)")
        else:
            out.append("└─ no recorded judgment (probation floor or carry-over delay)")
    ladder = _backoff_history(spans, suspension)
    if len(ladder) > 1:
        out.append("")
        out.append("backoff doubling since last reset:")
        out.extend(f"  {line}" for line in ladder)
    return "\n".join(out)


def explain(
    path: str | os.PathLike[str], thread: str, at: float | None = None
) -> str:
    """:func:`explain_events` over a JSONL trace file."""
    from repro.obs.report import read_events

    return explain_events(read_events(path), thread, at=at)
