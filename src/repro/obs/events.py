"""Typed, versioned telemetry event records.

Every regulation-relevant moment in the system is described by one of the
frozen dataclasses below.  Events are *data*: they carry a substrate
timestamp ``t`` (simulated or wall-clock seconds — whatever clock the
embedding substrate feeds the regulator), a ``src`` label identifying the
emitting scope (usually a thread or process name), and kind-specific
fields.  They never hold live object references, so a JSONL trace written
on one machine replays losslessly on another.

Serialization: :func:`event_to_dict` produces a flat JSON-safe dict with
two envelope keys — ``k`` (the event kind) and ``v`` (the schema version)
— and :func:`event_from_dict` reverses it.  Bump
:data:`EVENT_SCHEMA_VERSION` whenever a field is removed or changes
meaning; :func:`event_from_dict` refuses versions it does not understand
rather than silently misreading them.  Purely additive changes (a new
event kind, a new field with a default) keep the version: old traces read
under the new schema and vice versa, because deserialization ignores
unknown keys and fills absent fields from their defaults.

Enum-valued quantities (judgments) are carried as their string values so
that a trace is self-describing without importing this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Mapping

from repro.core.errors import MannersError

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "Event",
    "Span",
    "FlightRecorderDump",
    "TestpointProcessed",
    "JudgmentIssued",
    "SuspensionStarted",
    "SuspensionEnded",
    "BackoffReset",
    "CalibrationSample",
    "TargetUpdated",
    "PhaseTransition",
    "SampleDiscarded",
    "SlotGranted",
    "SlotEvicted",
    "TokenHandoff",
    "BeNicePoll",
    "FaultInjected",
    "AnomalyDetected",
    "RecoveryAction",
    "event_to_dict",
    "event_from_dict",
]

#: Version stamped into every serialized event (the ``v`` envelope key).
EVENT_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class Event:
    """Common envelope of all telemetry events."""

    #: Discriminator used in the serialized form's ``k`` key.
    kind: ClassVar[str] = "event"

    #: Substrate timestamp, in seconds (simulated or wall clock).
    t: float
    #: Emitting scope — typically a thread or process label.
    src: str = ""


@dataclass(frozen=True, slots=True)
class Span(Event):
    """One causally-linked step of a regulation decision (``repro.obs.trace2``).

    Spans form a forest over the regulation pipeline: each carries a
    run-unique ``span_id``, the ``span_id`` of its causal ``parent`` (0 =
    root), and optional additional causal ``links`` (a judgment span links
    every sign-test sample in its window).  ``name`` identifies the pipeline
    step (``"testpoint"``, ``"signtest_sample"``, ``"judgment"``,
    ``"suspension"``, ``"backoff_reset"``, ``"calibration_update"``,
    ``"watchdog_eviction"``, ``"violation"``); ``attrs`` carries the step's
    decision inputs as JSON-scalar values (samples seen, threshold-table
    row, target rate, probation state, ...).  Spans compare by value like
    every other event (batched-vs-direct parity), but are not hashable
    (``attrs`` is a dict).
    """

    kind: ClassVar[str] = "span"

    span_id: int = 0
    parent: int = 0
    links: tuple[int, ...] = ()
    name: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class FlightRecorderDump(Event):
    """Header record of a flight-recorder snapshot file.

    Written as the first line of every dump so the file is self-describing:
    ``reason`` names the trigger (``"fault"``, ``"violation"``,
    ``"crash"``, or a caller-supplied label), ``captured`` counts the
    buffered events that follow, and ``dropped`` counts the older events
    the ring buffer had already discarded.
    """

    kind: ClassVar[str] = "flightrec_dump"

    reason: str = ""
    captured: int = 0
    dropped: int = 0


@dataclass(frozen=True, slots=True)
class TestpointProcessed(Event):
    """One processed (non-lightweight) testpoint and its full decision."""

    kind: ClassVar[str] = "testpoint"

    set_index: int = 0
    duration: float = 0.0
    target_duration: float | None = None
    deltas: tuple[float, ...] = ()
    delay: float = 0.0
    judgment: str | None = None
    calibrated: bool = False
    bootstrap: bool = False
    probation_delay: float = 0.0
    off_protocol: bool = False
    discarded_hung: bool = False


@dataclass(frozen=True, slots=True)
class JudgmentIssued(Event):
    """The statistical comparator closed a sign-test window."""

    kind: ClassVar[str] = "judgment"

    judgment: str = ""
    #: Samples in the window that produced the verdict.
    samples: int = 0
    #: Below-target samples among them.
    below: int = 0


@dataclass(frozen=True, slots=True)
class SuspensionStarted(Event):
    """A POOR judgment (or probation cap) imposed a suspension."""

    kind: ClassVar[str] = "suspension_started"

    delay: float = 0.0
    #: Consecutive-poor backoff level after this judgment (1 = first poor).
    level: int = 0


@dataclass(frozen=True, slots=True)
class SuspensionEnded(Event):
    """The substrate released a thread after serving its suspension."""

    kind: ClassVar[str] = "suspension_ended"

    #: Seconds the thread actually spent suspended/parked.
    slept: float = 0.0


@dataclass(frozen=True, slots=True)
class BackoffReset(Event):
    """A GOOD judgment reset the exponential backoff to its initial value."""

    kind: ClassVar[str] = "backoff_reset"

    #: Consecutive-poor level the timer was at before the reset.
    from_level: int = 0


@dataclass(frozen=True, slots=True)
class CalibrationSample(Event):
    """One on-protocol sample was folded into a metric set's calibrator."""

    kind: ClassVar[str] = "calibration_sample"

    set_index: int = 0
    duration: float = 0.0
    deltas: tuple[float, ...] = ()


@dataclass(frozen=True, slots=True)
class TargetUpdated(Event):
    """A calibrator's target changed after absorbing a sample."""

    kind: ClassVar[str] = "target_updated"

    set_index: int = 0
    sample_count: int = 0
    #: Calibrated rate for single-metric sets; ``None`` for regression sets.
    target_rate: float | None = None
    #: Median-correction factor, when the calibrator tracks one.
    scale: float | None = None


@dataclass(frozen=True, slots=True)
class PhaseTransition(Event):
    """A regulator crossed a lifecycle boundary.

    ``phase`` values: ``"bootstrap"`` (priming testpoint seen),
    ``"regulating"`` (bootstrap testpoints exhausted), and
    ``"probation_ended"`` (the probationary duty-cycle cap expired).
    """

    kind: ClassVar[str] = "phase"

    phase: str = ""


@dataclass(frozen=True, slots=True)
class SampleDiscarded(Event):
    """A measured interval contributed no calibration/rate information.

    ``reason`` is ``"hung"`` (interval exceeded the hung threshold —
    presumed external delay) or ``"subsample"`` (off-protocol testpoint
    excluded from calibration, section 4.3).
    """

    kind: ClassVar[str] = "discard"

    reason: str = ""
    duration: float = 0.0


@dataclass(frozen=True, slots=True)
class SlotGranted(Event):
    """A supervisor seated a thread in its process's execution slot."""

    kind: ClassVar[str] = "slot_granted"

    process: str = ""
    thread: str = ""


@dataclass(frozen=True, slots=True)
class SlotEvicted(Event):
    """A supervisor evicted the slot owner as hung."""

    kind: ClassVar[str] = "slot_evicted"

    process: str = ""
    thread: str = ""
    #: Seconds since the evicted thread last testpointed or was released.
    idle_for: float = 0.0


@dataclass(frozen=True, slots=True)
class TokenHandoff(Event):
    """The machine-wide execution token changed hands.

    ``action`` is ``"acquired"`` or ``"released"``.
    """

    kind: ClassVar[str] = "token"

    process: str = ""
    action: str = ""


@dataclass(frozen=True, slots=True)
class BeNicePoll(Event):
    """One BeNice suspend-poll-resume cycle and its outcome."""

    kind: ClassVar[str] = "benice_poll"

    interval: float = 0.0
    changed: bool = False
    delay: float = 0.0


@dataclass(frozen=True, slots=True)
class FaultInjected(Event):
    """The fault-injection harness fired one planned fault.

    Emitted by :mod:`repro.faults` at the moment a fault takes effect, so a
    trace shows the injected failure right next to the regulator's reaction
    to it.  ``fault`` names the fault kind (``"clock_backstep"``,
    ``"clock_jump"``, ``"stall"``, ``"unstall"``, ``"crash"``,
    ``"disk_fail"``, ``"torn_file"``, ``"save_fail"``, ``"sink_raise"``,
    and the daemon's IPC kinds ``"msg_drop"``, ``"msg_delay"``,
    ``"msg_dup"``, ``"frame_truncate"``, ``"peer_hang"``,
    ``"worker_kill"``); ``target`` identifies the victim (a thread,
    store, sink, or worker label).
    """

    kind: ClassVar[str] = "fault"

    fault: str = ""
    target: str = ""
    param: float = 0.0


@dataclass(frozen=True, slots=True)
class AnomalyDetected(Event):
    """A resilience guard rejected an implausible observation (§4.1).

    ``anomaly`` values: ``"clock_backward"`` (timestamp regressed),
    ``"zero_elapsed"`` (testpoint with no elapsed time),
    ``"rate_spike"`` (measured rate implausibly above target),
    ``"corrupt_target"`` (persisted target file unreadable),
    ``"save_failure"`` (target save attempt failed),
    ``"watchdog_stall"`` (regulated thread stopped testpointing),
    ``"sink_failure"`` (a telemetry sink raised),
    ``"metric_error"`` (a counter read produced unusable values).
    The daemon (:mod:`repro.daemon.server`) adds: ``"protocol_error"``
    (handshake or frame violated the wire protocol),
    ``"protocol_mismatch"`` (peer spoke an unsupported version),
    ``"bad_frame"`` (damaged inbound line skipped),
    ``"peer_unresponsive"`` (worker silent past the heartbeat timeout),
    ``"worker_lost"`` (registered worker's connection dropped),
    ``"worker_exit"`` (supervised worker subprocess died),
    ``"worker_spawn_failed"`` (worker subprocess could not start),
    ``"journal_torn"`` (write-ahead journal ended in a damaged record),
    ``"restore_mismatch"`` (restored state digest differed from the
    journaled digest).
    """

    kind: ClassVar[str] = "anomaly"

    anomaly: str = ""
    value: float = 0.0
    detail: str = ""


@dataclass(frozen=True, slots=True)
class RecoveryAction(Event):
    """The resilience layer's compensating action for a detected anomaly.

    ``action`` values: ``"sample_discarded"`` (anomalous measurement
    excluded from calibration and judgment), ``"quarantine"`` (corrupt
    target file set aside as ``*.corrupt``), ``"rebootstrap"`` (regulation
    restarted from fresh calibration), ``"save_retry"`` (persistence retried
    after a write failure), ``"save_skipped"`` (snapshot dropped after
    retries were exhausted), ``"watchdog_release"`` (stalled thread evicted
    so siblings run), ``"slot_released"`` (crashed thread's execution slot
    reclaimed), ``"sink_disabled"`` (failing telemetry sink isolated).
    The daemon (:mod:`repro.daemon.server`) adds: ``"retransmit_absorbed"``
    (dropped request recovered by the client's retransmit),
    ``"resend_served"`` (retransmitted request answered from the decision
    cache), ``"duplicate_discarded"`` (client dropped a duplicated reply),
    ``"bad_frame_skipped"`` (client skipped a truncated frame),
    ``"delayed_delivery"`` (delayed frame still served),
    ``"hang_recovered"`` (daemon resumed after going silent),
    ``"worker_evicted"`` (unresponsive worker disconnected, slot freed),
    ``"worker_restarted"`` (dead worker subprocess respawned),
    ``"reconnect_rebound"`` (reconnecting worker displaced its old
    session), ``"state_restored"`` (calibration restored from
    journal/snapshot at startup), ``"journal_truncated"`` (torn journal
    tail quarantined, valid prefix kept), ``"drain_flush"`` (graceful
    shutdown persisted all targets).
    """

    kind: ClassVar[str] = "recovery"

    action: str = ""
    detail: str = ""


#: Registry of concrete event classes by serialized kind.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        Span,
        FlightRecorderDump,
        TestpointProcessed,
        JudgmentIssued,
        SuspensionStarted,
        SuspensionEnded,
        BackoffReset,
        CalibrationSample,
        TargetUpdated,
        PhaseTransition,
        SampleDiscarded,
        SlotGranted,
        SlotEvicted,
        TokenHandoff,
        BeNicePoll,
        FaultInjected,
        AnomalyDetected,
        RecoveryAction,
    )
}

_FIELDS_CACHE: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELDS_CACHE.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))
        _FIELDS_CACHE[cls] = names
    return names


def event_to_dict(event: Event) -> dict[str, Any]:
    """Serialize an event to a flat JSON-safe dict (with ``k``/``v`` keys)."""
    out: dict[str, Any] = {"k": event.kind, "v": EVENT_SCHEMA_VERSION}
    for name in _field_names(type(event)):
        value = getattr(event, name)
        if isinstance(value, tuple):
            value = list(value)
        out[name] = value
    return out


def event_from_dict(data: Mapping[str, Any]) -> Event:
    """Reconstruct an event serialized by :func:`event_to_dict`."""
    version = data.get("v")
    if version != EVENT_SCHEMA_VERSION:
        raise MannersError(
            f"unsupported telemetry event schema version {version!r} "
            f"(this build reads version {EVENT_SCHEMA_VERSION})"
        )
    kind = data.get("k")
    cls = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise MannersError(f"unknown telemetry event kind {kind!r}")
    kwargs: dict[str, Any] = {}
    for name in _field_names(cls):
        if name not in data:
            continue
        value = data[name]
        if value is not None:
            if name == "deltas":
                value = tuple(float(v) for v in value)
            elif name == "links":
                value = tuple(int(v) for v in value)
        kwargs[name] = value
    return cls(**kwargs)
