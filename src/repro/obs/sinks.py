"""Event sinks: where emitted telemetry events go.

Three implementations of the one-method ``emit(event)`` protocol:

* :class:`NullSink` — swallows events; the default inside a
  :class:`~repro.obs.telemetry.Telemetry` handle so that attaching a
  registry without a trace file costs only the event construction.
* :class:`MemorySink` — appends events to a list; for tests and for the
  in-process trace recorders.
* :class:`JsonlSink` — serializes each event as one JSON line to a file,
  durable across runs and readable by ``repro obs summarize``.

Sinks never raise out of ``emit`` paths into the regulator; a sink that
fails would otherwise convert an observability problem into a regulation
outage.  :class:`JsonlSink` therefore records write errors in
``write_errors`` and drops the event instead of propagating.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import IO, Protocol, runtime_checkable

from repro.obs.events import Event, event_to_dict

__all__ = ["EventSink", "NullSink", "MemorySink", "JsonlSink", "FanoutSink"]


@runtime_checkable
class EventSink(Protocol):
    """Destination for telemetry events."""

    def emit(self, event: Event) -> None:
        """Accept one event (must not raise into the caller)."""
        ...  # pragma: no cover - protocol stub

    def close(self) -> None:
        """Flush and release any underlying resources."""
        ...  # pragma: no cover - protocol stub


class NullSink:
    """Discards every event."""

    __slots__ = ()

    def emit(self, event: Event) -> None:
        """Discard the event."""

    def close(self) -> None:
        """Nothing to release."""


class MemorySink:
    """Keeps every event in order, for tests and in-process analysis."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        """Append the event."""
        self.events.append(event)

    def close(self) -> None:
        """Nothing to release (events remain available)."""

    def of_kind(self, kind: str) -> list[Event]:
        """The recorded events of one kind, oldest first."""
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> list[str]:
        """Event kinds in emission order (with repeats)."""
        return [e.kind for e in self.events]


class JsonlSink:
    """Writes one JSON object per event to a file.

    The file handle is opened eagerly (so misconfiguration fails at setup,
    not mid-run) and buffered by the underlying stream; call :meth:`close`
    (or use the sink as a context manager) to flush.
    """

    __slots__ = ("path", "write_errors", "_handle")

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self.write_errors = 0
        self._handle: IO[str] | None = open(self.path, "w", encoding="utf-8")

    def emit(self, event: Event) -> None:
        """Serialize and write the event; failures are counted, not raised."""
        if self._handle is None:
            self.write_errors += 1
            return
        try:
            self._handle.write(json.dumps(event_to_dict(event)) + "\n")
        except (OSError, ValueError, TypeError):
            self.write_errors += 1

    def close(self) -> None:
        """Flush and close the trace file (idempotent)."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FanoutSink:
    """Duplicates every event to several child sinks, isolating failures.

    A child whose ``emit`` raises is charged one failure; after
    ``max_failures`` consecutive-or-not failures the child is *disabled*
    (with a single :class:`RuntimeWarning`) and receives no further events,
    while the remaining children keep the trace flowing.  A raising sink is
    an observability problem and must never become a regulation outage.
    """

    __slots__ = (
        "sinks",
        "failures",
        "last_errors",
        "max_failures",
        "_enabled",
        "_warned",
    )

    def __init__(self, *sinks: EventSink, max_failures: int = 3) -> None:
        if max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got {max_failures}")
        self.sinks: tuple[EventSink, ...] = tuple(sinks)
        self.failures = [0 for _ in self.sinks]
        #: Per-child most recent emit exception (``None`` until one fails),
        #: so diagnostics can say *which* sink failed and *how*.
        self.last_errors: list[BaseException | None] = [None for _ in self.sinks]
        self.max_failures = max_failures
        self._enabled = [True for _ in self.sinks]
        self._warned = [False for _ in self.sinks]

    def emit(self, event: Event) -> None:
        """Forward the event to every still-enabled child."""
        for i, sink in enumerate(self.sinks):
            if not self._enabled[i]:
                continue
            try:
                sink.emit(event)
            except Exception as exc:
                self.failures[i] += 1
                self.last_errors[i] = exc
                if self.failures[i] >= self.max_failures:
                    self._enabled[i] = False
                    if not self._warned[i]:
                        self._warned[i] = True
                        warnings.warn(
                            f"telemetry sink {type(sink).__name__} ({sink!r}) "
                            f"disabled after {self.failures[i]} emit failures; "
                            f"last error: {type(exc).__name__}: {exc}; "
                            "regulation continues without it",
                            RuntimeWarning,
                            stacklevel=2,
                        )

    def close(self) -> None:
        """Close every child, swallowing close-time errors."""
        for sink in self.sinks:
            try:
                sink.close()
            except Exception:
                pass

    def enabled(self, index: int) -> bool:
        """Whether child ``index`` is still receiving events."""
        return self._enabled[index]

    @property
    def disabled_sinks(self) -> tuple[EventSink, ...]:
        """The children that have been isolated after repeated failures."""
        return tuple(
            sink for i, sink in enumerate(self.sinks) if not self._enabled[i]
        )
