"""The ``Telemetry`` handle threaded through instrumented components.

One handle bundles an event sink, a metrics registry, and the current
substrate time.  Components accept ``telemetry: Telemetry | None = None``
and guard every emission with ``if telemetry is not None`` — when absent,
the instrumented path costs exactly one branch: no clock reads, no event
allocation, no dictionary lookups.  This keeps :mod:`repro.core` pure and
deterministic with telemetry off (the tier-1 guarantee).

Time: the core components are time-fed — they receive ``now`` from their
substrate and never read a clock.  The handle follows the same discipline:
the outermost instrumented call site (the regulator's testpoint, the
supervisor's poll, the BeNice loop) calls :meth:`Telemetry.tick` with the
substrate's ``now``, and deeper components (comparator, calibrator,
suspension timer) stamp their events with :attr:`Telemetry.now`.

Scoping: :meth:`Telemetry.scoped` derives a child handle that shares the
sink, registry, and clock but carries its own ``label`` (stamped into each
event's ``src`` field), so per-thread regulators emit attributable events
without the event sites knowing about threads.

Batching: by default every :meth:`Telemetry.emit` hands the event straight
to the sink.  Constructing with ``batch_interval=<seconds>`` instead
buffers hot-loop events and flushes them once per simulated interval (at
the :meth:`Telemetry.tick` that crosses the boundary), when the buffer
reaches ``batch_limit``, or at :meth:`Telemetry.flush`/:meth:`close`.
Buffering preserves emission order exactly — the sink sees the same events
in the same sequence, just in bursts — so summaries and traces are
bit-identical batched vs. unbatched (guarded by tests/obs).
"""

from __future__ import annotations

import math
import warnings
from typing import Any

from repro.obs.events import Event
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import EventSink, FanoutSink, NullSink
from repro.obs.trace2 import TraceContext, Tracer

__all__ = ["Telemetry", "scope_label"]

#: Emit failures tolerated before the sink is disabled for the run.
_SINK_FAILURE_LIMIT = 3


def scope_label(entity: Any) -> str:
    """A human-readable label for a thread/process identity.

    Simulated threads expose ``.name``; realtime thread ids and process
    keys fall back to ``str``.
    """
    name = getattr(entity, "name", None)
    if isinstance(name, str) and name:
        return name
    return str(entity)


class Telemetry:
    """Sink + metrics + substrate clock, shared by one regulation stack."""

    __slots__ = (
        "sink",
        "metrics",
        "label",
        "emitting",
        "batch_interval",
        "tracer",
        "trace_ctx",
        "flight_recorder",
        "_root",
        "_now",
        "_sink_failures",
        "_sink_disabled",
        "_buffer",
        "_batch_limit",
        "_flush_at",
    )

    def __init__(
        self,
        sink: EventSink | None = None,
        metrics: MetricsRegistry | None = None,
        label: str = "",
        batch_interval: float | None = None,
        batch_limit: int = 1024,
        tracer: Tracer | None = None,
        flight_recorder: FlightRecorder | None = None,
    ) -> None:
        if batch_interval is not None and not (batch_interval > 0.0):
            raise ValueError(
                f"batch_interval must be positive, got {batch_interval}"
            )
        if batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {batch_limit}")
        self.sink: EventSink = sink if sink is not None else NullSink()
        if flight_recorder is not None:
            # Tee the recorder into the sink chain; with no primary sink it
            # *is* the sink (the ring alone still enables event emission).
            if isinstance(self.sink, NullSink):
                self.sink = flight_recorder
            else:
                self.sink = FanoutSink(self.sink, flight_recorder)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.label = label
        #: Optional span-id allocator; when set, every scope carries a
        #: :class:`~repro.obs.trace2.TraceContext` and the pipeline emits
        #: causal spans alongside its point events.
        self.tracer = tracer
        self.trace_ctx = TraceContext(tracer) if tracer is not None else None
        self.flight_recorder = flight_recorder
        #: False when the sink is a ``NullSink``: per-testpoint emit sites
        #: may then skip event *construction* entirely (metrics still run).
        self.emitting = not isinstance(self.sink, NullSink)
        #: Simulated seconds between buffered flushes, or ``None`` for
        #: direct (unbatched) emission.
        self.batch_interval = batch_interval
        self._root = self
        self._now = 0.0
        self._sink_failures = 0
        self._sink_disabled = False
        self._buffer: list[Event] | None = (
            [] if batch_interval is not None else None
        )
        self._batch_limit = batch_limit
        self._flush_at = batch_interval if batch_interval is not None else math.inf

    @property
    def now(self) -> float:
        """The most recently ticked substrate time (shared across scopes)."""
        return self._root._now

    def tick(self, now: float) -> None:
        """Feed the substrate's current time (shared across scopes).

        On a batched handle, crossing the flush boundary drains the buffer
        — so batching adds exactly one float compare to the hot tick path.
        """
        root = self._root
        root._now = now
        if now >= root._flush_at:
            root.flush()

    def scoped(self, label: str) -> "Telemetry":
        """A child handle with its own ``src`` label, sharing everything else.

        When tracing is on, the child gets its *own*
        :class:`~repro.obs.trace2.TraceContext` (per-thread causal
        cursors) over the *shared* tracer (run-unique span ids).
        """
        child = object.__new__(Telemetry)
        child.sink = self.sink
        child.metrics = self.metrics
        child.label = label
        child.emitting = self.emitting
        child.tracer = self.tracer
        child.trace_ctx = (
            TraceContext(self.tracer) if self.tracer is not None else None
        )
        child.flight_recorder = self.flight_recorder
        child._root = self._root
        child._now = 0.0  # unused; ``now`` delegates to the root
        return child

    @property
    def sink_failures(self) -> int:
        """Emit failures absorbed so far (shared across scopes)."""
        return self._root._sink_failures

    @property
    def sink_disabled(self) -> bool:
        """Whether the sink was isolated after repeated emit failures."""
        return self._root._sink_disabled

    def emit(self, event: Event) -> None:
        """Hand one event to the sink (or the batch buffer).

        A raising sink is an observability fault, not a regulation fault:
        the exception is absorbed and counted, and after
        ``_SINK_FAILURE_LIMIT`` failures the sink is disabled for the rest
        of the run (one :class:`RuntimeWarning`, regulation unaffected).
        """
        root = self._root
        if root._sink_disabled:
            return
        buffer = root._buffer
        if buffer is not None:
            buffer.append(event)
            if len(buffer) >= root._batch_limit:
                root.flush()
            return
        try:
            self.sink.emit(event)
        except Exception:
            self._note_sink_failure()

    def flush(self) -> None:
        """Drain buffered events to the sink, preserving emission order.

        A no-op on unbatched handles and empty buffers.  Failure isolation
        matches direct emission: each event that raises is counted, and
        once the sink is disabled the rest of the batch is dropped.
        """
        root = self._root
        buffer = root._buffer
        if buffer is not None:
            root._flush_at = root._now + root.batch_interval
            if buffer:
                root._buffer = []
                sink = root.sink
                for event in buffer:
                    if root._sink_disabled:
                        break
                    try:
                        sink.emit(event)
                    except Exception:
                        self._note_sink_failure()

    def _note_sink_failure(self) -> None:
        """Count one emit failure; disable the sink past the limit."""
        root = self._root
        root._sink_failures += 1
        self.metrics.inc("sink_failures")
        if root._sink_failures >= _SINK_FAILURE_LIMIT:
            root._sink_disabled = True
            root.emitting = False
            self.metrics.inc("sink_disabled")
            warnings.warn(
                f"telemetry sink {self.sink!r} disabled after "
                f"{root._sink_failures} emit failures; "
                "regulation continues without telemetry",
                RuntimeWarning,
                stacklevel=2,
            )

    def flight_dump(self, reason: str) -> str | None:
        """Flush buffered events and snapshot the flight recorder, if any.

        Flushing first guarantees the ring holds every event emitted so
        far, in order — the batched-telemetry contract extends to dumps.
        Returns the dump file path when one was written.
        """
        recorder = self._root.flight_recorder
        if recorder is None:
            return None
        self.flush()
        return recorder.dump(reason, t=self._root._now)

    def close(self) -> None:
        """Flush any buffered events and close the sink."""
        self.flush()
        self.sink.close()
