"""Regulation telemetry: structured events, metrics, sinks, and reports.

The paper's whole mechanism is an *inference* — contention is deduced from
progress-rate dynamics — so observing those dynamics is the only way to
debug a misbehaving regulator or compare runs.  This package provides:

* :mod:`repro.obs.events` — typed, versioned event records for every
  regulation-relevant moment (testpoints, judgments, suspensions,
  calibration, slot/token arbitration, BeNice polls);
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry with
  point-in-time snapshots;
* :mod:`repro.obs.sinks` — null (default), in-memory, and JSONL sinks;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` handle threaded
  through the decision engines and substrates;
* :mod:`repro.obs.report` — JSONL trace → regulation timeline + aggregate
  report (the ``repro obs summarize`` CLI).

Overhead contract: every instrumented component accepts
``telemetry: Telemetry | None = None``; with ``None`` (the default) the
added cost is a single pointer comparison per call site — no clock reads,
no allocation — so determinism and the tier-1 suite are unaffected.  See
``docs/observability.md``.
"""

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    AnomalyDetected,
    BackoffReset,
    BeNicePoll,
    CalibrationSample,
    Event,
    FaultInjected,
    JudgmentIssued,
    PhaseTransition,
    RecoveryAction,
    SampleDiscarded,
    SlotEvicted,
    SlotGranted,
    SuspensionEnded,
    SuspensionStarted,
    TargetUpdated,
    TestpointProcessed,
    TokenHandoff,
    event_from_dict,
    event_to_dict,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import read_events, summarize, summarize_file
from repro.obs.sinks import EventSink, FanoutSink, JsonlSink, MemorySink, NullSink
from repro.obs.telemetry import Telemetry, scope_label

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "AnomalyDetected",
    "BackoffReset",
    "BeNicePoll",
    "CalibrationSample",
    "Counter",
    "Event",
    "EventSink",
    "FanoutSink",
    "FaultInjected",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "JudgmentIssued",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "PhaseTransition",
    "RecoveryAction",
    "SampleDiscarded",
    "SlotEvicted",
    "SlotGranted",
    "SuspensionEnded",
    "SuspensionStarted",
    "TargetUpdated",
    "Telemetry",
    "TestpointProcessed",
    "TokenHandoff",
    "event_from_dict",
    "event_to_dict",
    "read_events",
    "scope_label",
    "summarize",
    "summarize_file",
]
