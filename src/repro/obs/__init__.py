"""Regulation telemetry: structured events, metrics, sinks, and reports.

The paper's whole mechanism is an *inference* — contention is deduced from
progress-rate dynamics — so observing those dynamics is the only way to
debug a misbehaving regulator or compare runs.  This package provides:

* :mod:`repro.obs.events` — typed, versioned event records for every
  regulation-relevant moment (testpoints, judgments, suspensions,
  calibration, slot/token arbitration, BeNice polls);
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry with
  point-in-time snapshots;
* :mod:`repro.obs.sinks` — null (default), in-memory, and JSONL sinks;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` handle threaded
  through the decision engines and substrates;
* :mod:`repro.obs.report` — JSONL trace → regulation timeline + aggregate
  report (the ``repro obs summarize`` CLI);
* :mod:`repro.obs.trace2` — causal decision tracing: spans with
  parent/causal links over the whole regulation pipeline, and the
  reconstruction behind ``repro obs explain``;
* :mod:`repro.obs.flightrec` — a bounded ring-buffer flight recorder that
  snapshots the last N spans/events to disk on faults, invariant
  violations, and crashes.

Overhead contract: every instrumented component accepts
``telemetry: Telemetry | None = None``; with ``None`` (the default) the
added cost is a single pointer comparison per call site — no clock reads,
no allocation — so determinism and the tier-1 suite are unaffected.  See
``docs/observability.md``.
"""

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    AnomalyDetected,
    BackoffReset,
    BeNicePoll,
    CalibrationSample,
    Event,
    FaultInjected,
    FlightRecorderDump,
    JudgmentIssued,
    PhaseTransition,
    RecoveryAction,
    SampleDiscarded,
    SlotEvicted,
    SlotGranted,
    Span,
    SuspensionEnded,
    SuspensionStarted,
    TargetUpdated,
    TestpointProcessed,
    TokenHandoff,
    event_from_dict,
    event_to_dict,
)
from repro.obs.flightrec import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    RATE_BUCKETS,
    TICK_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    to_prometheus,
)
from repro.obs.report import (
    metrics_from_events,
    read_events,
    summarize,
    summarize_file,
)
from repro.obs.sinks import EventSink, FanoutSink, JsonlSink, MemorySink, NullSink
from repro.obs.telemetry import Telemetry, scope_label
from repro.obs.trace2 import (
    SPAN_NAMES,
    TraceContext,
    Tracer,
    explain,
    explain_events,
    span_index,
    spans_of,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "RATE_BUCKETS",
    "SPAN_NAMES",
    "TICK_LATENCY_BUCKETS",
    "AnomalyDetected",
    "BackoffReset",
    "BeNicePoll",
    "CalibrationSample",
    "Counter",
    "Event",
    "EventSink",
    "FanoutSink",
    "FaultInjected",
    "FlightRecorder",
    "FlightRecorderDump",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "JudgmentIssued",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "PhaseTransition",
    "RecoveryAction",
    "SampleDiscarded",
    "SlotEvicted",
    "SlotGranted",
    "Span",
    "SuspensionEnded",
    "SuspensionStarted",
    "TargetUpdated",
    "Telemetry",
    "TestpointProcessed",
    "TokenHandoff",
    "TraceContext",
    "Tracer",
    "event_from_dict",
    "event_to_dict",
    "explain",
    "explain_events",
    "metrics_from_events",
    "read_events",
    "scope_label",
    "span_index",
    "spans_of",
    "summarize",
    "summarize_file",
    "to_prometheus",
]
