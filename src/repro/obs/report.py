"""Turn a JSONL telemetry trace into a human-readable regulation report.

Two layers:

* :func:`read_events` — parse a JSONL trace (as written by
  :class:`~repro.obs.sinks.JsonlSink`) back into typed events.
* :func:`summarize` — render a report: event census, regulation timeline
  (phase changes, judgments, suspension/backoff/reset cycles, evictions),
  aggregate table (duty cycle, suspension histogram), and an ASCII plot of
  the suspension backoff over time (via :mod:`repro.analysis.ascii_plot`).

The CLI front end is ``repro obs summarize TRACE.jsonl``.
"""

from __future__ import annotations

import json
import os
from collections import Counter as TallyCounter
from typing import Iterable, Sequence

from repro.analysis.ascii_plot import sparkline, timeseries_plot
from repro.core.errors import MannersError
from repro.obs.events import (
    BackoffReset,
    BeNicePoll,
    Event,
    JudgmentIssued,
    PhaseTransition,
    SampleDiscarded,
    SlotEvicted,
    Span,
    SuspensionEnded,
    SuspensionStarted,
    TestpointProcessed,
    event_from_dict,
)
from repro.obs.metrics import RATE_BUCKETS, MetricsRegistry

__all__ = [
    "read_events",
    "metrics_from_events",
    "summarize",
    "summarize_file",
]

#: Timeline rows beyond this are elided around the middle to keep the
#: report terminal-sized; first and last cycles always survive.
_MAX_TIMELINE_ROWS = 60


def read_events(path: str | os.PathLike[str]) -> list[Event]:
    """Parse a JSONL trace file into typed events (order preserved).

    Raises :class:`~repro.core.errors.MannersError` on malformed input; a
    JSON error on the *final* line is reported as a likely-truncated file
    (a crashed writer leaves a partial last record), so the CLI can give
    an actionable message instead of a bare parse error.
    """
    events: list[Event] = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    last_line = len(lines)
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            if line_number == last_line:
                raise MannersError(
                    f"{path}:{line_number}: trace appears truncated — the "
                    f"final line is not valid JSON ({exc}); the writer "
                    "likely crashed mid-record or the file was cut short"
                ) from exc
            raise MannersError(
                f"{path}:{line_number}: not valid JSON: {exc}"
            ) from exc
        events.append(event_from_dict(data))
    return events


def metrics_from_events(events: Iterable[Event]) -> MetricsRegistry:
    """Rebuild distribution metrics from a trace's events.

    Gives offline traces the same histogram vocabulary the live registry
    uses: ``suspension_delay`` (imposed suspensions), ``suspension_slept``
    (served suspensions), ``progress_rate`` (measured per-testpoint
    progress rates), and ``time_to_detect`` (window-open to verdict, from
    judgment spans).  Powers the percentile section of :func:`summarize`
    and ``repro obs export --format prom``.
    """
    registry = MetricsRegistry()
    for event in events:
        if isinstance(event, SuspensionStarted):
            if event.delay > 0:
                registry.histogram("suspension_delay").observe(event.delay)
        elif isinstance(event, SuspensionEnded):
            if event.slept > 0:
                registry.histogram("suspension_slept").observe(event.slept)
        elif isinstance(event, TestpointProcessed):
            if event.duration > 0 and event.deltas:
                rate = (sum(event.deltas) / len(event.deltas)) / event.duration
                registry.histogram("progress_rate", RATE_BUCKETS).observe(rate)
        elif isinstance(event, Span):
            if event.name == "judgment" and "time_to_detect" in event.attrs:
                registry.histogram("time_to_detect").observe(
                    float(event.attrs["time_to_detect"])
                )
    return registry


def _percentile_lines(registry: MetricsRegistry) -> list[str]:
    lines: list[str] = []
    for name, hist in sorted(registry.histograms().items()):
        if not hist.count:
            continue
        p50, p90, p99 = (hist.quantile(q) for q in (0.5, 0.9, 0.99))
        lines.append(
            f"{name:<18} n={hist.count:<6} "
            f"p50<={p50:<8.3g} p90<={p90:<8.3g} p99<={p99:<8.3g} "
            f"max={hist.max:.3g}"
        )
    return lines


def _timeline_rows(events: Sequence[Event]) -> list[tuple[str, bool]]:
    """``(row, structural)`` pairs; structural rows survive elision.

    Judgments and discards are the routine bulk of a long trace; phase
    changes, suspensions, resets, and evictions are the regulation
    story and must always stay visible.
    """
    rows: list[tuple[str, bool]] = []
    for event in events:
        prefix = f"{event.t:10.1f}s  {event.src or '-':<16} "
        if isinstance(event, PhaseTransition):
            rows.append((prefix + f"phase -> {event.phase}", True))
        elif isinstance(event, JudgmentIssued):
            rows.append(
                (
                    prefix
                    + f"{event.judgment.upper()} "
                    + f"({event.below}/{event.samples} below target)",
                    False,
                )
            )
        elif isinstance(event, SuspensionStarted):
            rows.append(
                (prefix + f"SUSPEND {event.delay:.2f}s (backoff level {event.level})", True)
            )
        elif isinstance(event, SuspensionEnded):
            rows.append((prefix + f"resumed after {event.slept:.2f}s", True))
        elif isinstance(event, BackoffReset):
            rows.append((prefix + f"RESET backoff (was level {event.from_level})", True))
        elif isinstance(event, SlotEvicted):
            rows.append(
                (
                    prefix
                    + f"EVICTED from slot of {event.process} (idle {event.idle_for:.1f}s)",
                    True,
                )
            )
        elif isinstance(event, SampleDiscarded):
            rows.append(
                (prefix + f"discarded sample ({event.reason}, {event.duration:.2f}s)", False)
            )
    return rows


def _elide(rows: list[tuple[str, bool]], limit: int) -> list[str]:
    if len(rows) <= limit:
        return [text for text, _ in rows]
    # First pass: collapse the interior of long routine runs, keeping every
    # structural row (phase/suspend/reset/evict) in place.
    out: list[str] = []
    run: list[str] = []

    def flush() -> None:
        if len(run) > 5:
            out.extend(run[:2])
            out.append(f"        ... {len(run) - 4} rows elided ...")
            out.extend(run[-2:])
        else:
            out.extend(run)
        run.clear()

    for text, structural in rows:
        if structural:
            flush()
            out.append(text)
        else:
            run.append(text)
    flush()
    if len(out) > limit:  # still too long: fall back to head/tail around the middle
        head = out[: limit // 2]
        tail = out[-(limit - len(head) - 1):]
        out = head + [f"        ... {len(out) - len(head) - len(tail)} rows elided ..."] + tail
    return out


def _aggregate_lines(events: Sequence[Event]) -> list[str]:
    testpoints = [e for e in events if isinstance(e, TestpointProcessed)]
    judgments = [e for e in events if isinstance(e, JudgmentIssued)]
    suspensions = [e for e in events if isinstance(e, SuspensionStarted)]
    resets = [e for e in events if isinstance(e, BackoffReset)]
    polls = [e for e in events if isinstance(e, BeNicePoll)]

    executed = sum(e.duration for e in testpoints)
    suspended = sum(e.delay for e in testpoints)
    lines = [
        f"processed testpoints      {len(testpoints)}",
        f"judgments                 "
        f"{sum(1 for j in judgments if j.judgment == 'poor')} poor / "
        f"{sum(1 for j in judgments if j.judgment == 'good')} good",
        f"suspensions imposed       {len(suspensions)} "
        f"(total {suspended:.1f}s, max level "
        f"{max((s.level for s in suspensions), default=0)})",
        f"backoff resets            {len(resets)}",
    ]
    if executed + suspended > 0:
        lines.append(
            f"duty cycle                {executed / (executed + suspended):.1%} "
            f"({executed:.1f}s executing / {suspended:.1f}s suspended)"
        )
    if testpoints:
        span = testpoints[-1].t - testpoints[0].t
        if span > 0:
            lines.append(f"testpoint rate            {len(testpoints) / span:.2f}/s")
    if polls:
        idle = sum(1 for p in polls if not p.changed)
        lines.append(
            f"benice polls              {len(polls)} ({idle} without progress, "
            f"final interval {polls[-1].interval:.2f}s)"
        )
    discards = TallyCounter(
        e.reason for e in events if isinstance(e, SampleDiscarded)
    )
    if discards:
        lines.append(
            "discards                  "
            + ", ".join(f"{reason}={count}" for reason, count in sorted(discards.items()))
        )
    return lines


def summarize(events: Iterable[Event], width: int = 72) -> str:
    """Render the regulation report for a trace (see module docstring)."""
    events = sorted(events, key=lambda e: e.t)
    if not events:
        return "empty trace (no events)"
    census = TallyCounter(e.kind for e in events)
    out: list[str] = []
    out.append(
        f"trace: {len(events)} events, "
        f"t = {events[0].t:.1f}s .. {events[-1].t:.1f}s"
    )
    out.append("")
    out.append("event census:")
    for kind, count in census.most_common():
        out.append(f"  {kind:<20} {count}")

    rows = _timeline_rows(events)
    if rows:
        out.append("")
        out.append("regulation timeline:")
        out.extend(_elide(rows, _MAX_TIMELINE_ROWS))

    out.append("")
    out.append("aggregates:")
    out.extend("  " + line for line in _aggregate_lines(events))

    percentiles = _percentile_lines(metrics_from_events(events))
    if percentiles:
        out.append("")
        out.append("percentiles (bucket resolution):")
        out.extend("  " + line for line in percentiles)

    suspensions = [
        e for e in events if isinstance(e, SuspensionStarted) and e.delay > 0
    ]
    if len(suspensions) >= 2:
        out.append("")
        out.append(
            timeseries_plot(
                [(e.t, e.delay) for e in suspensions],
                width=width,
                height=10,
                title="suspension delay over time (s)",
                y_label="delay",
                x_label="t (s)",
            )
        )
    testpoints = [
        e
        for e in events
        if isinstance(e, TestpointProcessed)
        and e.target_duration is not None
        and e.duration > 0
    ]
    if len(testpoints) >= 2:
        ratios = [min(e.target_duration / e.duration, 3.0) for e in testpoints]
        step = max(1, len(ratios) // width)
        resampled = [
            sum(ratios[i : i + step]) / len(ratios[i : i + step])
            for i in range(0, len(ratios), step)
        ]
        out.append("")
        out.append("normalized progress (target/measured duration; >1 = above target):")
        out.append("  " + sparkline(resampled, lo=0.0, hi=3.0))
    return "\n".join(out)


def summarize_file(path: str | os.PathLike[str], width: int = 72) -> str:
    """:func:`summarize` for a JSONL trace file."""
    return summarize(read_events(path), width=width)
