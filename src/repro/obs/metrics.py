"""In-process metrics registry: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments with
point-in-time snapshots.  It is deliberately minimal — no labels, no
exposition formats, no background threads — because its job is to make a
regulation run *inspectable* (testpoints/sec, duty cycle, suspension-time
distribution, sign-test verdict counts, calibration drift) at near-zero
cost on the enabled path and literally-one-branch cost when telemetry is
absent (the instrumented components then never touch the registry at all).

All instruments are get-or-create by name, so independent components can
contribute to the same counter without coordination.  Snapshots are plain
dicts ready for ``json.dumps``.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "TICK_LATENCY_BUCKETS",
    "RATE_BUCKETS",
    "to_prometheus",
]

#: Default histogram bucket upper bounds (seconds): geometric, spanning the
#: regulator's dynamic range from the lightweight gate to the suspension cap.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0,
    16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
)

#: Buckets for engine tick latency (wall seconds per fired-event batch):
#: sub-microsecond through one second, geometric.
TICK_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)

#: Buckets for progress-rate distributions (progress units per second):
#: the calibrated targets in the shipped scenarios span roughly 1..1e4/s.
RATE_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """Monotone accumulator (accepts float increments, e.g. seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} increment must be >= 0")
        self.value += amount


class Gauge:
    """Last-value-wins instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max and quantile estimates."""

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.bounds = bounds
        #: counts[i] observes values <= bounds[i]; the last slot is +inf.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into the histogram."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float | None:
        """Mean observation, or ``None`` when empty."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Bucket-resolution quantile estimate (upper bound of the bucket).

        Returns ``None`` when empty; the overflow bucket reports the true
        maximum observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max

    def snapshot(self) -> dict:
        """JSON-safe summary of the histogram's state."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": [
                [bound, n] for bound, n in zip(self.bounds, self.counts)
            ]
            + [["+inf", self.counts[-1]]],
        }


class MetricsRegistry:
    """Flat get-or-create namespace of counters, gauges, and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram named ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Shorthand: increment the counter named ``name``."""
        self.counter(name).inc(amount)

    def snapshot(self) -> dict:
        """Point-in-time JSON-safe view of every instrument.

        Includes a ``derived`` section with the duty cycle (execution time
        over execution-plus-suspension time) when the standard counters are
        present.
        """
        out: dict = {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
            "derived": {},
        }
        executed = self._counters.get("execution_seconds")
        suspended = self._counters.get("suspension_seconds")
        if executed is not None and suspended is not None:
            denominator = executed.value + suspended.value
            if denominator > 0:
                out["derived"]["duty_cycle"] = executed.value / denominator
        return out

    def histograms(self) -> dict[str, Histogram]:
        """The live histogram instruments, by name (read-only view)."""
        return dict(self._histograms)


def _prom_float(value: float) -> str:
    """Prometheus text-format float (``+Inf``/``-Inf``/``NaN`` spellings)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:
        return "NaN"
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Counters become ``repro_<name>_total``; gauges keep their name;
    histograms expose cumulative ``_bucket{le=...}`` series plus ``_sum``
    and ``_count``, exactly as a scrape endpoint would.  Output is sorted
    by metric name, so seeded runs export byte-identical snapshots.
    """
    snap = registry.snapshot()
    lines: list[str] = []
    for name, value in snap["counters"].items():
        lines.append(f"# TYPE repro_{name}_total counter")
        lines.append(f"repro_{name}_total {_prom_float(value)}")
    for name, value in snap["gauges"].items():
        if value is None:
            continue
        lines.append(f"# TYPE repro_{name} gauge")
        lines.append(f"repro_{name} {_prom_float(value)}")
    for name, hist in sorted(registry.histograms().items()):
        lines.append(f"# TYPE repro_{name} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(
                f'repro_{name}_bucket{{le="{_prom_float(bound)}"}} {cumulative}'
            )
        cumulative += hist.counts[-1]
        lines.append(f'repro_{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"repro_{name}_sum {_prom_float(hist.total)}")
        lines.append(f"repro_{name}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")
