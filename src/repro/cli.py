"""Command-line interface: ``python -m repro <command>``.

Four commands:

* ``info`` — version, default configuration, and the derived section-6
  quantities (minimum samples, reaction time, steady-state cost).
* ``benice`` — regulate a *real, running OS process* from the command
  line: poll its JSON counter file, run the MS Manners pipeline, enforce
  suspensions with SIGSTOP/SIGCONT.  The deployable form of the paper's
  BeNice (section 7.2).
* ``figures`` — regenerate the trace figures' data (Figures 7, 8, 9, 10)
  as tab-separated files ready for any plotting tool.
* ``obs`` — inspect regulation telemetry: ``obs summarize TRACE.jsonl``
  prints the regulation timeline and aggregates of a JSONL event trace
  (written via ``--trace-out`` on ``figures`` or ``benice``);
  ``obs explain TRACE.jsonl THREAD [--at TIME]`` reconstructs a
  suspension decision as a causal span tree (testpoint samples →
  sign-test accumulation → judgment → backoff);
  ``obs export TRACE.jsonl --format jsonl|prom`` re-exports normalized
  events or trace-derived histogram metrics in Prometheus text format.
* ``faults`` — the chaos harness: ``faults run --scenario NAME --seed N``
  executes one named fault-injection scenario against the simulator and
  reports whether the resilience layer absorbed it (exit 0) or not
  (exit 1, also on determinism-fingerprint drift against the recorded
  value; re-record deliberately with ``--record-fingerprints``);
  ``--flightrec DIR`` arms a bounded flight recorder that
  dumps the last-N event ring on each injected fault;
  ``faults list`` names the scenarios.
* ``daemon`` — the supervised regulator daemon (ROADMAP item 5):
  ``daemon serve --socket PATH --state-dir DIR --workers groveler:g1``
  regulates real worker subprocesses over local-socket IPC with
  crash-safe target persistence; ``daemon worker`` runs one regulated
  workload; ``daemon status``/``daemon stop`` speak the control
  protocol; ``daemon soak --scenarios all --seeds 3 --duration 60``
  runs the fault-injected soak and exits non-zero unless every injected
  IPC fault was answered by a matching recovery action (and a kill -9'd
  daemon restored calibration bit-identically).
* ``bench`` — the performance harness: ``bench NAME --jobs N`` runs a
  named benchmark through the parallel trial engine, checks parallel vs
  serial parity, and writes a machine-readable ``BENCH_<name>.json``
  (wall time, trials/sec, speedup vs serial, events/sec); see
  docs/performance.md.
* ``exp`` — the declarative experiment platform: ``exp list`` names the
  registered :class:`~repro.experiments.spec.ExperimentSpec` entries
  (figures 3/5/6, the ablations, the CI smoke spec); ``exp run NAME...``
  fans each spec's workload x strategy cross product through the
  parallel trial engine and writes one ``EXP_<name>.json`` artifact with
  per-cell samples, summary stats, and regression deltas against the
  committed ``BENCH_*.json`` baselines (``--gate`` exits 1 on a
  regression); ``exp report PATH`` renders a saved artifact.
* ``profile`` — find the hot spots: ``profile SCENARIO --seed N`` runs
  one seeded trial under cProfile (``--memory`` adds tracemalloc) and
  prints top-N tables keyed to the exact scenario/mode/seed/scale so a
  hot spot can be re-measured after a change; see docs/performance.md.
* ``verify`` — the conformance suite: ``verify run --seeds N`` sweeps
  every differential oracle and invariant drive over N seeds (exit 1 on
  any mismatch or violation); ``verify lint [PATHS]`` runs the
  determinism lint over ``repro.core`` + ``repro.simos`` (or the given
  paths); ``verify list`` names the oracles, drives, and lint rules.
  See docs/verification.md.

All commands respect a global ``--quiet`` flag (suppresses progress
output; errors still go to stderr).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path

from repro import __version__
from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.queueing import reaction_time, suspended_fraction

__all__ = ["Output", "main"]


class Output:
    """Console output helper: progress to stdout, errors to stderr.

    ``--quiet`` silences :meth:`say`; :meth:`error` and :meth:`result`
    always print (results are the command's product, not progress chatter).
    """

    def __init__(self, quiet: bool = False) -> None:
        self.quiet = quiet

    def say(self, message: str = "") -> None:
        """Progress/status line; suppressed under ``--quiet``."""
        if not self.quiet:
            print(message)

    def result(self, message: str = "") -> None:
        """Primary command output; always printed."""
        print(message)

    def error(self, message: str) -> None:
        """Error line, to stderr; never suppressed."""
        print(f"error: {message}", file=sys.stderr)


def _make_telemetry(trace_out: str | None, metrics_out: str | None):
    """Build a Telemetry handle for ``--trace-out``/``--metrics-out``.

    Returns ``(telemetry, finish)`` where ``finish(out)`` flushes/closes
    everything and reports what was written.  Both ``None`` when neither
    flag was given — the regulation stack then runs with telemetry fully
    disabled (the zero-overhead path).
    """
    if trace_out is None and metrics_out is None:
        return None, lambda out: None

    from repro.obs import JsonlSink, MetricsRegistry, Telemetry, Tracer

    sink = JsonlSink(trace_out) if trace_out is not None else None
    tracer = Tracer() if trace_out is not None else None
    telemetry = Telemetry(sink=sink, metrics=MetricsRegistry(), tracer=tracer)

    def finish(out: Output) -> None:
        if metrics_out is not None:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                json.dump(telemetry.metrics.snapshot(), handle, indent=2)
                handle.write("\n")
            out.say(f"  metrics snapshot -> {metrics_out}")
        telemetry.close()
        if trace_out is not None:
            out.say(f"  event trace -> {trace_out}")

    return telemetry, finish


def _cmd_info(args: argparse.Namespace, out: Output) -> int:
    config = DEFAULT_CONFIG
    out.result(f"repro {__version__} — MS Manners (Douceur & Bolosky, SOSP'99)")
    out.result()
    out.result("default configuration (the paper's experimental values):")
    for key, value in config.as_dict().items():
        out.result(f"  {key:<24} {value}")
    out.result()
    out.result("derived (section 6.1):")
    out.result(f"  min samples to condemn    {config.min_poor_samples}")
    out.result(f"  reaction @ 300ms cadence  {reaction_time(config.alpha, 0.3):.1f} s")
    out.result(
        f"  steady-state LI cost      "
        f"{suspended_fraction(config.alpha, config.beta):.1%}"
    )
    return 0


def _config_from_args(args: argparse.Namespace) -> MannersConfig:
    overrides = {}
    for name in (
        "alpha",
        "beta",
        "initial_suspension",
        "max_suspension",
        "min_testpoint_interval",
    ):
        value = getattr(args, name, None)
        if value is not None:
            overrides[name] = value
    return DEFAULT_CONFIG.with_overrides(**overrides) if overrides else DEFAULT_CONFIG


def _cmd_benice(args: argparse.Namespace, out: Output) -> int:
    from repro.realtime.posix_benice import JsonFileCounters, PosixBeNice

    names = [n.strip() for n in args.names.split(",") if n.strip()]
    if not names:
        out.error("--names must list at least one counter")
        return 2
    config = _config_from_args(args)
    telemetry, finish_telemetry = _make_telemetry(args.trace_out, args.metrics_out)
    benice = PosixBeNice(
        args.pid,
        JsonFileCounters(args.counters, names),
        config=config,
        telemetry=telemetry,
    )
    out.say(
        f"regulating pid {args.pid} on counters {names} from {args.counters} "
        f"(alpha={config.alpha}, beta={config.beta}); ctrl-C to stop"
    )
    stop = {"flag": False}

    def on_signal(signum, frame):  # pragma: no cover - interactive path
        stop["flag"] = True

    signal.signal(signal.SIGINT, on_signal)
    signal.signal(signal.SIGTERM, on_signal)
    benice.start()
    try:
        while not stop["flag"] and benice.target_alive:
            time.sleep(0.5)
            if args.verbose and not out.quiet:
                stats = benice.stats
                print(
                    f"  polls={stats.polls} suspensions={stats.suspensions} "
                    f"frozen={stats.total_suspension_time:.1f}s",
                    end="\r",
                    flush=True,
                )
            if args.duration and time.monotonic() >= args.duration_deadline:
                break
    finally:
        benice.stop()
    stats = benice.stats
    out.result(
        f"done: {stats.polls} polls, {stats.suspensions} suspensions, "
        f"{stats.total_suspension_time:.1f}s frozen"
    )
    finish_telemetry(out)
    return 0


def _cmd_figures(args: argparse.Namespace, out: Output) -> int:
    from repro.apps.base import RegulationMode
    from repro.experiments import (
        calibration_trial,
        defrag_database_trial,
        thread_isolation_trial,
    )

    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    scale = args.scale
    telemetry, finish_telemetry = _make_telemetry(args.trace_out, args.metrics_out)

    out.say(f"regenerating trace-figure data at scale {scale} into {outdir}/ ...")

    # Figures 7 and 8 come from one traced MS Manners run.
    result = defrag_database_trial(
        RegulationMode.MS_MANNERS,
        seed=4242,
        scale=scale,
        with_traces=True,
        telemetry=telemetry,
    )
    duty = result.extras["duty"]
    thread = result.extras["defrag_thread"]
    trace = result.extras["testpoints"]
    end = result.li_time or 2000.0
    with open(outdir / "fig7_duty.tsv", "w", encoding="utf-8") as handle:
        handle.write("time_s\tduty\n")
        for t, fraction in duty.binned(thread, 0.0, end, 10.0):
            handle.write(f"{t:.1f}\t{fraction:.4f}\n")
    with open(outdir / "fig8_progress.tsv", "w", encoding="utf-8") as handle:
        handle.write("time_s\tnormalized_progress\n")
        for t, value in trace.normalized_progress(0.0, end, window=2.0):
            handle.write(f"{t:.1f}\t{value:.4f}\n")
    out.say("  fig7_duty.tsv, fig8_progress.tsv")
    finish_telemetry(out)

    # Figure 9: per-thread duty series.
    isolation = thread_isolation_trial(seed=11, duration=300.0)
    with open(outdir / "fig9_isolation.tsv", "w", encoding="utf-8") as handle:
        handle.write("time_s\tgrovelC\tgrovelD\n")
        c_series = isolation.duty.binned(
            isolation.threads["grovelC"], 0.0, isolation.duration, 5.0
        )
        d_series = isolation.duty.binned(
            isolation.threads["grovelD"], 0.0, isolation.duration, 5.0
        )
        for (t, c), (_, d) in zip(c_series, d_series):
            handle.write(f"{t:.1f}\t{c:.4f}\t{d:.4f}\n")
    out.say("  fig9_isolation.tsv")

    # Figure 10: target trajectory + activity.
    calibration = calibration_trial(
        seed=13, hours=args.hours, probation_hours=args.hours / 4.0,
        diurnal_hours=args.hours / 2.0, scale=min(scale, 0.5),
    )
    with open(outdir / "fig10_calibration.tsv", "w", encoding="utf-8") as handle:
        handle.write("hour\ttarget_duration_s\tactivity\n")
        activity = dict(calibration.activity)
        for hour, target in calibration.target_trajectory:
            handle.write(f"{hour}\t{target:.4f}\t{activity.get(hour, 0.0):.4f}\n")
    out.say("  fig10_calibration.tsv")
    return 0


def _cmd_faults(args: argparse.Namespace, out: Output) -> int:
    from repro.core.errors import FaultError
    from repro.faults import SCENARIOS, run_scenario

    if args.faults_command == "list":
        for name, fn in sorted(SCENARIOS.items()):
            doc = (fn.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            out.result(f"  {name:<22} {summary}")
        return 0
    if args.faults_command == "run":
        extra_sink = None
        recorder = None
        sinks = []
        if args.trace_out is not None:
            from repro.obs import JsonlSink

            sinks.append(JsonlSink(args.trace_out))
        if args.flightrec is not None:
            from repro.obs import FlightRecorder

            recorder = FlightRecorder(
                capacity=args.flightrec_capacity, dump_dir=args.flightrec
            )
            sinks.append(recorder)
        if len(sinks) == 1:
            extra_sink = sinks[0]
        elif sinks:
            from repro.obs import FanoutSink

            extra_sink = FanoutSink(*sinks)
        try:
            report = run_scenario(args.scenario, seed=args.seed, extra_sink=extra_sink)
        except FaultError as exc:
            out.error(str(exc))
            return 2
        finally:
            for sink in sinks:
                sink.close()
        # Determinism gate: same seed must reproduce the recorded trace
        # fingerprint exactly; drift is a failure even when every scenario
        # check passed.
        from repro.faults import fingerprint_key, record_fingerprints, recorded_fingerprint

        recorded = recorded_fingerprint(report.name, report.seed)
        if args.record_fingerprints:
            record_fingerprints({fingerprint_key(report.name, report.seed): report.fingerprint})
            fingerprint_ok = True
        else:
            fingerprint_ok = recorded is None or recorded == report.fingerprint
        if args.json:
            body = report.as_dict()
            body["recorded_fingerprint"] = recorded
            body["fingerprint_ok"] = fingerprint_ok
            out.result(json.dumps(body, indent=2))
        else:
            verdict = "ok" if report.ok else "FAILED"
            out.result(
                f"{report.name} seed={report.seed}: {verdict} "
                f"(sim_time={report.sim_time:.1f}s testpoints={report.testpoints} "
                f"suspensions={report.suspensions} fingerprint={report.fingerprint})"
            )
            out.say(f"  injected:   {', '.join(report.injected) or '-'}")
            out.say(f"  anomalies:  {', '.join(sorted(set(report.anomalies))) or '-'}")
            out.say(f"  recoveries: {', '.join(sorted(set(report.recoveries))) or '-'}")
            for check, passed in report.checks:
                out.say(f"  [{'pass' if passed else 'FAIL'}] {check}")
        if args.record_fingerprints:
            out.say(f"  fingerprint recorded: {report.fingerprint}")
        elif recorded is None:
            out.say(
                "  no recorded fingerprint for this scenario/seed "
                "(record one with --record-fingerprints)"
            )
        elif not fingerprint_ok:
            out.error(
                f"determinism fingerprint mismatch for {report.name} "
                f"seed={report.seed}: recorded {recorded}, got {report.fingerprint} "
                "— the scenario no longer reproduces bit-for-bit"
            )
        if args.trace_out is not None:
            out.say(f"  event trace -> {args.trace_out}")
        if recorder is not None:
            if recorder.dump_paths:
                for path in recorder.dump_paths:
                    out.say(f"  flight-recorder dump -> {path}")
            else:
                out.say("  flight recorder armed but no dump was triggered")
        return 0 if report.ok and fingerprint_ok else 1
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_daemon(args: argparse.Namespace, out: Output) -> int:
    import asyncio
    import socket as socket_module
    import tempfile

    from repro.core.errors import FaultError, MannersError

    if args.daemon_command == "serve":
        from repro.daemon.server import RegulatorDaemon, WorkerSpec

        try:
            workers = WorkerSpec.parse(args.workers) if args.workers else []
        except ValueError as exc:
            out.error(str(exc))
            return 2
        if args.fast:
            from repro.daemon.soak import soak_config

            config = soak_config()
        else:
            config = _config_from_args(args)
        telemetry = None
        sinks = []
        if args.trace_out is not None:
            from repro.obs import JsonlSink

            sinks.append(JsonlSink(args.trace_out))
        if args.flightrec is not None:
            from repro.obs import FlightRecorder, Telemetry

            recorder = FlightRecorder(capacity=1024, dump_dir=args.flightrec)
            telemetry = Telemetry(
                sink=sinks[0] if sinks else None,
                label="daemon",
                flight_recorder=recorder,
            )
        elif sinks:
            from repro.obs import Telemetry

            telemetry = Telemetry(sink=sinks[0], label="daemon")
        daemon = RegulatorDaemon(
            args.socket,
            state_dir=args.state_dir,
            config=config,
            telemetry=telemetry,
            workers=workers,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            journal_interval=args.journal_interval,
            save_interval=args.save_interval,
        )
        out.say(
            f"regulator daemon on {args.socket} "
            f"(state={args.state_dir or '-'}, workers={args.workers or '-'})"
        )
        try:
            asyncio.run(
                daemon.run(
                    duration=args.duration if args.duration > 0 else None,
                    install_signals=True,
                )
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            if telemetry is not None:
                telemetry.close()
        out.say("daemon drained")
        return 0

    if args.daemon_command == "worker":
        from repro.daemon.worker import run_worker

        return run_worker(
            socket_path=args.socket,
            name=args.name,
            kind=args.kind,
            app_id=args.app_id,
            unit_bytes=args.unit_bytes,
            max_units=args.max_units,
        )

    if args.daemon_command in ("status", "stop"):
        from repro.daemon.client import ControlClient

        control = ControlClient(args.socket)
        try:
            reply = control.request(args.daemon_command)
        except (OSError, socket_module.timeout, MannersError) as exc:
            out.error(f"cannot reach daemon at {args.socket}: {exc}")
            return 1
        finally:
            control.close()
        out.result(json.dumps(reply, indent=2))
        return 0

    if args.daemon_command == "soak":
        from repro.daemon.chaos import SCENARIO_KINDS
        from repro.daemon.soak import run_soak

        if args.scenarios.strip() == "all":
            scenarios = sorted(SCENARIO_KINDS)
        else:
            scenarios = [s.strip() for s in args.scenarios.split(",") if s.strip()]
        seeds = list(range(1, args.seeds + 1))
        workdir = args.workdir or tempfile.mkdtemp(prefix="repro-soak-")
        out.say(
            f"soaking scenarios {scenarios} over seeds {seeds} "
            f"({args.duration:g}s each) in {workdir}"
        )
        try:
            report = run_soak(
                scenarios, seeds, args.duration, workdir, say=out.say
            )
        except FaultError as exc:
            out.error(str(exc))
            return 2
        if args.json:
            out.result(json.dumps(report.to_dict(), indent=2))
        else:
            for run in report.runs:
                verdict = "ok" if run.ok else "FAILED"
                out.result(
                    f"  {run.scenario:<14} seed={run.seed}: {verdict} "
                    f"injected={run.injected} matched={run.matched} "
                    f"recoveries={run.recoveries}"
                    + (f" note={run.note}" if run.note else "")
                )
                for line in run.unmatched:
                    out.result(f"      unrecovered: {line}")
            out.result(
                f"soak {'ok' if report.ok else 'FAILED'}: "
                f"{len(report.runs)} run(s), artifacts in {workdir}"
            )
        return 0 if report.ok else 1
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_bench(args: argparse.Namespace, out: Output) -> int:
    from repro.analysis.bench import (
        BENCHMARKS,
        MICROBENCHMARKS,
        run_benchmark,
        write_report,
    )

    if args.list or args.name is None:
        for name, spec in sorted(BENCHMARKS.items()):
            out.result(f"  {name:<18} {spec.summary}")
        for name, (_factory, summary) in sorted(MICROBENCHMARKS.items()):
            out.result(f"  {name:<18} {summary}")
        if args.name is None and not args.list:
            out.error("name a benchmark to run it (see the list above)")
            return 2
        return 0
    micro_args: dict = {}
    if args.churn is not None:
        micro_args["rounds"], micro_args["burst"] = args.churn
    if args.shards is not None:
        micro_args["shards"] = args.shards
    try:
        report = run_benchmark(
            args.name,
            jobs=args.jobs,
            trials=args.trials,
            scale=args.scale,
            use_cache=not args.no_cache,
            micro_args=micro_args or None,
        )
    except (TypeError, ValueError) as exc:
        out.error(str(exc))
        return 2
    path = write_report(report, args.out)
    if report.get("kind") == "micro":
        if report["name"] == "engine_wheel":
            out.result(
                f"{report['name']}: {report['events_per_sec']:,} events/s (wheel), "
                f"{report['heap_events_per_sec']:,} events/s (heap), "
                f"{report['speedup_vs_heap']:.2f}x on "
                f"{report['chains']}x{report['hops']} dense chains"
            )
        elif report["name"] == "engine_sharded":
            out.result(
                f"{report['name']}: {report['events_per_sec']:,} events/s aggregate "
                f"@ shards={report['shards']}, "
                f"{report['serial_events_per_sec']:,} events/s serial, "
                f"digest parity {'ok' if report['parity_ok'] else 'FAILED'}"
            )
        elif report["name"] == "engine_sparse":
            out.result(
                f"{report['name']}: {report['events_per_sec']:,} events/s (wheel), "
                f"{report['heap_events_per_sec']:,} events/s (heap), "
                f"{report['vs_heap']:.2f}x on {report['chains']} sparse "
                f"chain(s) of {report['hops']} hops"
            )
        elif report["name"] == "shard_imbalanced":
            out.result(
                f"{report['name']}: {report['events_per_sec']:,} events/s rebalanced "
                f"@ shards={report['shards']}, imbalance "
                f"{report['imbalance_static']:.2f} -> "
                f"{report['imbalance_rebalanced']:.2f} "
                f"(balance gain {report['balance_gain']:.2f}x, "
                f"{report['migrations']} migration(s)), "
                f"digest parity {'ok' if report['parity_ok'] else 'FAILED'}"
            )
        else:
            out.result(
                f"{report['name']}: {report['events_per_sec']:,} events/s "
                f"(heap post chain) vs {report['wheel_post_events_per_sec']:,} "
                f"(wheel), {report['churn_ops_per_sec']:,} schedules/s "
                f"(cancel churn) vs {report['wheel_churn_ops_per_sec']:,} (wheel)"
            )
        out.say(f"  report -> {path}")
        return 0 if report.get("parity_ok", True) is not False else 1
    out.result(
        f"{report['name']}: {report['trials']} trials @ jobs={report['jobs']} "
        f"in {report['wall_time_s']:.2f}s "
        f"({report['trials_per_sec']:.2f} trials/s, "
        f"{report['events_per_sec']:,} events/s)"
    )
    if report["speedup_vs_serial"] is not None:
        out.result(
            f"  serial reference {report['serial_wall_time_s']:.2f}s -> "
            f"speedup {report['speedup_vs_serial']:.2f}x, "
            f"parity {'ok' if report['parity_ok'] else 'FAILED'}"
        )
    out.say(f"  report -> {path}")
    return 0 if report["parity_ok"] is not False else 1


def _render_experiment(report: dict, out: Output) -> None:
    """Human-readable summary of one experiment report."""
    out.result(
        f"{report['name']}: {report['cell_count']} cells x "
        f"{report['trials']} trials @ jobs={report['jobs']} "
        f"scale={report['scale']:g} in {report['wall_time_s']:.2f}s "
        f"(executed {report['trials_executed']}, "
        f"cached {report['trials_cached']})"
    )
    out.result(f"  scenario {report['scenario']}, seeds {report['seeds']} "
               f"from {report['seed_base']}, digest {report['results_digest']}")
    for cell in report["cells"]:
        parts = []
        for metric in report["metrics"]:
            stats = cell["stats"].get(metric)
            if stats is not None:
                parts.append(f"{metric} median {stats['median']:.4g}")
        out.result(f"    {cell['label'] or '-':<28} {'  '.join(parts)}")
    gate = report.get("baseline_gate")
    if gate is not None:
        if gate.get("missing"):
            out.result(
                f"  baseline {gate['name']}: missing (no committed "
                f"BENCH_{gate['name']}.json) — deltas unavailable"
            )
        else:
            deltas = gate["deltas"]
            bits = [
                f"{key} {deltas[key]:+.1%}"
                for key in ("events_per_sec", "wall_time_s")
                if key in deltas
            ]
            verdict = "ok" if not gate["failures"] else "REGRESSED"
            out.result(
                f"  baseline {gate['name']}: {', '.join(bits) or 'no comparable keys'}"
                f" — {verdict}"
            )
            for failure in gate["failures"]:
                out.result(f"    {failure}")


def _cmd_exp(args: argparse.Namespace, out: Output) -> int:
    from repro.experiments.spec import (
        EXPERIMENTS,
        baseline_deltas,
        get_experiment,
        load_experiment_report,
        run_experiments,
        write_experiment_report,
    )

    if args.exp_command == "list":
        for name, spec in sorted(EXPERIMENTS.items()):
            grid = " x ".join(
                f"{var}[{len(levels)}]" for var, levels in spec.variables
            )
            out.result(f"  {name:<22} {spec.summary}")
            out.result(
                f"  {'':<22} scenario={spec.scenario} cells={spec.cell_count} "
                f"({grid}) seeds={spec.seeds}"
                + (f" baseline={spec.baseline}" if spec.baseline else "")
            )
        return 0

    if args.exp_command == "report":
        try:
            payload = load_experiment_report(args.path)
        except FileNotFoundError:
            out.error(f"no such report file: {args.path}")
            return 2
        except json.JSONDecodeError as exc:
            out.error(f"{args.path}: not a valid experiment report: {exc}")
            return 2
        reports = (
            [payload]
            if payload.get("kind") == "experiment"
            else payload.get("experiments", [])
        )
        for report in reports:
            _render_experiment(report, out)
        return 0

    if args.exp_command == "run":
        from repro.analysis.parallel import DEFAULT_CACHE_DIR, TrialCache

        try:
            specs = [get_experiment(name) for name in args.names]
        except ValueError as exc:
            out.error(str(exc))
            return 2
        cache = None if args.no_cache else TrialCache(DEFAULT_CACHE_DIR)
        try:
            reports = run_experiments(
                specs,
                trials=args.trials,
                jobs=args.jobs,
                scale=args.scale,
                cache=cache,
            )
        except ValueError as exc:
            out.error(str(exc))
            return 2
        regressed = False
        for report in reports:
            gate = baseline_deltas(report, baseline_dir=args.baseline_dir)
            if gate is not None:
                report["baseline_gate"] = gate
                if gate["failures"]:
                    regressed = True
        payload: dict = (
            reports[0]
            if len(reports) == 1
            else {"kind": "experiment-report", "experiments": reports}
        )
        path = write_experiment_report(payload, args.out)
        if args.json:
            out.result(json.dumps(payload, indent=2))
        else:
            for report in reports:
                _render_experiment(report, out)
        out.say(f"  report -> {path}")
        if regressed and args.gate:
            out.error("baseline regression gate failed (see failures above)")
            return 1
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_profile(args: argparse.Namespace, out: Output) -> int:
    from repro.analysis.profiling import profile_scenario

    try:
        report = profile_scenario(
            args.scenario,
            mode=args.mode,
            seed=args.seed,
            scale=args.scale,
            top=args.top,
            memory=args.memory,
        )
    except ValueError as exc:
        out.error(str(exc))
        return 2
    text = report.render()
    out.result(text)
    if args.out is not None:
        from pathlib import Path

        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        out.say(f"  report -> {path}")
    return 0


def _cmd_verify(args: argparse.Namespace, out: Output) -> int:
    from repro.verify.harness import INVARIANT_DRIVES, ORACLES, run_verification
    from repro.verify.lint import RULES, lint_paths

    if args.verify_command == "list":
        out.result("differential oracles:")
        for name, fn in ORACLES.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            out.result(f"  {name:<18} {summary}")
        out.result("invariant drives:")
        for name, fn in INVARIANT_DRIVES.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            out.result(f"  {name:<18} {summary}")
        out.result("lint rules:")
        for name, summary in RULES.items():
            out.result(f"  {name:<18} {summary}")
        return 0
    if args.verify_command == "lint":
        findings = lint_paths(args.paths or None)
        for finding in findings:
            out.result(
                f"{finding.path}:{finding.line}: [{finding.rule}] {finding.message}"
            )
        if findings:
            out.error(f"{len(findings)} determinism finding(s)")
            return 1
        out.result("lint clean")
        return 0
    if args.verify_command == "run":
        seeds = list(range(1, args.seeds + 1))
        out.say(f"running {len(ORACLES)} oracles + {len(INVARIANT_DRIVES)} "
                f"invariant drives over seeds {seeds} ...")
        report = run_verification(seeds)
        if args.json:
            out.result(json.dumps(report.as_dict(), indent=2))
        else:
            for line in report.lines():
                out.result(f"  {line}")
            verdict = "ok" if report.ok else "FAILED"
            out.result(
                f"verification {verdict}: {report.total_cases} cases "
                f"across {len(seeds)} seed(s)"
            )
        return 0 if report.ok else 1
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_obs(args: argparse.Namespace, out: Output) -> int:
    from repro.core.errors import MannersError
    from repro.obs.report import read_events

    if args.obs_command == "summarize":
        from repro.obs.report import summarize

        try:
            events = read_events(args.trace)
        except FileNotFoundError:
            out.error(f"no such trace file: {args.trace}")
            return 2
        except MannersError as exc:
            out.error(str(exc))
            return 2
        if not events:
            out.error(
                f"{args.trace}: trace is empty (no events) — nothing to "
                "summarize; was the run telemetry-disabled or the file "
                "truncated to zero length?"
            )
            return 1
        out.result(summarize(events, width=args.width))
        return 0
    if args.obs_command == "explain":
        from repro.obs.trace2 import explain

        try:
            out.result(explain(args.trace, args.thread, at=args.at))
        except FileNotFoundError:
            out.error(f"no such trace file: {args.trace}")
            return 2
        except MannersError as exc:
            out.error(str(exc))
            return 1
        return 0
    if args.obs_command == "export":
        try:
            events = read_events(args.trace)
        except FileNotFoundError:
            out.error(f"no such trace file: {args.trace}")
            return 2
        except MannersError as exc:
            out.error(str(exc))
            return 2
        if args.format == "jsonl":
            from repro.obs.events import event_to_dict

            text = "".join(json.dumps(event_to_dict(e)) + "\n" for e in events)
        else:
            from repro.obs.metrics import to_prometheus
            from repro.obs.report import metrics_from_events

            text = to_prometheus(metrics_from_events(events))
        if args.out is not None:
            Path(args.out).write_text(text, encoding="utf-8")
            out.say(f"  {args.format} export -> {args.out}")
        else:
            sys.stdout.write(text)
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MS Manners reproduction toolkit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show version, defaults, derived quantities")

    benice = sub.add_parser(
        "benice", help="regulate a running OS process (SIGSTOP BeNice)"
    )
    benice.add_argument("--pid", type=int, required=True, help="target process id")
    benice.add_argument(
        "--counters", required=True, help="path to the target's JSON counter file"
    )
    benice.add_argument(
        "--names", required=True, help="comma-separated counter names (metric order)"
    )
    benice.add_argument("--alpha", type=float, default=None)
    benice.add_argument("--beta", type=float, default=None)
    benice.add_argument("--initial-suspension", dest="initial_suspension", type=float)
    benice.add_argument("--max-suspension", dest="max_suspension", type=float)
    benice.add_argument(
        "--min-testpoint-interval", dest="min_testpoint_interval", type=float
    )
    benice.add_argument("--duration", type=float, default=0.0, help="stop after N s")
    benice.add_argument("--verbose", action="store_true")
    benice.add_argument(
        "--trace-out", dest="trace_out", default=None,
        help="write the telemetry event trace to this JSONL file",
    )
    benice.add_argument(
        "--metrics-out", dest="metrics_out", default=None,
        help="write a final metrics snapshot to this JSON file",
    )

    figures = sub.add_parser("figures", help="regenerate trace-figure data (TSV)")
    figures.add_argument("--out", default="figures", help="output directory")
    figures.add_argument("--scale", type=float, default=0.3)
    figures.add_argument("--hours", type=float, default=4.0)
    figures.add_argument(
        "--trace-out", dest="trace_out", default=None,
        help="write the fig6/7/8 run's telemetry event trace to this JSONL file",
    )
    figures.add_argument(
        "--metrics-out", dest="metrics_out", default=None,
        help="write the fig6/7/8 run's metrics snapshot to this JSON file",
    )

    faults = sub.add_parser("faults", help="run fault-injection chaos scenarios")
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_run = faults_sub.add_parser(
        "run", help="execute one named chaos scenario"
    )
    faults_run.add_argument(
        "--scenario", required=True, help="scenario name (see 'faults list')"
    )
    faults_run.add_argument(
        "--seed", type=int, default=1, help="simulation seed (default 1)"
    )
    faults_run.add_argument(
        "--trace-out", dest="trace_out", default=None,
        help="also write the scenario's event trace to this JSONL file",
    )
    faults_run.add_argument(
        "--flightrec", default=None, metavar="DIR",
        help="arm a flight recorder; dump the last-N event ring to DIR "
        "whenever a fault fires or an invariant violation is recorded",
    )
    faults_run.add_argument(
        "--flightrec-capacity", dest="flightrec_capacity", type=int, default=256,
        metavar="N", help="flight-recorder ring capacity in events (default 256)",
    )
    faults_run.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    faults_run.add_argument(
        "--record-fingerprints", dest="record_fingerprints", action="store_true",
        help="record this run's determinism fingerprint as the expected "
        "value instead of checking against it",
    )
    faults_sub.add_parser("list", help="list the available scenarios")

    daemon = sub.add_parser(
        "daemon", help="the supervised regulator daemon (serve/worker/soak)"
    )
    daemon_sub = daemon.add_subparsers(dest="daemon_command", required=True)
    serve = daemon_sub.add_parser(
        "serve", help="run the daemon: regulate worker subprocesses over IPC"
    )
    serve.add_argument("--socket", required=True, help="Unix socket path to serve on")
    serve.add_argument(
        "--state-dir", dest="state_dir", default=None,
        help="directory for target snapshots + the write-ahead journal",
    )
    serve.add_argument(
        "--workers", default="",
        help="comma-separated KIND:NAME worker subprocesses to spawn and "
        "supervise (e.g. groveler:g1,compressor:c1)",
    )
    serve.add_argument(
        "--duration", type=float, default=0.0,
        help="drain after N seconds (default: run until signalled)",
    )
    serve.add_argument(
        "--fast", action="store_true",
        help="use the fast-converging soak configuration",
    )
    serve.add_argument("--alpha", type=float, default=None)
    serve.add_argument("--beta", type=float, default=None)
    serve.add_argument("--initial-suspension", dest="initial_suspension", type=float)
    serve.add_argument("--max-suspension", dest="max_suspension", type=float)
    serve.add_argument(
        "--min-testpoint-interval", dest="min_testpoint_interval", type=float
    )
    serve.add_argument(
        "--heartbeat-interval", dest="heartbeat_interval", type=float, default=1.0,
        help="seconds between wait/liveness beats (default 1.0)",
    )
    serve.add_argument(
        "--heartbeat-timeout", dest="heartbeat_timeout", type=float, default=5.0,
        help="silence after which a non-parked worker is evicted (default 5.0)",
    )
    serve.add_argument(
        "--journal-interval", dest="journal_interval", type=float, default=1.0,
        help="seconds between write-ahead journal appends (default 1.0)",
    )
    serve.add_argument(
        "--save-interval", dest="save_interval", type=float, default=30.0,
        help="seconds between atomic snapshots + journal compaction (default 30)",
    )
    serve.add_argument(
        "--trace-out", dest="trace_out", default=None,
        help="write the daemon's telemetry event trace to this JSONL file",
    )
    serve.add_argument(
        "--flightrec", default=None, metavar="DIR",
        help="arm a flight recorder dumping the event ring to DIR on faults",
    )
    worker = daemon_sub.add_parser(
        "worker", help="run one regulated worker against a daemon"
    )
    worker.add_argument("--socket", required=True, help="daemon socket path")
    worker.add_argument("--name", required=True, help="unique worker name")
    worker.add_argument(
        "--kind", default="groveler", choices=("groveler", "compressor")
    )
    worker.add_argument("--app-id", dest="app_id", default=None)
    worker.add_argument("--unit-bytes", dest="unit_bytes", type=int, default=262144)
    worker.add_argument("--max-units", dest="max_units", type=int, default=None)
    status = daemon_sub.add_parser("status", help="query a running daemon")
    status.add_argument("--socket", required=True, help="daemon socket path")
    stop = daemon_sub.add_parser("stop", help="request a graceful drain")
    stop.add_argument("--socket", required=True, help="daemon socket path")
    soak = daemon_sub.add_parser(
        "soak", help="fault-injected soak: chaos scenarios against a live daemon"
    )
    soak.add_argument(
        "--scenarios", default="all",
        help="comma-separated scenario names, or 'all' "
        "(ipc-chaos, peer-hang, worker-crash, daemon-crash)",
    )
    soak.add_argument(
        "--seeds", type=int, default=3, help="sweep seeds 1..N (default 3)"
    )
    soak.add_argument(
        "--duration", type=float, default=60.0,
        help="seconds of chaos per run (default 60)",
    )
    soak.add_argument(
        "--workdir", default=None,
        help="directory for per-run state/traces/flight-recorder dumps "
        "(default: a fresh temp directory)",
    )
    soak.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )

    bench = sub.add_parser(
        "bench", help="run a named benchmark with the parallel trial engine"
    )
    bench.add_argument(
        "name", nargs="?", default=None, help="benchmark name (see --list)"
    )
    bench.add_argument(
        "--list", action="store_true", help="list the available benchmarks"
    )
    bench.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or all cores)",
    )
    bench.add_argument(
        "--trials", type=int, default=None,
        help="trials to run (default: REPRO_TRIALS or 15)",
    )
    bench.add_argument(
        "--scale", type=float, default=None,
        help="workload scale (default: the benchmark's own)",
    )
    bench.add_argument(
        "--no-cache", action="store_true",
        help="do not store results into the trial cache",
    )
    bench.add_argument(
        "--churn", type=int, nargs=2, metavar=("ROUNDS", "BURST"), default=None,
        help="engine_hotpath only: cancel-churn rounds and burst size",
    )
    bench.add_argument(
        "--shards", type=int, default=None,
        help="sharded benches only: worker shards (default: REPRO_SHARDS)",
    )
    bench.add_argument(
        "--out", default="benchmarks/results",
        help="directory for BENCH_<name>.json (default benchmarks/results)",
    )

    exp = sub.add_parser(
        "exp", help="list/run/report declarative experiment specs"
    )
    exp_sub = exp.add_subparsers(dest="exp_command", required=True)
    exp_sub.add_parser("list", help="list the registered experiment specs")
    exp_run = exp_sub.add_parser(
        "run", help="run one or more specs and write one report artifact"
    )
    exp_run.add_argument(
        "names", nargs="+", help="experiment spec names (see 'exp list')"
    )
    exp_run.add_argument(
        "--trials", type=int, default=None,
        help="trials per cell (default: the spec's pin, REPRO_TRIALS, or "
        "its own default)",
    )
    exp_run.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or 1 — serial runs "
        "are bit-identical to parallel ones)",
    )
    exp_run.add_argument(
        "--scale", type=float, default=None,
        help="workload scale (default: the spec's pin, REPRO_SCALE, or 1.0)",
    )
    exp_run.add_argument(
        "--no-cache", action="store_true",
        help="do not read from or store into the trial cache",
    )
    exp_run.add_argument(
        "--out", default="benchmarks/results",
        help="directory for EXP_<name>.json (default benchmarks/results)",
    )
    exp_run.add_argument(
        "--baseline-dir", dest="baseline_dir", default="benchmarks/results",
        help="directory holding the committed BENCH_*.json baselines",
    )
    exp_run.add_argument(
        "--gate", action="store_true",
        help="exit 1 when a baseline comparison reports a regression",
    )
    exp_run.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    exp_report = exp_sub.add_parser(
        "report", help="render a saved EXP_*.json report artifact"
    )
    exp_report.add_argument("path", help="path to an EXP_*.json artifact")

    profile = sub.add_parser(
        "profile", help="profile one seeded scenario trial (cProfile top-N)"
    )
    profile.add_argument(
        "scenario", help="scenario name (e.g. defrag_database, defrag_idle)"
    )
    profile.add_argument(
        "--mode", default="MS Manners",
        help='regulation mode value (default "MS Manners")',
    )
    profile.add_argument(
        "--seed", type=int, default=1000, help="trial seed (default 1000)"
    )
    profile.add_argument(
        "--scale", type=float, default=0.05,
        help="workload scale (default 0.05, the bench scale)",
    )
    profile.add_argument(
        "--top", type=int, default=25,
        help="entries per pstats table (default 25)",
    )
    profile.add_argument(
        "--memory", action="store_true",
        help="also record tracemalloc top allocation sites",
    )
    profile.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the report to this file",
    )

    verify = sub.add_parser(
        "verify", help="run the conformance oracles, invariants, and lint"
    )
    verify_sub = verify.add_subparsers(dest="verify_command", required=True)
    verify_run = verify_sub.add_parser(
        "run", help="sweep every oracle and invariant drive over seeds"
    )
    verify_run.add_argument(
        "--seeds", type=int, default=3,
        help="number of seeds to sweep, 1..N (default 3)",
    )
    verify_run.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    verify_lint = verify_sub.add_parser(
        "lint", help="run the determinism lint (default: core + simos)"
    )
    verify_lint.add_argument(
        "paths", nargs="*", help="files or directories to lint instead"
    )
    verify_sub.add_parser(
        "list", help="list oracles, invariant drives, and lint rules"
    )

    obs = sub.add_parser("obs", help="inspect regulation telemetry")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help="summarize a JSONL event trace"
    )
    summarize.add_argument("trace", help="path to a --trace-out JSONL file")
    summarize.add_argument(
        "--width", type=int, default=72, help="plot width in characters"
    )
    explain = obs_sub.add_parser(
        "explain", help="reconstruct why a thread was suspended, as a span tree"
    )
    explain.add_argument("trace", help="path to a --trace-out JSONL file")
    explain.add_argument("thread", help="thread id (the span's src label)")
    explain.add_argument(
        "--at", type=float, default=None, metavar="TIME",
        help="explain the latest suspension at or before TIME "
        "(default: the thread's last suspension)",
    )
    export = obs_sub.add_parser(
        "export", help="re-export a trace as normalized JSONL or Prometheus text"
    )
    export.add_argument("trace", help="path to a --trace-out JSONL file")
    export.add_argument(
        "--format", choices=("jsonl", "prom"), default="jsonl",
        help="jsonl: normalized events; prom: histogram metrics derived "
        "from the trace in Prometheus exposition format",
    )
    export.add_argument(
        "--out", default=None, metavar="PATH",
        help="write to PATH instead of stdout",
    )

    args = parser.parse_args(argv)
    out = Output(quiet=args.quiet)
    if args.command == "info":
        return _cmd_info(args, out)
    if args.command == "benice":
        args.duration_deadline = time.monotonic() + args.duration
        return _cmd_benice(args, out)
    if args.command == "figures":
        return _cmd_figures(args, out)
    if args.command == "faults":
        return _cmd_faults(args, out)
    if args.command == "daemon":
        return _cmd_daemon(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "exp":
        return _cmd_exp(args, out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "verify":
        return _cmd_verify(args, out)
    if args.command == "obs":
        return _cmd_obs(args, out)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
