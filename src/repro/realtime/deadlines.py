"""Wall-clock deadline scheduling on a simulation event core.

The realtime adapter and the regulator daemon both keep small sets of
future deadlines — periodic calibration saves, journal sweeps, snapshot
compactions.  Before this module each site hand-rolled the same
``last_done + interval`` arithmetic against :func:`time.monotonic`,
which meant the deployable paths never exercised the engine cores at
all: ``REPRO_ENGINE`` flipped the simulator but left the daemon on ad
hoc bookkeeping.

:class:`DeadlineQueue` closes that gap.  It is a thin wall-clock facade
over :func:`repro.simos.kernel.make_engine`, so the *same* core the
simulator runs on (wheel by default, ``REPRO_ENGINE=heap`` to force the
binary heap) orders the daemon's deadlines.  Wall time maps onto engine
time through a fixed epoch taken at construction; firing is explicit —
callers :meth:`poll` with the current wall clock (typically right after
an ``asyncio.sleep`` or condition wait sized by :meth:`next_wait`), and
every deadline at or before that instant fires in exact
``(deadline, insertion)`` order.

The queue is deliberately not thread-safe: each owner (the adapter
under its lock, a daemon loop on its event loop) drives its own queue.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable

from repro.simos.kernel import make_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simos.engine import EventHandle

__all__ = ["DeadlineQueue"]


class DeadlineQueue:
    """Monotonic-clock deadlines ordered by a simulation event core.

    ``engine_core`` follows :func:`make_engine` resolution: ``None``
    consults ``REPRO_ENGINE`` and defaults to the wheel.  ``clock`` is
    injectable for deterministic tests; production callers leave it on
    :func:`time.monotonic`.
    """

    __slots__ = ("_engine", "_clock", "_epoch")

    def __init__(
        self,
        engine_core: str | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._engine = make_engine(engine_core)
        self._clock = clock
        self._epoch = clock()

    # -- introspection ---------------------------------------------------------
    @property
    def engine(self):
        """The underlying event core (diagnostics; core-specific stats)."""
        return self._engine

    @property
    def pending(self) -> int:
        """Deadlines scheduled and not yet fired or cancelled."""
        return self._engine.pending

    # -- scheduling ------------------------------------------------------------
    def _engine_time(self, wall: float) -> float:
        # The engine clock never runs backwards; a caller-supplied "now"
        # earlier than the last poll clamps forward rather than raising.
        return max(wall - self._epoch, self._engine.now)

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> "EventHandle":
        """Run ``fn(*args)`` ``delay`` seconds from the current wall clock.

        Returns a cancellable handle.  Negative delays clamp to "due at
        the next poll" rather than raising — wall-clock callers routinely
        compute small negative slacks under scheduling jitter.
        """
        return self.schedule_at(self._clock() + max(delay, 0.0), fn, *args)

    def schedule_at(
        self, wall_deadline: float, fn: Callable[..., None], *args: Any
    ) -> "EventHandle":
        """Run ``fn(*args)`` once the wall clock reaches ``wall_deadline``."""
        return self._engine.call_at(self._engine_time(wall_deadline), fn, *args)

    # -- firing ----------------------------------------------------------------
    def poll(self, now: float | None = None) -> int:
        """Fire every deadline due at wall time ``now``; return the count.

        Callbacks may reschedule themselves (periodic deadlines); a
        callback scheduling at-or-before ``now`` fires within the same
        poll, exactly as the simulation cores handle same-tick posts.
        """
        wall = self._clock() if now is None else now
        engine = self._engine
        before = engine.events_fired
        engine.run(until=self._engine_time(wall))
        return engine.events_fired - before

    def next_wait(self, now: float | None = None) -> float | None:
        """Seconds until the earliest pending deadline.

        ``0.0`` when a deadline is already due, ``None`` when nothing is
        scheduled.  Sized for ``asyncio.wait_for`` / ``Condition.wait``
        timeouts so pollers sleep exactly as long as the queue allows.
        """
        head = self._engine.next_event_time()
        if head is None:
            return None
        wall = self._clock() if now is None else now
        return max(head - self._engine_time(wall), 0.0)
