"""Wall-clock regulation of real Python threads (standard library only).

This is the deployable counterpart of the paper's MS Manners library
(section 7.1) for actual applications: each low-importance worker thread
calls :meth:`RealTimeRegulator.testpoint` with its cumulative progress
counters, and the call blocks until the thread may proceed — sleeping out
regulator-mandated suspensions and waiting its turn under time-multiplex
isolation (at most one regulated thread executes at a time, chosen by
priority and decay-usage scheduling).

The same pure components drive this adapter and the simulator bridge; only
the clock (:func:`time.monotonic`) and the blocking mechanism
(:class:`threading.Condition`) differ.

Example::

    regulator = RealTimeRegulator()
    regulator.register(priority=1)          # optional; auto on first call
    while work:
        item = work.pop()
        process(item)
        done += 1
        regulator.testpoint([done])         # blocks as needed

Targets persist across restarts when constructed with an ``app_id`` and a
:class:`~repro.core.persistence.TargetStore`.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import TYPE_CHECKING, Sequence

from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.controller import TestpointDecision
from repro.core.errors import PersistenceError, RegulationStateError
from repro.core.persistence import TargetStore
from repro.core.superintendent import Superintendent
from repro.core.supervisor import Supervisor
from repro.obs import events as obs_events
from repro.realtime.deadlines import DeadlineQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["RealTimeRegulator"]

#: Upper bound on one condition wait, so hung-thread checks run regularly.
_MAX_WAIT = 1.0


class RealTimeRegulator:
    """Blocking, thread-safe MS Manners front end for one process."""

    def __init__(
        self,
        config: MannersConfig = DEFAULT_CONFIG,
        app_id: str | None = None,
        store: TargetStore | None = None,
        superintendent: Superintendent | None = None,
        process_id: object = None,
        telemetry: "Telemetry | None" = None,
        save_interval: float = 300.0,
        engine_core: str | None = None,
    ) -> None:
        if (app_id is None) != (store is None):
            raise ValueError("app_id and store must be provided together")
        self._config = config
        self._telemetry = telemetry
        self._supervisor = Supervisor(
            config,
            superintendent=superintendent,
            process_id=process_id if process_id is not None else "realtime",
            telemetry=telemetry,
        )
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._app_id = app_id
        self._store = store
        self._save_interval = save_interval
        #: Periodic-save deadlines ride the same event core the simulator
        #: uses (``engine_core=None`` consults ``REPRO_ENGINE``), so the
        #: deployable path exercises whichever core is selected.
        self._deadlines = DeadlineQueue(engine_core)
        if store is not None:
            self._deadlines.schedule(self._save_interval, self._periodic_save)
        self._closed = False
        #: Signals whose handlers :meth:`install_signal_handlers` replaced,
        #: mapped to the handlers they displaced (for chaining/uninstall).
        self._previous_handlers: dict[int, object] = {}
        #: Persistence failures absorbed (load fell back to bootstrap,
        #: save skipped); regulation is never interrupted by storage.
        self.persistence_errors = 0

    # -- registration ---------------------------------------------------------------
    def register(self, priority: int = 0, thread_id: int | None = None) -> None:
        """Enroll the calling (or named) thread for regulation.

        Threads are auto-registered with priority 0 on their first
        testpoint; call this first to set a different priority, mirroring
        the paper's priority library call.
        """
        tid = thread_id if thread_id is not None else threading.get_ident()
        with self._lock:
            if tid not in self._supervisor.thread_ids():
                regulator = self._supervisor.register_thread(tid, priority=priority)
                self._load_targets_into(regulator)
            else:
                self._supervisor.set_thread_priority(tid, priority)

    def set_priority(self, priority: int) -> None:
        """Change the calling thread's relative priority."""
        self.register(priority=priority)

    # -- the blocking testpoint -------------------------------------------------------
    def testpoint(
        self, metrics: Sequence[float], index: int = 0
    ) -> TestpointDecision:
        """Report progress; block until this thread may continue.

        Returns the decision for introspection.  Raises
        :class:`RegulationStateError` after :meth:`close`.
        """
        tid = threading.get_ident()
        now = time.monotonic()
        with self._cond:
            if self._closed:
                raise RegulationStateError("regulator is closed")
            if tid not in self._supervisor.thread_ids():
                regulator = self._supervisor.register_thread(tid)
                self._load_targets_into(regulator)
            decision = self._supervisor.on_testpoint(now, tid, index, metrics)
            if not decision.processed:
                return decision
            # This thread just gave up the execution slot: seat the next
            # owner right away and wake waiters so handoff is immediate.
            self._supervisor.poll(time.monotonic())
            self._cond.notify_all()
            # Wait until the supervisor seats this thread.
            while not self._closed:
                current = time.monotonic()
                self._supervisor.check_hung(current)
                owner = self._supervisor.poll(current)
                if owner == tid:
                    break
                wake = self._supervisor.next_poll_time(current)
                timeout = _MAX_WAIT
                if wake is not None:
                    timeout = min(max(wake - current, 0.0), _MAX_WAIT)
                self._cond.wait(timeout=timeout if timeout > 0 else 0.01)
            self._cond.notify_all()
            self._maybe_save_locked()
        resumed = time.monotonic()
        self._supervisor.regulator(tid).mark_resumed(resumed)
        tel = self._telemetry
        if tel is not None and decision.delay > 0.0:
            tel.tick(resumed)
            tel.emit(
                obs_events.SuspensionEnded(
                    t=resumed, src=str(tid), slept=resumed - now
                )
            )
        return decision

    def release(self) -> None:
        """Withdraw the calling thread (call before the thread exits)."""
        tid = threading.get_ident()
        with self._cond:
            if tid in self._supervisor.thread_ids():
                self._supervisor.unregister_thread(tid)
            self._cond.notify_all()

    # -- persistence & lifecycle -------------------------------------------------------
    def save_targets(self) -> None:
        """Persist calibration for the calling thread's regulator."""
        with self._lock:
            self._save_locked()

    def close(self) -> None:
        """Persist targets and unblock all waiting threads."""
        self.uninstall_signal_handlers()
        with self._cond:
            self._save_locked()
            self._closed = True
            self._cond.notify_all()

    def install_signal_handlers(
        self, signals: Sequence[int] = (signal.SIGTERM, signal.SIGINT)
    ) -> bool:
        """Flush pending target saves on termination signals.

        A process killed by SIGTERM/SIGINT between periodic saves would
        otherwise lose up to ``save_interval`` seconds of calibration.
        The installed handler calls :meth:`close` (which persists and
        unblocks every waiting thread) and then **chains** to whatever
        handler was installed before, so embedding applications keep
        their own shutdown behavior.

        Returns ``False`` (installing nothing) when called off the main
        thread, where CPython forbids ``signal.signal``.  Idempotent;
        undone by :meth:`uninstall_signal_handlers` (which :meth:`close`
        calls automatically).
        """
        if threading.current_thread() is not threading.main_thread():
            return False
        for signum in signals:
            if signum in self._previous_handlers:
                continue

            def _handler(received: int, frame: object) -> None:
                # Snapshot the displaced handler first: _signal_close
                # uninstalls, which clears the chaining table.
                previous = self._previous_handlers.get(received)
                self._signal_close()
                if callable(previous):
                    previous(received, frame)
                elif previous == signal.SIG_DFL:
                    # Re-deliver with the default disposition so the exit
                    # status still says "killed by signal".
                    signal.signal(received, signal.SIG_DFL)
                    signal.raise_signal(received)

            try:
                self._previous_handlers[signum] = signal.signal(signum, _handler)
            except (OSError, ValueError):
                continue
        return True

    def _signal_close(self) -> None:
        """:meth:`close`, hardened for a signal-handler context.

        A handler runs on the main thread, possibly *interrupting* code
        that holds this regulator's lock — blocking on it forever would
        deadlock the process inside a termination handler.  Bounded
        acquire: normally the save flushes exactly as :meth:`close` does;
        if the lock cannot be taken in time, the regulator is still
        marked closed (unblocking waiters at their next poll) and only
        the final snapshot is sacrificed.
        """
        self.uninstall_signal_handlers()
        acquired = self._lock.acquire(timeout=2.0)
        try:
            if acquired:
                self._save_locked()
            self._closed = True
            if acquired:
                self._cond.notify_all()
        finally:
            if acquired:
                self._lock.release()

    def uninstall_signal_handlers(self) -> None:
        """Restore the handlers :meth:`install_signal_handlers` displaced."""
        if not self._previous_handlers:
            return
        if threading.current_thread() is not threading.main_thread():
            return
        for signum, previous in list(self._previous_handlers.items()):
            try:
                signal.signal(signum, previous)  # type: ignore[arg-type]
            except (OSError, TypeError, ValueError):
                pass
            del self._previous_handlers[signum]

    def __enter__(self) -> "RealTimeRegulator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -------------------------------------------------------------------
    @property
    def supervisor(self) -> Supervisor:
        """The underlying supervisor (diagnostics)."""
        return self._supervisor

    # -- internals --------------------------------------------------------------------------
    def _load_targets_into(self, regulator) -> None:
        if self._store is not None and self._app_id is not None:
            try:
                persisted = self._store.load(self._app_id)
            except PersistenceError as exc:
                # Degraded mode: an unreadable target file costs a fresh
                # bootstrap, never a crashed worker thread.
                self._note_persistence_error("rebootstrap", exc)
                return
            if persisted is not None:
                regulator.import_state(persisted)

    def _maybe_save_locked(self) -> None:
        if self._store is None:
            return
        # Fires _periodic_save when its deadline has passed (lock held).
        self._deadlines.poll()

    def _periodic_save(self) -> None:
        self._save_locked()
        self._deadlines.schedule(self._save_interval, self._periodic_save)

    def _save_locked(self) -> None:
        if self._store is None or self._app_id is None:
            return
        tids = self._supervisor.thread_ids()
        if not tids:
            return
        # One thread's calibration represents the application's targets
        # (the paper persists per-application target files).
        state = self._supervisor.regulator(tids[0]).export_state()
        try:
            self._store.save(self._app_id, state)
        except PersistenceError as exc:
            # The store already retried; drop this snapshot and try again
            # at the next save interval rather than unwinding a testpoint.
            self._note_persistence_error("save_skipped", exc)

    def _note_persistence_error(self, action: str, exc: PersistenceError) -> None:
        self.persistence_errors += 1
        tel = self._telemetry
        if tel is not None:
            tel.emit(
                obs_events.RecoveryAction(
                    t=tel.now, src=tel.label, action=action, detail=str(exc)
                )
            )
            tel.metrics.inc("persistence_errors")
