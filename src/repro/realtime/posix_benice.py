"""BeNice for real POSIX processes: SIGSTOP is our SuspendThread.

The paper's BeNice regulates an unmodified Windows application by polling
its performance counters and suspending its threads through the debug
interface (section 7.2).  This module is the working Unix equivalent:

* the *target* is any OS process that publishes cumulative progress
  counters somewhere the regulator can read — by default a small JSON file
  (`{"counter_name": number, ...}`), the least-common-denominator stand-in
  for a performance-counter registry;
* *suspension* is ``SIGSTOP``/``SIGCONT``, which stops an arbitrary
  process at an arbitrary point exactly as ``SuspendThread`` does — with
  the same caveat the paper states: the target may be holding a lock when
  frozen (priority inversion, no general fix).

Usage::

    benice = PosixBeNice(
        pid=target_pid,
        read_counters=JsonFileCounters("/run/myapp/progress.json"),
        config=MannersConfig(...),
    )
    benice.start()          # runs its own monitor thread
    ...
    benice.stop()

Like everything in this package, the regulation logic itself is the shared
:class:`~repro.core.controller.ThreadRegulator`; this module only supplies
the polling and the freezing.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.benice.polling import AdaptivePoller
from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.controller import ThreadRegulator
from repro.core.errors import MetricError, RegulationStateError
from repro.obs import events as obs_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["JsonFileCounters", "PosixBeNiceStats", "PosixBeNice"]


class JsonFileCounters:
    """Read cumulative counters from a JSON file the target keeps updated."""

    def __init__(self, path: str | os.PathLike[str], names: Sequence[str]) -> None:
        if not names:
            raise ValueError("at least one counter name is required")
        self._path = os.fspath(path)
        self._names = tuple(names)
        self._last: tuple[float, ...] | None = None

    @property
    def names(self) -> tuple[str, ...]:
        """The counter names, in metric order."""
        return self._names

    def __call__(self) -> tuple[float, ...]:
        """Return the current counter vector.

        A torn or missing read (the target writes concurrently) returns
        the previous values — progress simply appears at the next poll.
        """
        try:
            with open(self._path, "r", encoding="utf-8") as handle:
                data: Mapping[str, float] = json.load(handle)
            values = tuple(float(data[name]) for name in self._names)
        except (OSError, ValueError, KeyError):
            if self._last is None:
                return tuple(0.0 for _ in self._names)
            return self._last
        if self._last is not None:
            # Guard against torn writes that regress a counter.
            values = tuple(max(new, old) for new, old in zip(values, self._last))
        self._last = values
        return values


@dataclass
class PosixBeNiceStats:
    """Operating statistics of one regulator instance."""

    polls: int = 0
    suspensions: int = 0
    total_suspension_time: float = 0.0
    signal_errors: int = 0
    metric_errors: int = 0
    last_values: tuple[float, ...] = field(default_factory=tuple)


class PosixBeNice:
    """Externally regulate one OS process with SIGSTOP/SIGCONT."""

    def __init__(
        self,
        pid: int,
        read_counters: Callable[[], Sequence[float]],
        config: MannersConfig = DEFAULT_CONFIG,
        poller: AdaptivePoller | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if pid <= 0:
            raise ValueError(f"pid must be positive, got {pid}")
        self._pid = pid
        self._read = read_counters
        self._config = config
        self._poller = poller or AdaptivePoller(
            initial_interval=max(config.min_testpoint_interval, 0.3)
        )
        self._telemetry = (
            None if telemetry is None else telemetry.scoped(f"benice:{pid}")
        )
        self.regulator = ThreadRegulator(config, telemetry=self._telemetry)
        self.stats = PosixBeNiceStats()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._frozen = False

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Start the monitor thread (daemonized: it dies with the caller)."""
        if self._thread is not None:
            raise RegulationStateError("PosixBeNice already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop monitoring; always leaves the target running."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self._resume()

    def __enter__(self) -> "PosixBeNice":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def target_alive(self) -> bool:
        """Whether the target process still exists."""
        try:
            os.kill(self._pid, 0)
            return True
        except ProcessLookupError:
            return False
        except PermissionError:  # exists, owned by someone else
            return True

    # -- the monitor loop ------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set() and self.target_alive:
            if self._stop.wait(timeout=self._poller.interval):
                break
            values = tuple(self._read())
            changed = values != self.stats.last_values
            self.stats.last_values = values
            self.stats.polls += 1
            self._poller.record_poll(changed)
            try:
                decision = self.regulator.on_testpoint(time.monotonic(), 0, values)
            except MetricError as exc:
                # A garbage counter read (the target rewrote its file with
                # different keys, or published non-numeric junk) must not
                # kill the monitor thread: skip the sample and poll again.
                self.stats.metric_errors += 1
                tel = self._telemetry
                if tel is not None:
                    tel.metrics.inc("benice_metric_errors")
                    tel.emit(
                        obs_events.AnomalyDetected(
                            t=tel.now,
                            src=tel.label,
                            anomaly="metric_error",
                            detail=str(exc),
                        )
                    )
                continue
            tel = self._telemetry
            if tel is not None:
                tel.metrics.inc("benice_polls")
                if not changed:
                    tel.metrics.inc("benice_idle_polls")
                tel.metrics.gauge("benice_poll_interval").set(self._poller.interval)
                tel.emit(
                    obs_events.BeNicePoll(
                        t=tel.now,
                        src=tel.label,
                        interval=self._poller.interval,
                        changed=changed,
                        delay=decision.delay,
                    )
                )
            if decision.delay > 0:
                self.stats.suspensions += 1
                self.stats.total_suspension_time += decision.delay
                self._freeze()
                frozen_at = time.monotonic()
                interrupted = self._stop.wait(timeout=decision.delay)
                self._resume()
                resumed = time.monotonic()
                self.regulator.mark_resumed(resumed)
                if tel is not None:
                    tel.tick(resumed)
                    tel.emit(
                        obs_events.SuspensionEnded(
                            t=resumed, src=tel.label, slept=resumed - frozen_at
                        )
                    )
                if interrupted:
                    break

    # -- freezing -----------------------------------------------------------------------
    def _freeze(self) -> None:
        try:
            os.kill(self._pid, signal.SIGSTOP)
            self._frozen = True
        except (ProcessLookupError, PermissionError):
            self.stats.signal_errors += 1

    def _resume(self) -> None:
        if not self._frozen:
            return
        try:
            os.kill(self._pid, signal.SIGCONT)
        except (ProcessLookupError, PermissionError):
            self.stats.signal_errors += 1
        finally:
            self._frozen = False
