"""Wall-clock regulation of real Python threads and OS processes."""

from repro.realtime.adapter import RealTimeRegulator
from repro.realtime.deadlines import DeadlineQueue
from repro.realtime.filetoken import FileTokenSuperintendent
from repro.realtime.posix_benice import JsonFileCounters, PosixBeNice

__all__ = [
    "DeadlineQueue",
    "FileTokenSuperintendent",
    "JsonFileCounters",
    "PosixBeNice",
    "RealTimeRegulator",
]
