"""Cross-process superintendent backed by a lock file.

The paper's superintendent is a separate OS process that supervisors talk
to over shared memory (section 7.1).  For regulating genuinely separate
OS processes with :class:`~repro.realtime.adapter.RealTimeRegulator`, this
module provides the equivalent with nothing but the filesystem: a token
file whose existence means "some process's low-importance thread is
executing".

Protocol: ``acquire`` atomically creates the token file (``O_EXCL``)
containing the holder identity; the holder refreshes the file's timestamp
as a heartbeat on every acquire; ``release`` removes it.  A token whose
heartbeat is older than ``stale_after`` belonged to a crashed process and
is broken.  Fairness across processes is by polling rather than decay
usage — adequate for the "several housekeeping services on one box" case
the paper targets, where contention for the token is rare and brief.

The class is duck-type compatible with
:class:`repro.core.superintendent.Superintendent`, so it plugs straight
into a :class:`~repro.core.supervisor.Supervisor` or
:class:`~repro.realtime.adapter.RealTimeRegulator`::

    boss = FileTokenSuperintendent("/var/run/manners.token")
    regulator = RealTimeRegulator(superintendent=boss, process_id=os.getpid())
"""

from __future__ import annotations

import os
from typing import Hashable

from repro.core.errors import PersistenceError

__all__ = ["FileTokenSuperintendent"]


class FileTokenSuperintendent:
    """Machine-wide execution token as a heartbeat-stamped lock file."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        stale_after: float = 60.0,
        retry_interval: float = 0.25,
        slice_seconds: float = 1.0,
    ) -> None:
        """``slice_seconds`` bounds politeness: after holding the token for
        longer than one slice, a process backs off for a couple of retry
        intervals before re-acquiring, so peers polling at
        ``retry_interval`` get a guaranteed window.  (A lock file cannot
        carry the in-process superintendent's decay-usage fairness, so
        fairness here is time-sliced instead.)"""
        if stale_after <= 0:
            raise ValueError(f"stale_after must be positive, got {stale_after}")
        if retry_interval <= 0:
            raise ValueError(f"retry_interval must be positive, got {retry_interval}")
        if slice_seconds <= 0:
            raise ValueError(f"slice_seconds must be positive, got {slice_seconds}")
        self._path = os.fspath(path)
        self._stale_after = stale_after
        self._retry = retry_interval
        self._slice = slice_seconds
        self._registered: set[Hashable] = set()
        self._holding: Hashable | None = None
        self._held_since: float | None = None
        #: Cumulative hold time since the last politeness back-off; the
        #: token is taken and given back at every testpoint, so fairness
        #: must account across holds, not per hold.
        self._slice_used = 0.0
        self._cooldown_until = 0.0

    # -- membership (Superintendent-compatible) ---------------------------------
    def register_process(self, pid: Hashable, priority: int = 0) -> None:
        """Record a local process identity (priority is best-effort only)."""
        self._registered.add(pid)

    def unregister_process(self, pid: Hashable) -> None:
        """Withdraw a process; drops the token if it was held."""
        self._registered.discard(pid)
        if self._holding == pid:
            self.release(pid, 0.0)

    def __contains__(self, pid: Hashable) -> bool:
        return pid in self._registered

    # -- token protocol ------------------------------------------------------------
    @property
    def holder(self) -> Hashable | None:
        """The *local* identity holding the token, if this process holds it."""
        return self._holding

    def acquire(self, pid: Hashable, now: float) -> bool:
        """Try to take (or refresh) the machine-wide token."""
        import time as _time

        if self._holding == pid:
            self._heartbeat()
            return True
        if self._holding is not None:
            return False  # Another local identity holds it via this object.
        if _time.monotonic() < self._cooldown_until:
            return False  # Politeness window for peer processes.
        if self._cooldown_until and _time.monotonic() >= self._cooldown_until:
            self._slice_used = 0.0
            self._cooldown_until = 0.0
        if self._try_create(pid):
            self._holding = pid
            self._held_since = _time.monotonic()
            return True
        if self._is_stale():
            self._break_stale()
            if self._try_create(pid):
                self._holding = pid
                self._held_since = _time.monotonic()
                return True
        return False

    def release(self, pid: Hashable, now: float, until: float | None = None) -> None:
        """Give the token back (idempotent; ``until`` is advisory only)."""
        if self._holding != pid:
            return
        import time as _time

        if self._held_since is not None:
            self._slice_used += _time.monotonic() - self._held_since
        if self._slice_used > self._slice:
            self._cooldown_until = _time.monotonic() + 2.0 * self._retry
        self._holding = None
        self._held_since = None
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise PersistenceError(f"cannot release token {self._path}: {exc}") from exc

    def charge(self, pid: Hashable, amount: float) -> None:
        """Usage accounting is per-process only; nothing shared to do."""

    def set_priority(self, pid: Hashable, priority: int) -> None:
        """Priorities cannot be arbitrated through a bare lock file."""

    def next_eligible_time(self, now: float) -> float | None:
        """When to retry while another process holds the token."""
        if self._holding is not None:
            return None
        return now + self._retry

    # -- internals --------------------------------------------------------------------
    def _try_create(self, pid: Hashable) -> bool:
        try:
            fd = os.open(self._path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        except OSError as exc:
            raise PersistenceError(f"cannot create token {self._path}: {exc}") from exc
        try:
            os.write(fd, f"{os.getpid()}:{pid!r}\n".encode())
        finally:
            os.close(fd)
        return True

    def _heartbeat(self) -> None:
        try:
            os.utime(self._path)
        except OSError:
            # The token vanished (operator cleanup?); we'll recreate on the
            # next acquire cycle.
            self._holding = None

    def _is_stale(self) -> bool:
        try:
            age = os.stat(self._path).st_mtime
        except FileNotFoundError:
            return False
        import time as _time

        return (_time.time() - age) > self._stale_after

    def _break_stale(self) -> None:
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass
