"""Runtime invariant checkers for the regulation stack.

Monitors attach to live components — a
:class:`~repro.core.suspension.SuspensionTimer`, a
:class:`~repro.simos.engine.Engine`, or a whole
:class:`~repro.core.controller.ThreadRegulator` — and check the paper's
contracts on every transition:

* suspension doubling law ``min(initial * 2**k, maximum)`` and the cap
  (§4.1/§4.2), and that GOOD judgments fully reset the backoff;
* the probationary duty-cycle bound (§4.3);
* monotone simulation clock and exact pending/stale event accounting;
* calibrator target finiteness (a non-finite or negative target would
  condemn or excuse a thread forever);
* state export/import round-trip fidelity (a snapshot imported into a
  fresh regulator must re-export identically).

Violations are recorded as structured :class:`InvariantViolation` entries
and, when a telemetry handle is supplied, emitted through the existing obs
event vocabulary (``anomaly`` events tagged ``invariant:<name>``).  In
``mode="raise"`` the first violation raises :class:`VerificationError`
instead — the right setting for tests and debugging sessions.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.comparator import StatisticalComparator
from repro.core.controller import ThreadRegulator
from repro.core.errors import MannersError
from repro.core.suspension import capped_backoff
from repro.obs import events as obs_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = [
    "VerificationError",
    "InvariantViolation",
    "ViolationRecorder",
    "SuspensionInvariantMonitor",
    "EngineInvariantMonitor",
    "RegulatorInvariantMonitor",
    "check_regulator_roundtrip",
]

#: Slack for the probation duty-cycle floor comparison: the controller
#: computes the floor in floating point, so an exactly-at-the-bound delay
#: may sit one ulp below the recomputed floor.
_DUTY_SLACK = 1e-9


class VerificationError(MannersError, AssertionError):
    """An installed invariant checker observed a contract violation."""


@dataclass(frozen=True)
class InvariantViolation:
    """One observed contract violation."""

    component: str
    invariant: str
    detail: str


@dataclass
class ViolationRecorder:
    """Collects violations; optionally emits obs events or raises.

    ``mode`` is ``"record"`` (accumulate and continue — the harness/CI
    setting) or ``"raise"`` (fail fast with :class:`VerificationError`).
    """

    mode: str = "record"
    telemetry: "Telemetry | None" = None
    violations: list[InvariantViolation] = field(default_factory=list)
    checks: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("record", "raise"):
            raise ValueError(f"mode must be 'record' or 'raise', got {self.mode}")

    @property
    def ok(self) -> bool:
        """Whether no violations have been observed."""
        return not self.violations

    def passed(self) -> None:
        """Count one satisfied check (for reporting density)."""
        self.checks += 1

    def report(self, component: str, invariant: str, detail: str, t: float = 0.0) -> None:
        """Record one violation; emit/raise according to configuration."""
        self.checks += 1
        violation = InvariantViolation(
            component=component, invariant=invariant, detail=detail
        )
        self.violations.append(violation)
        tel = self.telemetry
        if tel is not None:
            tel.emit(
                obs_events.AnomalyDetected(
                    t=t,
                    src=tel.label,
                    anomaly=f"invariant:{invariant}",
                    value=0.0,
                    detail=f"{component}: {detail}",
                )
            )
            ctx = tel.trace_ctx if tel.emitting else None
            if ctx is not None:
                tel.emit(
                    obs_events.Span(
                        t=t,
                        src=tel.label,
                        span_id=ctx.new_id(),
                        parent=ctx.testpoint,
                        name="violation",
                        attrs={
                            "component": component,
                            "invariant": invariant,
                            "detail": detail,
                        },
                    )
                )
            tel.metrics.inc("invariant_violations")
            # Deliver the anomaly (and its span) to any attached flight
            # recorder now, so the auto-dump captures a complete, ordered
            # buffer up to and including the violation itself.
            tel.flush()
        if self.mode == "raise":
            raise VerificationError(f"{component}.{invariant}: {detail}")


class SuspensionInvariantMonitor:
    """Forwarding wrapper that checks the backoff law on every transition.

    Presents the :class:`~repro.core.suspension.SuspensionTimer` interface
    (so it can replace a regulator's timer in place) while delegating to the
    wrapped timer and checking, per call: the imposed suspension stays in
    ``[initial, maximum]``; when the timer entered the call on the exact
    doubling schedule, the imposed value equals
    ``min(initial * 2**k, maximum)``; the stored suspension never exceeds
    the cap; POOR increments the consecutive-poor count; and GOOD/reset
    restore the initial suspension and clear the count — including after
    saturation.
    """

    def __init__(self, timer, recorder: ViolationRecorder) -> None:
        self._timer = timer
        self._recorder = recorder

    # -- pass-through interface -------------------------------------------------
    @property
    def initial(self) -> float:
        """The wrapped timer's initial suspension."""
        return self._timer.initial

    @property
    def maximum(self) -> float:
        """The wrapped timer's suspension cap."""
        return self._timer.maximum

    @property
    def current(self) -> float:
        """The wrapped timer's next POOR suspension."""
        return self._timer.current

    @property
    def consecutive_poor(self) -> int:
        """The wrapped timer's consecutive-poor count."""
        return self._timer.consecutive_poor

    @property
    def saturated(self) -> bool:
        """Whether the wrapped timer has reached its cap."""
        return self._timer.saturated

    def export_state(self) -> dict:
        """Snapshot the wrapped timer."""
        return self._timer.export_state()

    def import_state(self, state: dict) -> None:
        """Restore the wrapped timer."""
        self._timer.import_state(state)

    # -- checked transitions ----------------------------------------------------
    def on_poor(self) -> float:
        """Forward a POOR judgment; check the doubling law and the cap."""
        timer = self._timer
        rec = self._recorder
        k_before = timer.consecutive_poor
        on_schedule = timer.current == capped_backoff(
            timer.initial, k_before, timer.maximum
        )
        imposed = timer.on_poor()
        if not (timer.initial <= imposed <= timer.maximum):
            rec.report(
                "suspension_timer",
                "cap_overshoot",
                f"imposed {imposed} outside [{timer.initial}, {timer.maximum}]",
            )
        elif on_schedule and imposed != capped_backoff(
            timer.initial, k_before, timer.maximum
        ):
            rec.report(
                "suspension_timer",
                "doubling_law",
                f"k={k_before}: imposed {imposed}, law says "
                f"{capped_backoff(timer.initial, k_before, timer.maximum)}",
            )
        elif timer.current > timer.maximum:
            rec.report(
                "suspension_timer",
                "cap_overshoot",
                f"stored suspension {timer.current} exceeds cap {timer.maximum}",
            )
        elif timer.consecutive_poor != k_before + 1:
            rec.report(
                "suspension_timer",
                "poor_count",
                f"consecutive_poor {timer.consecutive_poor} after k={k_before}",
            )
        else:
            rec.passed()
        return imposed

    def on_good(self) -> None:
        """Forward a GOOD judgment; check the reset is complete."""
        timer = self._timer
        timer.on_good()
        if timer.consecutive_poor != 0 or timer.current != timer.initial:
            self._recorder.report(
                "suspension_timer",
                "reset",
                f"after GOOD: current={timer.current} (want {timer.initial}), "
                f"consecutive_poor={timer.consecutive_poor} (want 0)",
            )
        else:
            self._recorder.passed()

    def reset(self) -> None:
        """Forward a reset; same contract as :meth:`on_good`."""
        self.on_good()


class EngineInvariantMonitor:
    """Patches an engine's hot paths to audit clock and store accounting.

    Works on either event core.  After every fired event (and every
    scheduling call) the monitor verifies: the simulation clock never
    moved backwards; the O(1) ``pending`` counter equals a linear scan
    for live stored entries; and the stale-entry counter equals the
    number of cancelled entries actually sitting in the store (the
    compaction bookkeeping).  Heap cores are scanned through ``_heap``;
    wheel cores are walked through ``_entries()`` and additionally have
    their per-slot occupancy bitmaps audited against the slot contents
    (``_audit_slots``).  Detach restores the engine's original methods.
    """

    #: Engine methods shadowed through the instance dict while monitoring.
    _SHADOWED = ("step", "call_at", "call_after", "post_at", "post_after")

    def __init__(self, engine, recorder: ViolationRecorder) -> None:
        self._engine = engine
        self._recorder = recorder
        self._last_now = engine.now
        self._orig_step = engine.step
        # Instance attributes shadow the class methods; setting
        # ``_monitored`` routes Engine.run()'s inlined fast loops through
        # self.step() so every fired event passes the audit too.
        engine.step = self._step
        engine.call_at = self._wrap_schedule(engine.call_at, "call_at")
        engine.call_after = self._wrap_schedule(engine.call_after, "call_after")
        engine.post_at = self._wrap_schedule(engine.post_at, "post_at")
        engine.post_after = self._wrap_schedule(engine.post_after, "post_after")
        engine._monitored = True

    def _audit(self, context: str) -> None:
        engine = self._engine
        rec = self._recorder
        now = engine.now
        if now < self._last_now:
            rec.report(
                "engine",
                "monotone_clock",
                f"{context}: clock moved from {self._last_now} back to {now}",
                t=now,
            )
        else:
            rec.passed()
        self._last_now = max(self._last_now, now)
        # Plain tuple entries are the non-cancellable hot path: always live.
        # Handle entries are live until cancelled (or consumed by firing).
        heap = getattr(engine, "_heap", None)
        entries = heap if heap is not None else list(engine._entries())
        live = sum(
            1 for h in entries if h.__class__ is tuple or not h.cancelled
        )
        stale = len(entries) - live
        if engine.pending != live:
            rec.report(
                "engine",
                "pending_count",
                f"{context}: pending counter {engine.pending}, live scan {live}",
                t=now,
            )
        elif engine._stale != stale:
            rec.report(
                "engine",
                "stale_count",
                f"{context}: stale counter {engine._stale}, store holds {stale}",
                t=now,
            )
        else:
            rec.passed()
        if heap is None:
            problems = engine._audit_slots()
            if problems:
                rec.report(
                    "engine",
                    "slot_bitmap",
                    f"{context}: {problems[0]} (+{len(problems) - 1} more)",
                    t=now,
                )
            else:
                rec.passed()

    def _step(self) -> bool:
        fired = self._orig_step()
        self._audit("step")
        return fired

    def _wrap_schedule(self, orig, context: str):
        def audited(*args, **kwargs):
            result = orig(*args, **kwargs)
            self._audit(context)
            return result

        return audited

    def detach(self) -> None:
        """Restore the engine's unmonitored methods."""
        # Bound-method access creates a fresh object each time, so identity
        # checks against self._step would never match; pop unconditionally.
        engine = self._engine
        for name in self._SHADOWED:
            engine.__dict__.pop(name, None)
        engine._monitored = False


def check_regulator_roundtrip(
    regulator: ThreadRegulator, recorder: ViolationRecorder, t: float = 0.0
) -> bool:
    """Export → fresh regulator → import → re-export must be bit-identical.

    Compares canonical JSON of the two runtime snapshots, which covers
    calibrator values *and* warm-up counts, suspension saturation, the open
    sign-test window, and the bootstrap/probation phase markers.  Returns
    whether the round trip was faithful.  Only regulators using the stock
    :class:`~repro.core.comparator.StatisticalComparator` (or a monitored
    wrapper of one) can be cloned; others are skipped without judgment.
    """
    snapshot = regulator.export_state(include_runtime=True)
    clone = ThreadRegulator(config=regulator.config)
    clone.import_state(snapshot)
    replayed = clone.export_state(include_runtime=True)
    before = json.dumps(snapshot, sort_keys=True)
    after = json.dumps(replayed, sort_keys=True)
    if before != after:
        recorder.report(
            "regulator",
            "roundtrip_fidelity",
            f"re-exported snapshot differs: {before[:200]} != {after[:200]}",
            t=t,
        )
        return False
    recorder.passed()
    return True


class RegulatorInvariantMonitor:
    """Audits every testpoint decision of a live regulator.

    Wraps :meth:`~repro.core.controller.ThreadRegulator.on_testpoint` and
    checks each :class:`~repro.core.controller.TestpointDecision`: delays
    are finite and non-negative; target durations are finite and
    non-negative (calibrator finiteness); during probation, processed
    non-discarded samples honour the duty-cycle floor
    ``delay >= duration * (1 - duty) / duty``; and — every
    ``roundtrip_every`` processed testpoints — the export/import round trip
    is bit-faithful.  The regulator's suspension timer is additionally
    wrapped in a :class:`SuspensionInvariantMonitor`.
    """

    def __init__(
        self,
        regulator: ThreadRegulator,
        recorder: ViolationRecorder,
        roundtrip_every: int = 0,
    ) -> None:
        self._regulator = regulator
        self._recorder = recorder
        self._roundtrip_every = roundtrip_every
        self._since_roundtrip = 0
        self._orig_on_testpoint = regulator.on_testpoint
        regulator.on_testpoint = self._on_testpoint
        self._timer_monitor = SuspensionInvariantMonitor(
            regulator._suspension, recorder
        )
        regulator._suspension = self._timer_monitor

    def _on_testpoint(self, now, index, counters):
        decision = self._orig_on_testpoint(now, index, counters)
        self._check_decision(now, decision)
        return decision

    def _check_decision(self, now: float, decision) -> None:
        rec = self._recorder
        reg = self._regulator
        if not math.isfinite(decision.delay) or decision.delay < 0.0:
            rec.report(
                "regulator",
                "delay_domain",
                f"decision delay {decision.delay} at t={now}",
                t=now,
            )
        else:
            rec.passed()
        target = decision.target_duration
        if target is not None and (not math.isfinite(target) or target < 0.0):
            rec.report(
                "regulator",
                "target_finiteness",
                f"target duration {target} at t={now}",
                t=now,
            )
        else:
            rec.passed()
        config = reg.config
        if (
            decision.processed
            and decision.anomaly is None
            and not decision.discarded_hung
            and decision.duration > 0.0
            and reg.in_probation(now)
        ):
            floor = (
                decision.duration
                * (1.0 - config.probation_duty)
                / config.probation_duty
            )
            if decision.delay < floor - _DUTY_SLACK:
                rec.report(
                    "regulator",
                    "probation_duty",
                    f"delay {decision.delay} below duty floor {floor} "
                    f"for duration {decision.duration} at t={now}",
                    t=now,
                )
            else:
                rec.passed()
        if decision.processed and self._roundtrip_every > 0:
            self._since_roundtrip += 1
            if self._since_roundtrip >= self._roundtrip_every:
                self._since_roundtrip = 0
                if isinstance(reg._comparator, StatisticalComparator):
                    check_regulator_roundtrip(reg, rec, t=now)

    def detach(self) -> None:
        """Restore the unmonitored ``on_testpoint`` and suspension timer."""
        reg = self._regulator
        reg.__dict__.pop("on_testpoint", None)
        if reg._suspension is self._timer_monitor:
            reg._suspension = self._timer_monitor._timer
