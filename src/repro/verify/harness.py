"""Verification harness: run every oracle and invariant drive over seeds.

``run_verification(seeds)`` executes each differential oracle from
:mod:`repro.verify.oracles` and each invariant *drive* — a seeded synthetic
workload executed against a monitored live component — for every seed, and
aggregates the outcome into a :class:`VerifyReport`.  The CLI
(``repro verify run``) prints the report and exits non-zero on any
mismatch or violation; CI runs it across three seeds as a required gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import DEFAULT_CONFIG
from repro.core.controller import ThreadRegulator
from repro.core.suspension import SuspensionTimer
from repro.simos.engine import Engine
from repro.simos.wheel import WheelEngine
from repro.verify.invariants import (
    EngineInvariantMonitor,
    InvariantViolation,
    RegulatorInvariantMonitor,
    ViolationRecorder,
    check_regulator_roundtrip,
)
from repro.verify.oracles import (
    OracleResult,
    chain_rng_oracle,
    engine_oracle,
    parallel_oracle,
    signtest_oracle,
    wheel_oracle,
)

__all__ = [
    "ORACLES",
    "INVARIANT_DRIVES",
    "DriveResult",
    "VerifyReport",
    "run_verification",
]

#: Registry of differential oracles: name -> fn(seed) -> OracleResult.
ORACLES = {
    "signtest": signtest_oracle,
    "engine": engine_oracle,
    "wheel": wheel_oracle,
    "parallel": parallel_oracle,
    "chain-rng": chain_rng_oracle,
}


@dataclass
class DriveResult:
    """Outcome of one monitored invariant drive."""

    drive: str
    seed: int
    checks: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the drive completed with zero violations."""
        return not self.violations


def _drive_suspension_timer(seed: int) -> DriveResult:
    """Random judgment stream against a monitored SuspensionTimer.

    Sweeps several cap regimes — small (saturates quickly), the paper's
    256 s, and a pathological near-float-max cap — and feeds hundreds of
    POOR/GOOD/reset transitions, including long POOR runs that hold the
    timer at saturation, plus a mid-stream export/import round trip.
    """
    from repro.verify.invariants import SuspensionInvariantMonitor

    rng = random.Random(0x7142 ^ (seed * 0x9E3779B97F4A7C15))
    recorder = ViolationRecorder(mode="record")
    result = DriveResult(drive="suspension-timer", seed=seed)
    for maximum in (8.0, 256.0, 1e300):
        timer = SuspensionTimer(initial=0.25, maximum=maximum)
        monitor = SuspensionInvariantMonitor(timer, recorder)
        for _ in range(200):
            roll = rng.random()
            if roll < 0.6:
                monitor.on_poor()
            elif roll < 0.9:
                monitor.on_good()
            else:
                monitor.reset()
        # Long poor run: pin the timer at its cap, keep checking the law.
        for _ in range(64):
            monitor.on_poor()
        # Saturation must survive an export/import round trip.
        snapshot = monitor.export_state()
        restored = SuspensionTimer(initial=0.25, maximum=maximum)
        restored.import_state(snapshot)
        restored_monitor = SuspensionInvariantMonitor(restored, recorder)
        recorder.checks += 1
        if restored.export_state() != snapshot:
            recorder.report(
                "suspension_timer",
                "roundtrip_fidelity",
                f"snapshot {snapshot} re-exported as {restored.export_state()}",
            )
        restored_monitor.on_poor()
        restored_monitor.on_good()
    result.checks = recorder.checks
    result.violations = recorder.violations
    return result


def _drive_engine(seed: int) -> DriveResult:
    """Random schedule/cancel/run workload against a monitored Engine.

    Reuses the oracle script generator, so the drive exercises the same
    cancellation-heavy patterns that trip heap compaction, with the
    monitor auditing clock monotonicity and counter accounting after
    every step and schedule.
    """
    from repro.verify.oracles import _EngineScriptDriver, _generate_engine_script

    rng = random.Random(0xE391E ^ (seed * 0x2545F4914F6CDD1D))
    recorder = ViolationRecorder(mode="record")
    result = DriveResult(drive="engine", seed=seed)
    engine = Engine()
    monitor = EngineInvariantMonitor(engine, recorder)
    driver = _EngineScriptDriver(engine)
    for op in _generate_engine_script(rng, 150):
        driver.apply(op)
    engine.run()  # Drain whatever is left, still monitored.
    monitor.detach()
    result.checks = recorder.checks
    result.violations = recorder.violations
    return result


def _drive_regulator(seed: int) -> DriveResult:
    """Synthetic testpoint stream against a monitored ThreadRegulator.

    Uses a probation-enabled configuration and a manually-advanced clock;
    the thread alternately honours and ignores its mandated delays, makes
    noisy progress, and occasionally stalls — while the monitor checks
    every decision and periodically audits export/import round-trip
    fidelity.
    """
    rng = random.Random(0x2E64 ^ (seed * 0x9E3779B97F4A7C15))
    recorder = ViolationRecorder(mode="record")
    result = DriveResult(drive="regulator", seed=seed)
    config = DEFAULT_CONFIG.with_overrides(
        bootstrap_testpoints=8,
        probation_period=40.0,
        min_testpoint_interval=0.0,
    )
    regulator = ThreadRegulator(config=config, start_time=0.0)
    monitor = RegulatorInvariantMonitor(regulator, recorder, roundtrip_every=16)
    now = 0.0
    progress = 0.0
    for _ in range(300):
        progress += rng.uniform(5.0, 15.0)
        decision = regulator.on_testpoint(now, 0, (progress,))
        honoured = rng.random() < 0.8
        gap = rng.uniform(0.3, 1.2) * (2.0 if rng.random() < 0.2 else 1.0)
        if honoured:
            now += decision.delay + gap
        else:
            now += gap
    check_regulator_roundtrip(regulator, recorder, t=now)
    monitor.detach()
    result.checks = recorder.checks
    result.violations = recorder.violations
    return result


def _drive_wheel(seed: int) -> DriveResult:
    """Boundary-biased wheel workload against a monitored WheelEngine.

    The wheel-specific oracle script (horizon-boundary delays, same-tick
    bursts, cancellations into every band) runs with the invariant
    monitor attached, so the clock, pending/stale counters, and the slot
    occupancy bitmaps are audited after every fired event and schedule.
    """
    from repro.verify.oracles import _EngineScriptDriver, _generate_wheel_script

    rng = random.Random(0x8EE1 ^ (seed * 0x2545F4914F6CDD1D))
    recorder = ViolationRecorder(mode="record")
    result = DriveResult(drive="wheel", seed=seed)
    engine = WheelEngine()
    monitor = EngineInvariantMonitor(engine, recorder)
    driver = _EngineScriptDriver(engine)
    for op in _generate_wheel_script(rng, 150):
        driver.apply(op)
    engine.run()  # Drain the far-future bands too, still monitored.
    monitor.detach()
    result.checks = recorder.checks
    result.violations = recorder.violations
    return result


#: Registry of invariant drives: name -> fn(seed) -> DriveResult.
INVARIANT_DRIVES = {
    "suspension-timer": _drive_suspension_timer,
    "engine": _drive_engine,
    "wheel": _drive_wheel,
    "regulator": _drive_regulator,
}


@dataclass
class VerifyReport:
    """Aggregated outcome of a full verification run."""

    seeds: list[int]
    oracle_results: list[OracleResult] = field(default_factory=list)
    drive_results: list[DriveResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every oracle and every drive came back clean."""
        return all(r.ok for r in self.oracle_results) and all(
            r.ok for r in self.drive_results
        )

    @property
    def total_cases(self) -> int:
        """Oracle cases compared plus invariant checks evaluated."""
        return sum(r.cases for r in self.oracle_results) + sum(
            r.checks for r in self.drive_results
        )

    def as_dict(self) -> dict:
        """JSON-able summary (the CLI's ``--json`` output)."""
        return {
            "seeds": self.seeds,
            "ok": self.ok,
            "total_cases": self.total_cases,
            "oracles": [
                {
                    "oracle": r.oracle,
                    "seed": r.seed,
                    "cases": r.cases,
                    "mismatches": [
                        {"case": m.case, "detail": m.detail} for m in r.mismatches
                    ],
                }
                for r in self.oracle_results
            ],
            "drives": [
                {
                    "drive": r.drive,
                    "seed": r.seed,
                    "checks": r.checks,
                    "violations": [
                        {
                            "component": v.component,
                            "invariant": v.invariant,
                            "detail": v.detail,
                        }
                        for v in r.violations
                    ],
                }
                for r in self.drive_results
            ],
        }

    def lines(self) -> list[str]:
        """Human-readable per-(oracle, seed) summary lines."""
        rows = []
        for r in self.oracle_results:
            status = "ok" if r.ok else f"{len(r.mismatches)} MISMATCHES"
            rows.append(f"oracle {r.oracle:<16} seed={r.seed} cases={r.cases} {status}")
        for r in self.drive_results:
            status = "ok" if r.ok else f"{len(r.violations)} VIOLATIONS"
            rows.append(
                f"invariants {r.drive:<12} seed={r.seed} checks={r.checks} {status}"
            )
        return rows


def run_verification(seeds: list[int]) -> VerifyReport:
    """Run every oracle and invariant drive for each seed."""
    report = VerifyReport(seeds=list(seeds))
    for seed in seeds:
        for fn in ORACLES.values():
            report.oracle_results.append(fn(seed))
        for fn in INVARIANT_DRIVES.values():
            report.drive_results.append(fn(seed))
    return report
