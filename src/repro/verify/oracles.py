"""Differential oracles: fast implementations vs slow references (seeded).

Each oracle generates a randomized-but-seeded workload, runs it through an
optimized implementation and its naive twin from
:mod:`repro.verify.reference` (or through two configurations whose results
are contractually identical, e.g. parallel vs serial fan-out), and records
every observable divergence as an :class:`OracleMismatch`.  A clean run
returns a result with an empty mismatch list; the CLI (``repro verify
run``) and the CI gate fail on any mismatch.

Oracles accept an optional implementation factory so the test suite can
prove they *detect* divergence: injecting a deliberately-broken fast
implementation must produce mismatches.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.parallel import ParallelRunner
from repro.core.queueing import simulate_judgment_chain
from repro.core.signtest import SignTest, good_threshold, poor_threshold
from repro.simos.engine import Engine
from repro.simos.wheel import WheelEngine
from repro.verify.reference import (
    ReferenceEngine,
    ReferenceSignTest,
    ReferenceWheel,
    reference_good_threshold,
    reference_poor_threshold,
)

__all__ = [
    "OracleMismatch",
    "OracleResult",
    "signtest_oracle",
    "engine_oracle",
    "wheel_oracle",
    "parallel_oracle",
    "chain_rng_oracle",
]

#: Exact-regime ceiling for sign-test windows in the differential contract.
#: Beyond ``signtest._EXACT_LIMIT`` (256) the production thresholds use a
#: normal approximation by design; the references are exact-only, and the
#: approximation regime is covered separately by the scipy cross-checks in
#: the test suite.
_EXACT_WINDOW = 256

#: Alpha/beta grid the sign-test oracle samples configurations from.
_LEVELS = (0.01, 0.05, 0.1, 0.2, 0.3)


@dataclass(frozen=True)
class OracleMismatch:
    """One observed divergence between the fast and reference paths."""

    oracle: str
    case: str
    detail: str


@dataclass
class OracleResult:
    """Outcome of one oracle run: cases exercised and divergences found."""

    oracle: str
    seed: int
    cases: int = 0
    mismatches: list[OracleMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every case agreed."""
        return not self.mismatches

    def _note(self, case: str, detail: str) -> None:
        self.mismatches.append(
            OracleMismatch(oracle=self.oracle, case=case, detail=detail)
        )


def signtest_oracle(
    seed: int,
    make_test: Callable[..., object] = SignTest,
    configs: int = 4,
    stream_length: int = 400,
) -> OracleResult:
    """Cached threshold tables and table-driven verdicts vs direct tail walks.

    Two layers: (1) for sampled ``(alpha, beta)`` configurations, every
    table entry ``n = 0..max_samples`` must equal the linear-walk reference
    threshold; (2) a seeded below/above stream fed sample-by-sample through
    the fast :class:`SignTest` and the recompute-everything
    :class:`ReferenceSignTest` must produce identical verdict streams and
    identical window state at every step.
    """
    rng = random.Random(0xD1FF ^ (seed * 0x2545F4914F6CDD1D))
    result = OracleResult(oracle="signtest", seed=seed)
    for _ in range(configs):
        alpha = rng.choice(_LEVELS)
        beta = rng.choice(_LEVELS)
        max_samples = rng.randint(8, _EXACT_WINDOW)
        label = f"alpha={alpha} beta={beta} max={max_samples}"
        fast = make_test(alpha=alpha, beta=beta, max_samples=max_samples)
        for n in range(max_samples + 1):
            result.cases += 1
            expected_poor = reference_poor_threshold(n, alpha)
            expected_good = reference_good_threshold(n, beta)
            got_poor = poor_threshold(n, alpha)
            got_good = good_threshold(n, beta)
            if (got_poor, got_good) != (expected_poor, expected_good):
                result._note(
                    f"threshold {label} n={n}",
                    f"fast=({got_poor}, {got_good}) "
                    f"reference=({expected_poor}, {expected_good})",
                )
        reference = ReferenceSignTest(alpha=alpha, beta=beta, max_samples=max_samples)
        p_below = rng.uniform(0.2, 0.8)
        for i in range(stream_length):
            below = rng.random() < p_below
            result.cases += 1
            fast_verdict = fast.add_sample(below)
            ref_verdict = reference.add_sample(below)
            if fast_verdict is not ref_verdict:
                result._note(
                    f"verdict {label} sample={i}",
                    f"fast={fast_verdict} reference={ref_verdict}",
                )
                break  # Streams are out of sync; later diffs are noise.
            fast_window = (fast.sample_count, fast.below_count)
            ref_window = (reference.sample_count, reference.below_count)
            if fast_window != ref_window:
                result._note(
                    f"window {label} sample={i}",
                    f"fast={fast_window} reference={ref_window}",
                )
                break
    return result


class _EngineScriptDriver:
    """Applies one generated op script to an engine, logging observables.

    The same script is applied to the fast engine and the reference engine;
    because both must fire events in identical order, the driver's handle
    list (including handles created by self-rescheduling callbacks) stays
    aligned between the two, which lets scripted cancellations name handles
    by index.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.log: list[tuple[int, float]] = []
        self.handles: list = []

    def fire(self, tag: int, repeats: int, interval: float) -> None:
        """Scripted callback: log, then optionally reschedule itself."""
        self.log.append((tag, self.engine.now))
        if repeats > 0:
            handle = self.engine.call_after(
                interval, self.fire, tag + 1, repeats - 1, interval
            )
            self.handles.append(handle)

    def post_fire(self, tag: int, repeats: int, interval: float) -> None:
        """Scripted callback for the non-cancellable hot path."""
        self.log.append((tag, self.engine.now))
        if repeats > 0:
            self.engine.post_after(
                interval, self.post_fire, tag + 1, repeats - 1, interval
            )

    def apply(self, op: tuple) -> None:
        """Execute one script op against the engine."""
        kind = op[0]
        if kind == "schedule":
            _, delay, repeats, interval, tag = op
            self.handles.append(
                self.engine.call_after(delay, self.fire, tag, repeats, interval)
            )
        elif kind == "post":
            _, delay, repeats, interval, tag = op
            self.engine.post_after(delay, self.post_fire, tag, repeats, interval)
        elif kind == "cancel":
            if self.handles:
                self.handles[op[1] % len(self.handles)].cancel()
        elif kind == "run_until":
            self.engine.run(until=self.engine.now + op[1])
        elif kind == "run_budget":
            self.engine.run(max_events=op[1])
        elif kind == "step":
            self.engine.step()

    def observables(self) -> tuple:
        """State the two engines must agree on after every op."""
        return (self.engine.now, self.engine.pending, len(self.log))


def _generate_engine_script(rng: random.Random, ops: int) -> list[tuple]:
    script: list[tuple] = []
    tag = 0
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.45:
            tag += 100
            # Mix cancellable handles with hot-path posts: the same seeded
            # stream drives both scheduling APIs on both engines.
            kind = "schedule" if rng.random() < 0.6 else "post"
            script.append(
                (
                    kind,
                    round(rng.uniform(0.0, 10.0), 3),
                    rng.randint(0, 3),
                    round(rng.uniform(0.1, 2.0), 3),
                    tag,
                )
            )
        elif roll < 0.65:
            script.append(("cancel", rng.randint(0, 1 << 30)))
        elif roll < 0.85:
            script.append(("run_until", round(rng.uniform(0.0, 8.0), 3)))
        elif roll < 0.95:
            script.append(("run_budget", rng.randint(1, 5)))
        else:
            script.append(("step",))
    return script


def engine_oracle(
    seed: int,
    make_engine: Callable[[], object] = Engine,
    ops: int = 120,
) -> OracleResult:
    """O(1)-counter, compacting engine vs the naive linear-scan engine.

    Generates a seeded script of schedules (some self-rescheduling),
    cancellations (enough to trip heap compaction), bounded runs, and
    single steps; applies it to both engines; and compares clock, pending
    count, and the full fired-event log after every op.
    """
    rng = random.Random(0xE4617 ^ (seed * 0x9E3779B97F4A7C15))
    result = OracleResult(oracle="engine", seed=seed)
    script = _generate_engine_script(rng, ops)
    fast = _EngineScriptDriver(make_engine())
    reference = _EngineScriptDriver(ReferenceEngine())
    for i, op in enumerate(script):
        result.cases += 1
        fast.apply(op)
        reference.apply(op)
        if fast.observables() != reference.observables():
            result._note(
                f"op {i} {op[0]}",
                f"fast={fast.observables()} reference={reference.observables()}",
            )
            break  # Diverged; every later comparison is noise.
    result.cases += 1
    if fast.log != reference.log:
        result._note(
            "fired-event log",
            f"fast fired {len(fast.log)} events, reference {len(reference.log)}; "
            "first difference at index "
            f"{next((j for j, (a, b) in enumerate(zip(fast.log, reference.log)) if a != b), min(len(fast.log), len(reference.log)))}",
        )
    return result


#: Delays that land exactly on or astride the wheel's band boundaries at
#: the default resolution (1/128 s ticks): one tick, the L0 horizon (256
#: ticks = 2 s), the L1 horizon (65536 ticks = 512 s), and the L2 horizon
#: (2^24 ticks = 131072 s), each bracketed one tick either side, plus
#: off-grid values that do not divide the tick.  Placement bugs live at
#: these edges — a uniform draw would almost never sample them.
_WHEEL_BOUNDARY_DELAYS = (
    0.0,
    0.0078125,
    1.9921875,
    2.0,
    2.0078125,
    511.9921875,
    512.0,
    512.0078125,
    131071.9921875,
    131072.0,
    0.9999,
    7.3,
)


def _generate_wheel_script(rng: random.Random, ops: int) -> list[tuple]:
    """Engine script biased toward wheel-specific hazards.

    Same op vocabulary as :func:`_generate_engine_script`, but delays are
    drawn half the time from :data:`_WHEEL_BOUNDARY_DELAYS` and same-tick
    FIFO bursts (several schedules at one identical delay) appear
    explicitly, so level placement, cascade-on-rollover, and same-slot
    ordering are all exercised every run.
    """

    def delay() -> float:
        if rng.random() < 0.5:
            return rng.choice(_WHEEL_BOUNDARY_DELAYS)
        return round(rng.uniform(0.0, 600.0), 3)  # spans L0 and crosses L1

    script: list[tuple] = []
    tag = 0
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.35:
            tag += 100
            kind = "schedule" if rng.random() < 0.6 else "post"
            script.append(
                (kind, delay(), rng.randint(0, 3), rng.choice((0.1, 2.0, 512.0)), tag)
            )
        elif roll < 0.45:
            # Same-tick FIFO burst: identical delay, consecutive seqs.
            d = delay()
            for _ in range(rng.randint(2, 4)):
                tag += 100
                script.append(("post", d, 0, 1.0, tag))
        elif roll < 0.65:
            script.append(("cancel", rng.randint(0, 1 << 30)))
        elif roll < 0.85:
            script.append(("run_until", round(rng.uniform(0.0, 520.0), 3)))
        elif roll < 0.95:
            script.append(("run_budget", rng.randint(1, 5)))
        else:
            script.append(("step",))
    return script


def wheel_oracle(
    seed: int,
    make_engine: Callable[[], object] = WheelEngine,
    ops: int = 120,
) -> OracleResult:
    """Timing-wheel engine vs the sorted-list reference wheel.

    Same differential shape as :func:`engine_oracle`, with the script
    biased toward the wheel's hazard surface: horizon-boundary delays,
    same-tick FIFO bursts, cancellations into every band, and bounded
    runs that leave the cursor mid-rotation.  After the script, both
    sides drain completely so far-future (overflow-band) events and the
    cascades that rehome them are compared too, not left pending.
    """
    rng = random.Random(0x4EE1 ^ (seed * 0x9E3779B97F4A7C15))
    result = OracleResult(oracle="wheel", seed=seed)
    script = _generate_wheel_script(rng, ops)
    fast = _EngineScriptDriver(make_engine())
    reference = _EngineScriptDriver(ReferenceWheel())
    for i, op in enumerate(script):
        result.cases += 1
        fast.apply(op)
        reference.apply(op)
        if fast.observables() != reference.observables():
            result._note(
                f"op {i} {op[0]}",
                f"fast={fast.observables()} reference={reference.observables()}",
            )
            break  # Diverged; every later comparison is noise.
    else:
        result.cases += 1
        fast.engine.run()
        reference.engine.run()
        if fast.observables() != reference.observables():
            result._note(
                "final drain",
                f"fast={fast.observables()} reference={reference.observables()}",
            )
    result.cases += 1
    if fast.log != reference.log:
        result._note(
            "fired-event log",
            f"fast fired {len(fast.log)} events, reference {len(reference.log)}; "
            "first difference at index "
            f"{next((j for j, (a, b) in enumerate(zip(fast.log, reference.log)) if a != b), min(len(fast.log), len(reference.log)))}",
        )
    return result


def _digest(results: Sequence) -> str:
    """Canonical JSON digest of a trial-result list."""
    return json.dumps(results, sort_keys=True)


def chain_trial(seed: int) -> dict:
    """Module-level (picklable) trial for the parallel-digest oracle.

    Runs a capped judgment chain on a seed-derived RNG stream and returns a
    JSON-able summary; any RNG leakage across trials or ordering effect in
    the fan-out changes the digest.
    """
    outcome = simulate_judgment_chain(
        0.05, 0.2, judgments=300, maximum=256.0, seed=seed
    )
    return {
        "seed": seed,
        "executing": outcome.executing_time,
        "suspended": outcome.suspended_time,
        "counts": list(outcome.state_counts),
    }


def parallel_oracle(
    seed: int,
    trials: int = 4,
    trial: Callable[[int], dict] = chain_trial,
    parallel_jobs: int = 2,
) -> OracleResult:
    """Parallel fan-out vs serial execution: digests must be bit-identical.

    Runs the same seeded trial sweep through :class:`ParallelRunner` at
    ``jobs=1`` (the pure serial path) and ``jobs=parallel_jobs`` (the
    process-pool path) and compares canonical JSON digests of the full
    result lists.
    """
    result = OracleResult(oracle="parallel", seed=seed)
    seed_base = 10_000 + seed * 1_000
    serial = ParallelRunner(jobs=1).run(trial, trials, seed_base=seed_base)
    fanned = ParallelRunner(jobs=parallel_jobs).run(trial, trials, seed_base=seed_base)
    result.cases += 1
    if _digest(serial) != _digest(fanned):
        result._note(
            f"digest trials={trials} seed_base={seed_base}",
            "serial and parallel result digests differ",
        )
    return result


def chain_rng_oracle(seed: int, trials: int = 6) -> OracleResult:
    """Per-trial RNG isolation in the judgment-chain simulator.

    Same seed twice must be bit-identical; distinct seeds must produce
    distinct streams (with overwhelming probability for chains this long);
    and running a sweep in reverse order must not change any per-seed
    result — the signature of a shared module-level stream.
    """
    result = OracleResult(oracle="chain-rng", seed=seed)
    seeds = [seed * 100 + i for i in range(trials)]
    forward = [chain_trial(s) for s in seeds]
    backward = list(reversed([chain_trial(s) for s in reversed(seeds)]))
    for s, a, b in zip(seeds, forward, backward):
        result.cases += 1
        if a != b:
            result._note(
                f"order-independence seed={s}",
                "per-seed result changed with sweep order (shared RNG stream)",
            )
    result.cases += 1
    streams = {
        _digest([{k: v for k, v in r.items() if k != "seed"}]) for r in forward
    }
    if len(streams) != len(forward):
        result._note(
            "seed-separation",
            f"seeds {seeds} produced colliding chain results",
        )
    repeat = [chain_trial(s) for s in seeds]
    result.cases += 1
    if repeat != forward:
        result._note("reproducibility", "same seeds, different results")
    return result
