"""Slow, obviously-correct reference implementations for differential oracles.

Three PRs of optimization replaced transparent code with fast paths: the
sign test indexes precomputed threshold tables instead of walking binomial
tails, the event engine keeps an O(1) pending counter and compacts cancelled
heap entries, and trial sweeps fan out across processes.  Each fast path has
a twin here that does the naive thing — linear tail walks, linear heap
scans, no counters, no compaction — written for legibility rather than
speed.  The oracles in :mod:`repro.verify.oracles` drive both sides with
identical seeded inputs and assert identical outputs.

References intentionally avoid sharing code with the optimized
implementations beyond the primitive tail probabilities in
:mod:`repro.core.binomial` (themselves cross-checked against scipy by the
test suite): shared logic would let one bug hide on both sides of the diff.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.core.binomial import binomial_cdf, binomial_sf
from repro.core.signtest import Judgment
from repro.simos.engine import SimulationError

__all__ = [
    "reference_poor_threshold",
    "reference_good_threshold",
    "ReferenceSignTest",
    "ReferenceHandle",
    "ReferenceEngine",
    "ReferenceWheel",
]


def reference_poor_threshold(n: int, alpha: float) -> int:
    """Smallest ``r`` with ``P(R >= r | n, 1/2) <= alpha``, by linear walk.

    No normal-approximation guess, no caching: start at ``r = 0`` and walk
    up until the exact upper tail drops to ``alpha``.  Returns ``n + 1``
    when no count is extreme enough.  Valid only in the exact regime
    (``n`` at most ``signtest._EXACT_LIMIT``); the production function's
    large-``n`` approximation is deliberately out of scope here.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    for r in range(n + 1):
        if binomial_sf(n, r) <= alpha:
            return r
    return n + 1


def reference_good_threshold(n: int, beta: float) -> int:
    """Largest ``r`` with ``P(R <= r | n, 1/2) <= beta``, by linear walk.

    Returns ``-1`` when no count is small enough.  Exact-regime counterpart
    of :func:`repro.core.signtest.good_threshold`.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    for r in range(n, -1, -1):
        if binomial_cdf(n, r) <= beta:
            return r
    return -1


class ReferenceSignTest:
    """Sequential sign test that recomputes its thresholds on every sample.

    Mirrors :class:`repro.core.signtest.SignTest`'s sequential semantics —
    the window resets on a POOR or GOOD verdict, or silently when it reaches
    ``max_samples`` — but makes every decision by walking exact binomial
    tails from scratch, never touching the precomputed threshold tables.
    ``max_samples`` must stay within the exact regime (<= 256).
    """

    def __init__(self, alpha: float, beta: float, max_samples: int) -> None:
        self.alpha = alpha
        self.beta = beta
        self.max_samples = max_samples
        self._n = 0
        self._below = 0

    @property
    def sample_count(self) -> int:
        """Samples in the current window."""
        return self._n

    @property
    def below_count(self) -> int:
        """Below-target samples in the current window."""
        return self._below

    def add_sample(self, below_target: bool) -> Judgment:
        """Record one comparison; return the verdict (window-resetting)."""
        self._n += 1
        if below_target:
            self._below += 1
        if self._below >= reference_poor_threshold(self._n, self.alpha):
            verdict = Judgment.POOR
        elif self._below <= reference_good_threshold(self._n, self.beta):
            verdict = Judgment.GOOD
        else:
            verdict = Judgment.INDETERMINATE
        if verdict is not Judgment.INDETERMINATE or self._n >= self.max_samples:
            self._n = 0
            self._below = 0
        return verdict


class ReferenceHandle:
    """A cancellable reference to one :class:`ReferenceEngine` event."""

    def __init__(self, when: float, seq: int, fn: Callable[..., None], args: tuple) -> None:
        self.when = when
        self.seq = seq
        self.fn: Callable[..., None] | None = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True
        self.fn = None
        self.args = ()


class ReferenceEngine:
    """Naive event loop: an unsorted list scanned linearly for the minimum.

    Behaviourally identical to :class:`repro.simos.engine.Engine` — same
    (time, sequence) firing order, same ``run``/``step``/``drain`` contract,
    same scheduling validation — but with none of the accounting the fast
    engine optimizes: :attr:`pending` is a full scan, cancelled entries are
    left in place until their turn comes, and nothing is ever compacted.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._events: list[ReferenceHandle] = []
        self._seq = 0
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Scheduled events not yet fired or cancelled (full scan)."""
        return sum(1 for h in self._events if not h.cancelled)

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> ReferenceHandle:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        if not math.isfinite(when):
            raise SimulationError(f"event time must be finite, got {when}")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before current time {self._now}"
            )
        handle = ReferenceHandle(when, self._seq, fn, args)
        self._seq += 1
        self._events.append(handle)
        return handle

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> ReferenceHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def post_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Non-cancellable twin of :meth:`call_at` (no handle returned).

        The fast engine pushes a bare tuple for these; the reference keeps
        a normal handle and simply never hands it out.
        """
        self.call_at(when, fn, *args)

    def post_after(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Non-cancellable twin of :meth:`call_after` (no handle returned)."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self.call_at(self._now + delay, fn, *args)

    def _next_live(self) -> ReferenceHandle | None:
        best: ReferenceHandle | None = None
        for handle in self._events:
            if handle.cancelled:
                continue
            if best is None or (handle.when, handle.seq) < (best.when, best.seq):
                best = handle
        return best

    def step(self) -> bool:
        """Fire the next event; return ``False`` if nothing is pending."""
        handle = self._next_live()
        if handle is None:
            self._events.clear()
            return False
        self._events.remove(handle)
        self._now = handle.when
        fn, args = handle.fn, handle.args
        handle.cancel()
        self._events_fired += 1
        assert fn is not None  # live handles always carry their callback
        fn(*args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until drained, ``until`` passes, or ``max_events`` fire."""
        fired = 0
        while True:
            head = self._next_live()
            if head is None:
                break
            if until is not None and head.when > until:
                break
            if max_events is not None and fired >= max_events:
                return self._now
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def drain(self) -> None:
        """Discard all pending events."""
        for handle in self._events:
            handle.cancel()
        self._events.clear()


class ReferenceWheel:
    """Sorted-list twin of :class:`repro.simos.wheel.WheelEngine`.

    The timing wheel's contract is exactly the heap engine's: fire in
    ``(when, seq)`` order, FIFO among same-time events, regardless of
    which wheel level, overflow band, or ready heap an entry landed in.
    This twin keeps one flat list sorted by ``(when, seq)`` via
    :func:`bisect.insort` — no levels, no cascades, no bitmaps — so any
    divergence points at the wheel's placement or cascade logic, not at
    a shared abstraction.  Distinct from :class:`ReferenceEngine` (the
    unsorted linear-scan twin) so the two references cannot share a bug.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._sorted: list[tuple[float, int, ReferenceHandle]] = []
        self._seq = 0
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Scheduled events not yet fired or cancelled (full scan)."""
        return sum(1 for _, _, h in self._sorted if not h.cancelled)

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> ReferenceHandle:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        import bisect

        if not math.isfinite(when):
            raise SimulationError(f"event time must be finite, got {when}")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before current time {self._now}"
            )
        handle = ReferenceHandle(when, self._seq, fn, args)
        bisect.insort(self._sorted, (when, self._seq, handle))
        self._seq += 1
        return handle

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> ReferenceHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def post_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Non-cancellable twin of :meth:`call_at` (no handle returned)."""
        self.call_at(when, fn, *args)

    def post_after(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Non-cancellable twin of :meth:`call_after` (no handle returned)."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self.call_at(self._now + delay, fn, *args)

    def step(self) -> bool:
        """Fire the next event; return ``False`` if nothing is pending."""
        while self._sorted:
            when, _seq, handle = self._sorted.pop(0)
            if handle.cancelled:
                continue
            self._now = when
            fn, args = handle.fn, handle.args
            handle.cancel()
            self._events_fired += 1
            assert fn is not None  # live handles always carry their callback
            fn(*args)
            return True
        return False

    def _peek_live(self) -> float | None:
        for when, _seq, handle in self._sorted:
            if not handle.cancelled:
                return when
        return None

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until drained, ``until`` passes, or ``max_events`` fire."""
        fired = 0
        while True:
            head = self._peek_live()
            if head is None:
                break
            if until is not None and head > until:
                break
            if max_events is not None and fired >= max_events:
                return self._now
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def drain(self) -> None:
        """Discard all pending events."""
        for _, _, handle in self._sorted:
            handle.cancel()
        self._sorted.clear()
