"""AST-based determinism lint for the regulation core and simulator.

The reproduction's contract is that a seeded run replays bit-identically —
across processes, machines, and Python invocations.  Three classes of
construct silently break that contract, so this lint forbids them in
``src/repro/core`` and ``src/repro/simos``:

* **wall-clock** — reading real time (``time.time``/``monotonic``/
  ``perf_counter``/..., ``datetime.now``/``utcnow``/``today``) couples
  results to the host.  Simulation time must come from the engine;
  ``time.sleep`` is permitted (it delays, it doesn't measure).
* **unseeded-rng** — module-level ``random`` functions, argless
  ``random.Random()``, ``os.urandom``, ``uuid.uuid1``/``uuid4``, and
  anything from ``secrets`` draw from global or entropy-backed state.
  Every stream must be a ``random.Random(seed)`` derived from an explicit
  seed.
* **hash-order** — the builtin ``hash()`` is randomized per process for
  strings (PYTHONHASHSEED), and iterating a ``set`` (literal,
  comprehension, or ``set()``/``frozenset()`` call) observes that order.
  Order-insensitive consumers (``sorted``, ``min``, ``max``, ``sum``,
  ``len``, ``any``, ``all``) are fine.  Dicts preserve insertion order in
  modern Python and are not flagged.

A deliberate exception is marked in place with a ``# verify: allow`` (or
rule-specific ``# verify: allow-<rule>``) comment on the offending line —
the audited escape hatch, used e.g. by the real-time clock adapter whose
entire job is reading the wall clock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["LintFinding", "RULES", "lint_source", "lint_paths", "default_lint_paths"]

#: Rule names and one-line descriptions (``repro verify list`` prints these).
RULES = {
    "wall-clock": "reads real time instead of simulation/injected time",
    "unseeded-rng": "draws randomness from global or entropy-backed state",
    "hash-order": "depends on per-process hash randomization or set order",
    "slots": "hot-path class lacks __slots__ (per-instance dict churn)",
}

_WALL_CLOCK_TIME_FNS = {
    "time",
    "monotonic",
    "perf_counter",
    "process_time",
    "thread_time",
    "time_ns",
    "monotonic_ns",
    "perf_counter_ns",
    "process_time_ns",
    "clock_gettime",
    "clock_gettime_ns",
}
_WALL_CLOCK_DATETIME_FNS = {"now", "utcnow", "today"}
_UNSEEDED_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "getrandbits",
    "randbytes",
    "seed",
}
#: Builtins/constructs whose output order mirrors the input's iteration order.
#: (Order-insensitive consumers — sorted, min, max, sum, len, any, all — are
#: deliberately absent: feeding them a set is safe.)
_ORDER_SENSITIVE = {"list", "tuple", "iter", "enumerate", "reversed"}

#: Base classes whose subclasses are exempt from the ``slots`` rule: enums
#: and exceptions are not hot-path instances, and Protocol/ABC/NamedTuple/
#: TypedDict classes are structural, not allocated per event.
_SLOTS_EXEMPT_BASES = {
    "Enum",
    "IntEnum",
    "StrEnum",
    "Flag",
    "IntFlag",
    "Protocol",
    "NamedTuple",
    "TypedDict",
    "ABC",
    "BaseException",
    "Exception",
}

_ALLOW_MARKER = "# verify: allow"


@dataclass(frozen=True)
class LintFinding:
    """One determinism hazard found in a source file."""

    path: str
    line: int
    rule: str
    message: str


class _Imports:
    """Tracks how hazard modules are visible in the linted file."""

    def __init__(self) -> None:
        self.module_aliases: dict[str, str] = {}  # local name -> module
        self.direct: dict[str, tuple[str, str]] = {}  # local name -> (module, original)

    def visit(self, node: ast.AST) -> None:
        """Record ``import``/``from ... import`` bindings."""
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                self.direct[alias.asname or alias.name] = (node.module, alias.name)


class _DeterminismVisitor(ast.NodeVisitor):
    """Walks one module's AST and collects determinism findings."""

    def __init__(self, path: str, allowed_lines: dict[int, str]) -> None:
        self.path = path
        self.allowed_lines = allowed_lines
        self.findings: list[LintFinding] = []
        self.imports = _Imports()

    # -- helpers ---------------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        allowed = self.allowed_lines.get(line)
        if allowed is not None and (allowed == "" or allowed == rule):
            return
        self.findings.append(
            LintFinding(path=self.path, line=line, rule=rule, message=message)
        )

    def _call_target(self, func: ast.AST) -> tuple[str | None, str | None]:
        """Resolve a call's ``(module, function)`` through local imports.

        Returns ``(None, name)`` for bare names that were not imported
        (builtins) and ``(None, None)`` for anything unresolvable.
        """
        if isinstance(func, ast.Name):
            if func.id in self.imports.direct:
                return self.imports.direct[func.id]
            return None, func.id
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base in self.imports.module_aliases:
                return self.imports.module_aliases[base], func.attr
            if base in self.imports.direct:
                # e.g. ``from datetime import datetime`` then datetime.now().
                module, original = self.imports.direct[base]
                return f"{module}.{original}", func.attr
            return None, None
        return None, None

    def _is_set_expression(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            module, name = self._call_target(node.func)
            return module is None and name in ("set", "frozenset")
        return False

    # -- visitors ---------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        """Track plain imports."""
        self.imports.visit(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Track from-imports."""
        self.imports.visit(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag wall-clock reads, unseeded RNG, and hash()/set hazards."""
        module, name = self._call_target(node.func)
        if module == "time" and name in _WALL_CLOCK_TIME_FNS:
            self._flag(node, "wall-clock", f"time.{name}() reads the host clock")
        elif module in ("datetime.datetime", "datetime.date") and (
            name in _WALL_CLOCK_DATETIME_FNS
        ):
            self._flag(node, "wall-clock", f"datetime {name}() reads the host clock")
        elif module == "random" and name in _UNSEEDED_RANDOM_FNS:
            self._flag(
                node,
                "unseeded-rng",
                f"random.{name}() uses the shared module-level stream",
            )
        elif module == "random" and name == "Random" and not node.args and not node.keywords:
            self._flag(
                node,
                "unseeded-rng",
                "random.Random() without a seed draws from OS entropy",
            )
        elif module == "os" and name == "urandom":
            self._flag(node, "unseeded-rng", "os.urandom() is entropy-backed")
        elif module == "uuid" and name in ("uuid1", "uuid4"):
            self._flag(node, "unseeded-rng", f"uuid.{name}() is non-deterministic")
        elif module == "secrets":
            self._flag(node, "unseeded-rng", f"secrets.{name}() is entropy-backed")
        elif module is None and name == "hash" and node.args:
            self._flag(
                node,
                "hash-order",
                "builtin hash() is randomized per process for strings",
            )
        elif (
            module is None
            and name in _ORDER_SENSITIVE
            and node.args
            and self._is_set_expression(node.args[0])
        ):
            self._flag(
                node,
                "hash-order",
                f"{name}() over a set observes hash-randomized order",
            )
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Flag hot-path classes that silently lost their ``__slots__``."""
        self._check_slots(node)
        self.generic_visit(node)

    def _check_slots(self, node: ast.ClassDef) -> None:
        # A ``# verify: allow-slots`` marker anywhere in the class body
        # waives the class (the marker usually sits under the docstring,
        # next to the explanation of *why* the instance dict is needed).
        for lineno in range(node.lineno, (node.end_lineno or node.lineno) + 1):
            if self.allowed_lines.get(lineno) == "slots":
                return
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
            ):
                return
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                _module, name = self._call_target(decorator.func)
                if name == "dataclass" and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                ):
                    return
        for base in node.bases:
            name = (
                base.id
                if isinstance(base, ast.Name)
                else base.attr if isinstance(base, ast.Attribute) else None
            )
            if name in _SLOTS_EXEMPT_BASES or (
                name is not None and name.endswith(("Error", "Exception", "Warning"))
            ):
                return
        self._flag(
            node,
            "slots",
            f"class {node.name} lacks __slots__ (pays per-instance dict churn "
            "on the hot path; add __slots__/dataclass(slots=True) or waive "
            "with '# verify: allow-slots')",
        )

    def visit_For(self, node: ast.For) -> None:
        """Flag iteration directly over a set expression."""
        if self._is_set_expression(node.iter):
            self._flag(
                node,
                "hash-order",
                "for-loop over a set observes hash-randomized order",
            )
        self.generic_visit(node)


def _allowed_lines(source: str) -> dict[int, str]:
    """Map line numbers carrying an allow marker to the allowed rule.

    ``# verify: allow`` waives every rule on its line; ``# verify:
    allow-<rule>`` waives just that rule (the empty string means "all").
    """
    allowed: dict[int, str] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        marker = text.find(_ALLOW_MARKER)
        if marker < 0:
            continue
        suffix = text[marker + len(_ALLOW_MARKER):].strip()
        if suffix.startswith("-"):
            # ``allow-<rule>``, optionally followed by a parenthesized
            # justification: ``# verify: allow-slots (monitor shadows ...)``.
            allowed[lineno] = suffix[1:].split(None, 1)[0] if suffix[1:] else ""
        else:
            allowed[lineno] = ""
    return allowed


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source text; return its findings in line order."""
    tree = ast.parse(source, filename=path)
    visitor = _DeterminismVisitor(path, _allowed_lines(source))
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.line, f.rule))


def default_lint_paths() -> list[Path]:
    """The directories the determinism contract covers (core + simos)."""
    import repro

    package = Path(repro.__file__).resolve().parent
    return [package / "core", package / "simos"]


def lint_paths(paths: Iterable[str | Path] | None = None) -> list[LintFinding]:
    """Lint every ``.py`` file under ``paths`` (default: core + simos).

    Files are visited in sorted order so output is stable; a path may be a
    single file or a directory walked recursively.
    """
    roots: Sequence[Path] = (
        [Path(p) for p in paths] if paths is not None else default_lint_paths()
    )
    findings: list[LintFinding] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            source = file.read_text(encoding="utf-8")
            findings.extend(lint_source(source, path=str(file)))
    return findings
