"""Conformance verification for the MS Manners reproduction.

Three complementary layers defend the codebase's correctness and
determinism contracts:

* **Differential oracles** (:mod:`repro.verify.oracles`) run optimized
  implementations against naive references
  (:mod:`repro.verify.reference`) — cached sign-test threshold tables vs
  direct binomial tail walks, the compacting O(1)-counter event engine vs
  a linear-scan engine, parallel vs serial trial fan-out — over seeded
  randomized workloads and flag any observable divergence.
* **Runtime invariant checkers** (:mod:`repro.verify.invariants`) attach
  to live components and verify the paper's laws on every transition:
  suspension doubling and its cap, probation duty-cycle floors, monotone
  simulation time, calibrator target finiteness, and export/import
  round-trip fidelity.
* **A determinism lint** (:mod:`repro.verify.lint`) statically forbids
  wall-clock reads, unseeded randomness, and hash-order dependence in
  ``repro.core`` and ``repro.simos``.

:mod:`repro.verify.harness` sweeps the oracles and seeded invariant
drives across seeds; ``repro verify run|lint|list`` is the CLI entry and
CI gate.  See ``docs/verification.md`` for the full design.
"""

from repro.verify.harness import (
    INVARIANT_DRIVES,
    ORACLES,
    DriveResult,
    VerifyReport,
    run_verification,
)
from repro.verify.invariants import (
    EngineInvariantMonitor,
    InvariantViolation,
    RegulatorInvariantMonitor,
    SuspensionInvariantMonitor,
    VerificationError,
    ViolationRecorder,
    check_regulator_roundtrip,
)
from repro.verify.lint import RULES, LintFinding, lint_paths, lint_source
from repro.verify.oracles import (
    OracleMismatch,
    OracleResult,
    chain_rng_oracle,
    engine_oracle,
    parallel_oracle,
    signtest_oracle,
)

__all__ = [
    "ORACLES",
    "INVARIANT_DRIVES",
    "RULES",
    "DriveResult",
    "VerifyReport",
    "run_verification",
    "VerificationError",
    "InvariantViolation",
    "ViolationRecorder",
    "SuspensionInvariantMonitor",
    "EngineInvariantMonitor",
    "RegulatorInvariantMonitor",
    "check_regulator_roundtrip",
    "LintFinding",
    "lint_source",
    "lint_paths",
    "OracleMismatch",
    "OracleResult",
    "signtest_oracle",
    "engine_oracle",
    "parallel_oracle",
    "chain_rng_oracle",
]
