"""Simulated CPU: strict priority with round-robin time slicing.

Models the scheduling behaviour the paper's experiments depend on:

* **Strict priority** — a runnable thread at a higher priority level always
  runs before any thread at a lower level, and preempts a lower-level
  thread the moment it becomes runnable.  This is what "reducing the
  defragmenter's CPU priority" means in Figures 3-5: the low-importance
  process gets the CPU only when nothing at normal priority wants it.
* **Round-robin within a level** — equal-priority threads share the CPU in
  quantum-sized slices, giving the roughly *symmetric* CPU contention the
  paper's core assumption requires (section 3).

Threads never call this module directly; they yield
:class:`~repro.simos.effects.UseCPU` and the kernel forwards the request
here.  The CPU calls back into the kernel when a burst completes.

Priorities follow a simplified Windows NT layering (section 2's
"time-honored method"): IDLE < LOW < NORMAL < HIGH.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.simos.engine import EventHandle, SimulationError
from repro.simos.wheel import EventCore

__all__ = ["CpuPriority", "CpuStats", "CPU"]


class CpuPriority(enum.IntEnum):
    """Simplified NT-style CPU priority classes (higher value wins)."""

    IDLE = 0
    LOW = 1
    NORMAL = 2
    HIGH = 3


@dataclass(slots=True)
class CpuStats:
    """Aggregate CPU accounting."""

    busy_time: float = 0.0
    bursts_completed: int = 0
    preemptions: int = 0
    context_switches: int = 0


class _Burst:
    """One thread's outstanding CPU demand."""

    __slots__ = ("tid", "remaining", "priority", "on_done")

    def __init__(
        self, tid: Hashable, remaining: float, priority: int, on_done: Callable[[], None]
    ) -> None:
        self.tid = tid
        self.remaining = remaining
        self.priority = priority
        self.on_done = on_done


class CPU:
    """A single processor with priority run queues."""

    __slots__ = (
        "_engine",
        "_quantum",
        "_queues",
        "_current",
        "_slice_started",
        "_slice_event",
        "_per_thread_busy",
        "stats",
    )

    def __init__(self, engine: EventCore, quantum: float = 0.02) -> None:
        if quantum <= 0:
            raise SimulationError(f"quantum must be positive, got {quantum}")
        self._engine = engine
        self._quantum = quantum
        self._queues: dict[int, deque[_Burst]] = {}
        self._current: _Burst | None = None
        self._slice_started = 0.0
        self._slice_event: EventHandle | None = None
        self._per_thread_busy: dict[Hashable, float] = {}
        self.stats = CpuStats()

    # -- introspection --------------------------------------------------------
    @property
    def quantum(self) -> float:
        """Round-robin time slice, in seconds."""
        return self._quantum

    @property
    def running(self) -> Hashable | None:
        """The thread currently holding the processor, if any."""
        return self._current.tid if self._current is not None else None

    def thread_time(self, tid: Hashable) -> float:
        """Accumulated CPU service time consumed by ``tid``."""
        total = self._per_thread_busy.get(tid, 0.0)
        if self._current is not None and self._current.tid == tid:
            total += self._engine.now - self._slice_started
        return total

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of time the CPU was busy since ``since``."""
        elapsed = self._engine.now - since
        if elapsed <= 0:
            return 0.0
        busy = self.stats.busy_time
        if self._current is not None:
            busy += self._engine.now - self._slice_started
        return min(busy / elapsed, 1.0)

    # -- requests ---------------------------------------------------------------
    def request(
        self,
        tid: Hashable,
        service: float,
        priority: int,
        on_done: Callable[[], None],
    ) -> None:
        """Queue a CPU burst of ``service`` seconds for thread ``tid``.

        ``on_done`` fires (via the event queue) when the full service has
        been delivered.  A thread may have at most one outstanding burst.
        """
        if service < 0:
            raise SimulationError(f"CPU service must be non-negative, got {service}")
        if service == 0.0:
            # Zero-length bursts complete immediately but still round-trip
            # through the event queue for deterministic ordering.
            self._engine.post_after(0.0, on_done)
            return
        burst = _Burst(tid, service, priority, on_done)
        if self._current is not None and priority > self._current.priority:
            self._preempt()
        self._enqueue(burst)
        self._dispatch()

    def remove(self, tid: Hashable) -> float | None:
        """Forcibly remove ``tid``'s outstanding burst (debug suspension).

        Returns the remaining service so the burst can be re-queued on
        resume, or ``None`` if the thread had no outstanding burst.
        """
        if self._current is not None and self._current.tid == tid:
            burst = self._current
            self._stop_slice()
            return burst.remaining
        for queue in self._queues.values():
            for burst in queue:
                if burst.tid == tid:
                    queue.remove(burst)
                    return burst.remaining
        return None

    # -- internals -----------------------------------------------------------------
    def _enqueue(self, burst: _Burst) -> None:
        self._queues.setdefault(burst.priority, deque()).append(burst)

    def _next_burst(self) -> _Burst | None:
        for priority in sorted(self._queues, reverse=True):
            queue = self._queues[priority]
            if queue:
                return queue.popleft()
        return None

    def _dispatch(self) -> None:
        if self._current is not None:
            return
        burst = self._next_burst()
        if burst is None:
            return
        self._current = burst
        self._slice_started = self._engine.now
        slice_len = min(self._quantum, burst.remaining)
        self._slice_event = self._engine.call_after(slice_len, self._on_slice_end)
        self.stats.context_switches += 1

    def _charge_current(self) -> None:
        assert self._current is not None
        used = self._engine.now - self._slice_started
        self._current.remaining -= used
        self.stats.busy_time += used
        self._per_thread_busy[self._current.tid] = (
            self._per_thread_busy.get(self._current.tid, 0.0) + used
        )

    def _stop_slice(self) -> None:
        """Halt the current slice without requeueing (caller handles burst)."""
        if self._slice_event is not None:
            self._slice_event.cancel()
            self._slice_event = None
        if self._current is not None:
            self._charge_current()
            self._current = None
        self._dispatch()

    def _preempt(self) -> None:
        """A higher-priority burst arrived: put the current one back."""
        assert self._current is not None
        if self._slice_event is not None:
            self._slice_event.cancel()
            self._slice_event = None
        self._charge_current()
        burst = self._current
        self._current = None
        self.stats.preemptions += 1
        if burst.remaining > 0:
            # Preempted threads go to the *front* of their level so they
            # finish their interrupted slice first.
            self._queues.setdefault(burst.priority, deque()).appendleft(burst)
        else:
            self._engine.post_after(0.0, burst.on_done)

    def _on_slice_end(self) -> None:
        assert self._current is not None
        self._slice_event = None
        self._charge_current()
        burst = self._current
        self._current = None
        if burst.remaining > 1e-12:
            self._enqueue(burst)
        else:
            self.stats.bursts_completed += 1
            self._engine.post_after(0.0, burst.on_done)
        self._dispatch()
