"""Discrete-event simulation engine.

A minimal, fast event core: a binary heap of ``(time, sequence, callback)``
entries.  Everything in :mod:`repro.simos` — the CPU scheduler, disks, bus,
timers, and the MS Manners bridge — is built from these primitives.

Determinism: two events scheduled for the same instant fire in scheduling
order (the monotone sequence number breaks ties), so a seeded simulation
replays exactly.  Time is a float in seconds, starting at 0.

Hot-path accounting: the engine maintains a live count of pending
(scheduled, not yet fired or cancelled) events, so :attr:`Engine.pending`
is O(1) rather than a heap scan, and it compacts the heap when cancelled
entries dominate it — a long regulator suspension cancels and reschedules
timers repeatedly, and without compaction those inert entries would bloat
the heap and slow every push/pop.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

__all__ = ["EventHandle", "Engine", "SimulationError"]

#: Compact the heap when it holds more than this many cancelled entries
#: *and* they outnumber the live ones.  Small enough to bound waste, large
#: enough that compaction cost amortizes to O(1) per cancellation.
_COMPACT_MIN_STALE = 64


class SimulationError(RuntimeError):
    """The simulation was driven into an invalid state."""


class EventHandle:
    """A cancellable reference to one scheduled event."""

    __slots__ = ("when", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(
        self,
        when: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        engine: "Engine | None" = None,
    ) -> None:
        self.when = when
        self.seq = seq
        self.fn: Callable[..., None] | None = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None  # Free references early; the heap entry stays inert.
        self.args = ()
        engine = self._engine
        if engine is not None:
            engine._note_cancel()

    def _consume(self) -> None:
        """Mark fired-and-removed-from-heap (bypasses cancel accounting)."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class Engine:
    """The event heap and simulation clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._events_fired = 0
        self._pending = 0  # live entries in the heap (not fired, not cancelled)
        self._stale = 0  # cancelled entries still sitting in the heap

    # -- time ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed (for instrumentation and sanity checks)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Scheduled events not yet fired or cancelled (O(1))."""
        return self._pending

    # -- scheduling ----------------------------------------------------------
    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        if not math.isfinite(when):
            raise SimulationError(f"event time must be finite, got {when}")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before current time {self._now}"
            )
        handle = EventHandle(when, self._seq, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def _note_cancel(self) -> None:
        """A live heap entry was cancelled; compact if inert entries dominate."""
        self._pending -= 1
        self._stale += 1
        if self._stale > _COMPACT_MIN_STALE and self._stale > self._pending:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        ``heapify`` over ``(when, seq)``-ordered handles preserves the
        firing order exactly, so compaction is invisible to the simulation.
        """
        self._heap = [h for h in self._heap if not h.cancelled]
        heapq.heapify(self._heap)
        self._stale = 0

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; return ``False`` if the heap is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled or handle.fn is None:
                self._stale -= 1
                continue
            self._now = handle.when
            fn, args = handle.fn, handle.args
            handle._consume()  # Mark fired; frees references.
            self._pending -= 1
            self._events_fired += 1
            fn(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until the heap drains, ``until`` passes, or the budget ends.

        Returns the simulation time when execution stopped.  With ``until``,
        the clock is advanced to exactly ``until`` even if the last event
        fired earlier (so back-to-back ``run`` calls tile time seamlessly).
        """
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled or head.fn is None:
                heapq.heappop(self._heap)
                self._stale -= 1
                continue
            if until is not None and head.when > until:
                break
            if max_events is not None and fired >= max_events:
                return self._now
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def drain(self) -> None:
        """Discard all pending events (used when tearing a simulation down)."""
        for handle in self._heap:
            handle._consume()  # Late cancel() calls stay no-ops.
        self._heap.clear()
        self._pending = 0
        self._stale = 0
