"""Discrete-event simulation engine.

A minimal, fast event core: a binary heap of ``(time, sequence, callback,
args)`` entries.  Everything in :mod:`repro.simos` — the CPU scheduler,
disks, bus, timers, and the MS Manners bridge — is built from these
primitives.

Determinism: two events scheduled for the same instant fire in scheduling
order (the monotone sequence number breaks ties), so a seeded simulation
replays exactly.  Time is a float in seconds, starting at 0.

Hot-path design (profile-driven; see docs/performance.md):

* The steady-state scheduling API is :meth:`Engine.post_at` /
  :meth:`Engine.post_after`.  They push a **plain tuple** onto the heap —
  no event object is allocated, no per-event attribute writes happen, and
  ``heapq`` compares entries element-wise in C (the unique sequence number
  means comparison never reaches the callback).  Steady-state simulation
  therefore allocates ~zero event objects beyond the tuples the heap
  itself owns.
* :meth:`Engine.call_at` / :meth:`Engine.call_after` return a cancellable
  :class:`EventHandle`.  Handles are the rare path (retained timers,
  preemptible CPU slices); they are tuple subclasses so they live in the
  same heap and compare in C against plain entries.
* ``pending`` is derived from four monotone counters (scheduled, fired,
  cancelled, drained) instead of being written on every schedule/fire.
* The heap is compacted when cancelled handles dominate it — a long
  regulator suspension cancels and reschedules timers repeatedly, and
  without compaction those inert entries would bloat the heap and slow
  every push/pop.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable

__all__ = [
    "EventHandle",
    "Engine",
    "SimulationError",
    "clamp_horizon",
    "TICK_INDEX_LIMIT",
]

_INF = math.inf

#: Compact the heap when it holds more than this many cancelled entries
#: *and* they outnumber the live ones.  Small enough to bound waste, large
#: enough that compaction cost amortizes to O(1) per cancellation.
_COMPACT_MIN_STALE = 64

#: The largest tick index the wheel core treats as addressable: past this,
#: ``when * ticks_per_second`` is outside exact-integer float territory (and
#: may be ``inf``), so entries belong in the far-future overflow band.  One
#: shared constant so the wheel's overflow test and the backoff clamp agree
#: on where "effectively forever" starts.
TICK_INDEX_LIMIT = 2.0 ** 63


class SimulationError(RuntimeError):
    """The simulation was driven into an invalid state."""


def clamp_horizon(when: float, maximum: float) -> float:
    """Overflow-safe ``min(when, maximum)`` for scheduling horizons.

    Exponential backoff growth and far-future timers both produce times
    whose intermediate float math overflows — ``initial * 2**k`` reaches
    ``inf`` after enough doublings, and ``when * ticks_per_second`` leaves
    the exactly-representable integer range past :data:`TICK_INDEX_LIMIT`.
    Both the suspension backoff (:func:`repro.core.suspension.capped_backoff`)
    and the wheel core's far-future band clamp through this one helper so
    the overflow policy lives in one place: ``inf`` and anything at or past
    ``maximum`` clamp to ``maximum``, while NaN is rejected loudly — a NaN
    horizon would silently disable whatever deadline it guards.
    """
    if when != when:
        raise SimulationError("horizon must not be NaN")
    if when >= maximum:
        return maximum
    return when


class EventHandle(tuple):
    """A cancellable reference to one scheduled event.

    Heap entries are ``(when, seq, fn, args)`` tuples; a handle *is* its
    heap entry (a tuple subclass), so plain posted entries and cancellable
    handles share one heap and compare element-wise in C.  Tuple subclasses
    cannot carry nonempty ``__slots__``, so the two mutable fields
    (``cancelled``, ``_engine``) live in the instance dict — acceptable
    because handles are the rare path.
    """

    # verify: allow-slots (tuple subclass; nonempty __slots__ unsupported)

    #: Class-level default: creation writes only ``_engine``; cancelling or
    #: firing shadows this with an instance attribute.
    cancelled = False

    _engine: "Engine"

    @property
    def when(self) -> float:
        """Absolute firing time."""
        return self[0]

    @property
    def seq(self) -> int:
        """Scheduling-order tie-breaker."""
        return self[1]

    @property
    def fn(self) -> Callable[..., None] | None:
        """The callback, or ``None`` once cancelled or fired."""
        return None if self.cancelled else self[2]

    @property
    def args(self) -> tuple:
        return () if self.cancelled else self[3]

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True  # The heap entry stays behind, inert.
        self._engine._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else f"fn={self[2]!r}"
        return f"<EventHandle when={self[0]} seq={self[1]} {state}>"


class Engine:
    """The event heap and simulation clock."""

    # verify: allow-slots (the verify invariant monitor shadows step/call_at
    # and friends through the instance dict; Engine is one object per
    # simulation, so slots buy nothing here anyway)

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple] = []
        self._seq = 0  # total events ever scheduled (posts + handles)
        self._events_fired = 0
        self._cancelled = 0  # handles cancelled before firing
        self._drained = 0  # live entries discarded by drain()
        self._stale = 0  # cancelled handles still sitting in the heap
        self._monitored = False  # routes run() through step() for audit hooks
        #: Tick-latency instrumentation (attach_tick_observer); ``None``
        #: keeps run() on the uninstrumented fast loops.
        self._tick_observe: Callable[[float], None] | None = None
        self._tick_sample_every = 1024

    # -- time ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed (for instrumentation and sanity checks)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Scheduled events not yet fired or cancelled (O(1), derived)."""
        return self._seq - self._events_fired - self._cancelled - self._drained

    def next_event_time(self) -> float | None:
        """Firing time of the next live event, or ``None`` when drained.

        Skips (and accounts) cancelled entries at the heap head, so the
        returned time is exactly what the next :meth:`step` will fire at.
        Both event cores expose this; wall-clock adapters use it to sleep
        until the next deadline instead of polling.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head.__class__ is not tuple and head.cancelled:
                heapq.heappop(heap)
                self._stale -= 1
                continue
            return head[0]
        return None

    # -- scheduling ----------------------------------------------------------
    def _reject_time(self, when: float) -> None:
        """Cold path: raise the precise error for an out-of-range time."""
        if not math.isfinite(when):
            raise SimulationError(f"event time must be finite, got {when}")
        raise SimulationError(
            f"cannot schedule event at {when} before current time {self._now}"
        )

    def post_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when``; no handle.

        The allocation-free hot path: use this whenever the caller never
        cancels (completion callbacks, device pumps, frame delivery).  The
        chained comparison rejects NaN, ±inf, and past times in one check.
        """
        if not (self._now <= when < _INF):
            self._reject_time(when)
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    def post_after(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds; no handle."""
        when = self._now + delay
        if not (self._now <= when < _INF):
            if delay < 0:
                raise SimulationError(f"delay must be non-negative, got {delay}")
            self._reject_time(when)
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``when``; cancellable."""
        if not (self._now <= when < _INF):
            self._reject_time(when)
        handle = tuple.__new__(EventHandle, (when, self._seq, fn, args))
        handle._engine = self
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds; cancellable."""
        when = self._now + delay
        if not (self._now <= when < _INF):
            if delay < 0:
                raise SimulationError(f"delay must be non-negative, got {delay}")
            self._reject_time(when)
        handle = tuple.__new__(EventHandle, (when, self._seq, fn, args))
        handle._engine = self
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def _note_cancel(self) -> None:
        """A live heap entry was cancelled; compact if inert entries dominate.

        Threshold rule, evaluated on live counters in O(1): rebuild only
        when cancelled entries are numerous (``> _COMPACT_MIN_STALE``) and
        form the majority of the heap (``2 * stale > len(heap)``, i.e.
        stale entries outnumber live ones).  Each rebuild then removes
        more than half the heap, so compaction stays amortized O(1) per
        cancellation — no rescan happens on every trigger check.
        """
        self._cancelled += 1
        stale = self._stale + 1
        self._stale = stale
        if stale > _COMPACT_MIN_STALE and (stale << 1) > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        ``heapify`` over ``(when, seq)``-ordered entries preserves the
        firing order exactly, so compaction is invisible to the simulation.
        """
        self._heap = [
            h for h in self._heap if h.__class__ is tuple or not h.cancelled
        ]
        heapq.heapify(self._heap)
        self._stale = 0

    # -- instrumentation -------------------------------------------------------
    def attach_tick_observer(
        self,
        observe: Callable[[float], None] | None,
        sample_every: int = 1024,
    ) -> None:
        """Feed mean per-event wall latency to ``observe`` while running.

        Routes :meth:`run` through an instrumented loop that reads the
        wall clock once every ``sample_every`` fired events and reports
        the mean seconds-per-event of the batch — a tick-latency
        histogram at a sampling cost of two function calls per batch, so
        the measurement cannot disturb what it measures.  The clock reads
        never touch simulated time or the event stream, so seeded runs
        stay bit-identical.  Pass ``None`` to detach and restore the
        uninstrumented fast loops.
        """
        if sample_every < 1:
            raise SimulationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self._tick_observe = observe
        self._tick_sample_every = sample_every

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; return ``False`` if the heap is empty."""
        heap = self._heap
        while heap:
            head = heapq.heappop(heap)
            if head.__class__ is not tuple:
                if head.cancelled:
                    self._stale -= 1
                    continue
                head.cancelled = True  # Consumed: a late cancel() is a no-op.
            self._now = head[0]
            self._events_fired += 1
            head[2](*head[3])
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until the heap drains, ``until`` passes, or the budget ends.

        Returns the simulation time when execution stopped.  With ``until``,
        the clock is advanced to exactly ``until`` even if the last event
        fired earlier (so back-to-back ``run`` calls tile time seamlessly).
        """
        if self._monitored:
            return self._run_stepped(until, max_events)
        if self._tick_observe is not None:
            return self._run_instrumented(until, max_events)
        heap = self._heap
        pop = heapq.heappop
        if until is None and max_events is None:
            # Drain-all fast loop: no bound checks, no head peeking.
            while heap:
                head = pop(heap)
                if head.__class__ is not tuple:
                    if head.cancelled:
                        self._stale -= 1
                        continue
                    head.cancelled = True
                self._now = head[0]
                self._events_fired += 1
                head[2](*head[3])
            return self._now
        fired = 0
        while heap:
            head = heap[0]
            if head.__class__ is not tuple and head.cancelled:
                pop(heap)
                self._stale -= 1
                continue
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                return self._now
            pop(heap)
            if head.__class__ is not tuple:
                head.cancelled = True
            self._now = head[0]
            self._events_fired += 1
            head[2](*head[3])
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_instrumented(
        self, until: float | None, max_events: int | None
    ) -> float:
        """run() with tick-latency sampling (see attach_tick_observer).

        A clone of the bounded loop that also serves the drain-all case;
        the only additions per event are two integer ops, with the wall
        clock read once per ``sample_every``-event batch.  Wall time here
        is measurement-only: it feeds the observer (a metrics histogram)
        and never reaches simulated time, events, or digests.
        """
        heap = self._heap
        pop = heapq.heappop
        observe = self._tick_observe
        every = self._tick_sample_every
        stamp = time.perf_counter()  # verify: allow-wall-clock (latency metric only)
        batch = 0
        fired = 0
        budget_hit = False
        while heap:
            head = heap[0]
            if head.__class__ is not tuple and head.cancelled:
                pop(heap)
                self._stale -= 1
                continue
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                budget_hit = True
                break
            pop(heap)
            if head.__class__ is not tuple:
                head.cancelled = True
            self._now = head[0]
            self._events_fired += 1
            head[2](*head[3])
            fired += 1
            batch += 1
            if batch >= every:
                now_wall = time.perf_counter()  # verify: allow-wall-clock (latency metric only)
                observe((now_wall - stamp) / batch)
                stamp = now_wall
                batch = 0
        if batch:
            now_wall = time.perf_counter()  # verify: allow-wall-clock (latency metric only)
            observe((now_wall - stamp) / batch)
        if budget_hit:
            return self._now
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_stepped(self, until: float | None, max_events: int | None) -> float:
        """run() routed through ``self.step()`` so monitors see every fire.

        The verify invariant monitor shadows ``step`` (and the scheduling
        methods) in the instance dict; the fast loops above would bypass
        that shadow, so a monitored engine takes this path instead.
        """
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.__class__ is not tuple and head.cancelled:
                heapq.heappop(self._heap)
                self._stale -= 1
                continue
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                return self._now
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def drain(self) -> None:
        """Discard all pending events (used when tearing a simulation down)."""
        self._drained += self.pending
        for head in self._heap:
            if head.__class__ is not tuple:
                head.cancelled = True  # Late cancel() calls stay no-ops.
        self._heap.clear()
        self._stale = 0
