"""Simulated filesystem: volumes, extents, fragmentation, change journal.

Provides exactly the substrate the paper's two low-importance applications
need:

* the **disk defragmenter** (section 8) examines file layouts and
  "rearranges the blocks of one or more files to improve their physical
  locality" — so files here are lists of *extents* (contiguous block runs),
  volumes track free space, and a relocation plan can be computed and
  committed;
* the **SIS Groveler** (section 8) "scans the file system change journal, a
  log that records all changes to the contents of the file system", reads
  file contents, computes signatures, and merges duplicates — so volumes
  keep a USN-style change journal and files carry a content identity that
  duplicate files share.

A volume occupies a block range of one simulated disk; filesystem metadata
operations are free (they would be cached in RAM), while data I/O costs are
paid by the *applications*, which turn the plans produced here into
:class:`~repro.simos.effects.DiskRead`/:class:`DiskWrite` effects.  This
split keeps policy (what to read/write) in the filesystem and timing in the
disk model.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Iterator

from repro.simos.engine import SimulationError

__all__ = [
    "Extent",
    "SimFile",
    "ChangeRecord",
    "Volume",
    "populate_volume",
]


@dataclass(frozen=True, slots=True)
class Extent:
    """A contiguous run of volume blocks."""

    start: int
    count: int

    @property
    def end(self) -> int:
        """One past the last block."""
        return self.start + self.count


@dataclass(slots=True)
class SimFile:
    """One file: a named sequence of extents with a content identity."""

    file_id: int
    path: str
    size: int
    extents: list[Extent]
    #: Files with equal ``content_id`` are byte-identical (what the
    #: Groveler's signature ultimately establishes).
    content_id: int
    mtime: float
    #: Set when the Groveler has merged this file into a common-store file.
    sis_link: int | None = None

    @property
    def blocks(self) -> int:
        """Number of blocks the file occupies."""
        return sum(e.count for e in self.extents)

    @property
    def fragments(self) -> int:
        """Number of extents (1 = fully contiguous)."""
        return len(self.extents)


@dataclass(frozen=True, slots=True)
class ChangeRecord:
    """One entry of the USN-style change journal."""

    usn: int
    file_id: int
    reason: str  # "create" | "modify" | "delete" | "relocate" | "merge"
    when: float


class Volume:
    """A filesystem volume over a block range of one disk."""

    __slots__ = ("name", "disk", "start_block", "total_blocks", "block_size", "_files", "_by_path", "_free", "_journal", "_next_file_id", "_next_usn")

    def __init__(
        self,
        name: str,
        disk: str,
        total_blocks: int,
        block_size: int = 4096,
        start_block: int = 0,
    ) -> None:
        if total_blocks <= 0:
            raise SimulationError(f"volume needs blocks, got {total_blocks}")
        self.name = name
        #: Name of the backing disk (as registered with the kernel).
        self.disk = disk
        self.block_size = block_size
        self.total_blocks = total_blocks
        self.start_block = start_block
        self._free: list[Extent] = [Extent(0, total_blocks)]
        self._files: dict[int, SimFile] = {}
        self._by_path: dict[str, int] = {}
        self._next_file_id = 1
        self._next_usn = 1
        self._journal: list[ChangeRecord] = []

    # -- bookkeeping ------------------------------------------------------------
    @property
    def free_blocks(self) -> int:
        """Unallocated blocks."""
        return sum(e.count for e in self._free)

    @property
    def used_blocks(self) -> int:
        """Allocated blocks."""
        return self.total_blocks - self.free_blocks

    @property
    def file_count(self) -> int:
        """Number of live files."""
        return len(self._files)

    def files(self) -> Iterator[SimFile]:
        """Iterate live files in file-id order."""
        for file_id in sorted(self._files):
            yield self._files[file_id]

    def file(self, file_id: int) -> SimFile:
        """Look up a file by id."""
        try:
            return self._files[file_id]
        except KeyError:
            raise SimulationError(f"no file id {file_id} on {self.name}") from None

    def lookup(self, path: str) -> SimFile:
        """Look up a file by path."""
        try:
            return self._files[self._by_path[path]]
        except KeyError:
            raise SimulationError(f"no file {path!r} on {self.name}") from None

    def mean_fragments_per_file(self) -> float:
        """Average extent count across files (1.0 = perfectly defragmented)."""
        if not self._files:
            return 0.0
        return sum(f.fragments for f in self._files.values()) / len(self._files)

    def to_disk_block(self, volume_block: int) -> int:
        """Translate a volume-relative block to a disk block number."""
        return self.start_block + volume_block

    # -- journal -------------------------------------------------------------------
    @property
    def last_usn(self) -> int:
        """USN of the most recent journal record (0 when empty)."""
        return self._next_usn - 1

    def journal_since(self, usn: int) -> list[ChangeRecord]:
        """Records with USN strictly greater than ``usn``."""
        # The journal is append-only and USNs are dense, so slice directly.
        if usn >= self.last_usn:
            return []
        return self._journal[usn:]

    def _log(self, file_id: int, reason: str, when: float) -> None:
        self._journal.append(ChangeRecord(self._next_usn, file_id, reason, when))
        self._next_usn += 1

    # -- allocation --------------------------------------------------------------------
    def allocate(self, blocks: int, fragments: int = 1, spread_seed: int | None = None) -> list[Extent]:
        """Allocate ``blocks``, optionally deliberately split into fragments.

        ``fragments > 1`` scatters the allocation across the free list to
        build aged, fragmented layouts for experiments (cf. Smith &
        Seltzer's file-system aging, the paper's citation 24).
        """
        if blocks <= 0:
            raise SimulationError(f"allocation must be positive, got {blocks}")
        if blocks > self.free_blocks:
            raise SimulationError(
                f"volume {self.name} full: need {blocks}, have {self.free_blocks}"
            )
        fragments = max(1, min(fragments, blocks))
        piece_sizes = self._split_sizes(blocks, fragments)
        rng = random.Random(spread_seed) if spread_seed is not None else None
        out: list[Extent] = []
        for size in piece_sizes:
            out.append(self._allocate_piece(size, rng))
        return out

    def _split_sizes(self, blocks: int, fragments: int) -> list[int]:
        base = blocks // fragments
        sizes = [base] * fragments
        for i in range(blocks - base * fragments):
            sizes[i] += 1
        return [s for s in sizes if s > 0]

    def _allocate_piece(self, size: int, rng: random.Random | None) -> Extent:
        # First-fit for determinism; a seeded rng picks a random fit instead,
        # which is how fragmented (aged) layouts are manufactured.
        candidates = [i for i, e in enumerate(self._free) if e.count >= size]
        if candidates:
            index = rng.choice(candidates) if rng is not None else candidates[0]
            chunk = self._free[index]
            taken = Extent(chunk.start, size)
            rest = Extent(chunk.start + size, chunk.count - size)
            if rest.count > 0:
                self._free[index] = rest
            else:
                del self._free[index]
            return taken
        largest = self.largest_free_extent()
        raise SimulationError(
            f"volume {self.name}: no contiguous run of {size} blocks "
            f"(largest free: {largest}); allocate with more fragments"
        )

    def free(self, extents: list[Extent]) -> None:
        """Return extents to the free pool (coalescing neighbours)."""
        for extent in extents:
            self._free_extent(extent)

    def _free_extent(self, extent: Extent) -> None:
        starts = [e.start for e in self._free]
        i = bisect.bisect_left(starts, extent.start)
        # Coalesce with the right neighbour, then the left one.
        if i < len(self._free) and extent.end == self._free[i].start:
            extent = Extent(extent.start, extent.count + self._free[i].count)
            del self._free[i]
        if i > 0 and self._free[i - 1].end == extent.start:
            extent = Extent(
                self._free[i - 1].start, self._free[i - 1].count + extent.count
            )
            del self._free[i - 1]
            i -= 1
        self._free.insert(i, extent)

    def largest_free_extent(self) -> int:
        """Size in blocks of the largest contiguous free run."""
        return max((e.count for e in self._free), default=0)

    # -- file operations -----------------------------------------------------------------
    def create_file(
        self,
        path: str,
        size: int,
        when: float,
        content_id: int | None = None,
        fragments: int = 1,
        spread_seed: int | None = None,
    ) -> SimFile:
        """Create a file of ``size`` bytes; logs a journal record."""
        if path in self._by_path:
            raise SimulationError(f"file {path!r} already exists on {self.name}")
        blocks = max(1, -(-size // self.block_size))
        extents = self.allocate(blocks, fragments=fragments, spread_seed=spread_seed)
        file_id = self._next_file_id
        self._next_file_id += 1
        if content_id is None:
            content_id = file_id  # Unique content by default.
        f = SimFile(file_id, path, size, extents, content_id, when)
        self._files[file_id] = f
        self._by_path[path] = file_id
        self._log(file_id, "create", when)
        return f

    def modify_file(self, file_id: int, when: float, new_content_id: int | None = None) -> None:
        """Mark a file's contents changed; logs a journal record.

        Modifying a SIS-merged file breaks the link copy-on-write style:
        the file gets its own freshly allocated blocks again.
        """
        f = self.file(file_id)
        f.mtime = when
        if f.sis_link is not None:
            f.sis_link = None
            blocks = max(1, -(-f.size // self.block_size))
            f.extents = self.allocate(blocks, fragments=1)
        if new_content_id is not None:
            f.content_id = new_content_id
        self._log(file_id, "modify", when)

    def delete_file(self, file_id: int, when: float) -> None:
        """Delete a file, freeing its blocks; logs a journal record."""
        f = self.file(file_id)
        self.free(f.extents)
        del self._files[file_id]
        del self._by_path[f.path]
        self._log(file_id, "delete", when)

    def merge_duplicate(self, file_id: int, into_file_id: int, when: float) -> int:
        """SIS merge: replace a duplicate with a link to the common store.

        Frees the duplicate's blocks and records the link.  Returns the
        number of blocks reclaimed.  Both files must have equal content.
        """
        dup = self.file(file_id)
        keeper = self.file(into_file_id)
        if dup.content_id != keeper.content_id:
            raise SimulationError(
                f"files {file_id} and {into_file_id} are not duplicates"
            )
        if dup.sis_link is not None:
            return 0
        reclaimed = dup.blocks
        self.free(dup.extents)
        dup.extents = []
        dup.sis_link = into_file_id
        self._log(file_id, "merge", when)
        return reclaimed

    # -- I/O planning -------------------------------------------------------------------------
    def read_plan(self, file_id: int, chunk_bytes: int = 65536) -> list[tuple[int, int]]:
        """(disk block, nbytes) operations needed to read the whole file.

        One operation per contiguous chunk, capped at ``chunk_bytes`` — the
        shape of a real buffered read loop.  SIS links read through to the
        common-store file.
        """
        f = self.file(file_id)
        if f.sis_link is not None:
            return self.read_plan(f.sis_link, chunk_bytes)
        chunk_blocks = max(1, chunk_bytes // self.block_size)
        remaining_bytes = f.size
        ops: list[tuple[int, int]] = []
        for extent in f.extents:
            offset = 0
            while offset < extent.count and remaining_bytes > 0:
                run = min(chunk_blocks, extent.count - offset)
                nbytes = min(run * self.block_size, remaining_bytes)
                ops.append((self.to_disk_block(extent.start + offset), nbytes))
                remaining_bytes -= nbytes
                offset += run
        return ops

    def relocation_plan(
        self, file_id: int, chunk_bytes: int = 65536
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]], list[Extent]] | None:
        """Defragmentation plan for one file.

        Returns ``(reads, writes, new_extents)`` — the read operations for
        the current layout, the write operations into a fresh contiguous
        allocation, and the new extents to commit afterwards with
        :meth:`commit_relocation`.  Returns ``None`` when the file is
        already contiguous or no contiguous free run is large enough.
        """
        f = self.file(file_id)
        if f.fragments <= 1 or f.sis_link is not None:
            return None
        blocks = f.blocks
        if self.largest_free_extent() < blocks:
            return None
        reads = self.read_plan(file_id, chunk_bytes)
        new_extents = self.allocate(blocks, fragments=1)
        chunk_blocks = max(1, chunk_bytes // self.block_size)
        writes: list[tuple[int, int]] = []
        target = new_extents[0]
        offset = 0
        remaining_bytes = f.size
        while offset < target.count and remaining_bytes > 0:
            run = min(chunk_blocks, target.count - offset)
            nbytes = min(run * self.block_size, remaining_bytes)
            writes.append((self.to_disk_block(target.start + offset), nbytes))
            remaining_bytes -= nbytes
            offset += run
        return reads, writes, new_extents

    def commit_relocation(self, file_id: int, new_extents: list[Extent], when: float) -> None:
        """Finish a relocation: free old extents, install the new layout."""
        f = self.file(file_id)
        self.free(f.extents)
        f.extents = new_extents
        self._log(file_id, "relocate", when)

    def abort_relocation(self, new_extents: list[Extent]) -> None:
        """Roll back a relocation plan whose I/O never completed."""
        self.free(new_extents)


def populate_volume(
    volume: Volume,
    rng: random.Random,
    file_count: int,
    when: float = 0.0,
    size_range: tuple[int, int] = (8 * 1024, 1024 * 1024),
    fragment_range: tuple[int, int] = (1, 12),
    duplicate_fraction: float = 0.0,
    path_prefix: str = "data",
    age: bool = True,
) -> list[SimFile]:
    """Fill a volume with an aged directory tree.

    ``duplicate_fraction`` of the files duplicate the content of an earlier
    file (the Groveler's prey); fragment counts are uniform over
    ``fragment_range`` (the defragmenter's prey).

    With ``age`` (the default), a same-sized filler file is created after
    each real file and all fillers are deleted at the end — the classic
    create/delete interleaving of file-system aging (cf. Smith & Seltzer,
    the paper's citation 24).  This spreads files uniformly over the
    occupied region, so access-time statistics are stationary across the
    directory tree: an application walking the files sees the same ideal
    progress rate at the start and the end of its pass, which is the
    property the paper's fixed workloads have.
    """
    files: list[SimFile] = []
    fillers: list[SimFile] = []
    for i in range(file_count):
        size = rng.randint(*size_range)
        fragments = rng.randint(*fragment_range)
        content_id: int | None = None
        if files and rng.random() < duplicate_fraction:
            content_id = rng.choice(files).content_id
        f = volume.create_file(
            f"{path_prefix}/dir{i % 16:02d}/file{i:05d}",
            size,
            when=when,
            content_id=content_id,
            fragments=fragments,
            spread_seed=rng.randrange(1 << 30),
        )
        files.append(f)
        if age:
            filler = volume.create_file(
                f"{path_prefix}/__filler{i:05d}",
                rng.randint(*size_range),
                when=when,
                fragments=1,
            )
            fillers.append(filler)
    for filler in fillers:
        volume.delete_file(filler.file_id, when)
    return files
