"""The MS Manners runtime inside the simulator.

This bridge hosts the full orchestration stack of sections 4.5 and 7.1 —
per-thread regulators, per-process supervisors, and the machine-wide
superintendent — against simulated time, and gives simulated applications
the paper's one-call interface: a regulated thread yields
:class:`MannersTestpoint` wherever a real application would call
``Testpoint(index, count, metrics)``, and the yield returns when the thread
may proceed.

Blocking semantics: a thread that yields a processed testpoint gives up the
machine-wide execution slot and is resumed only when (a) its mandated
suspension has elapsed and (b) the supervisor/superintendent pair select it
to run — time-multiplex isolation across all regulated threads of all
registered processes.  Lightweight (rapid successive) testpoints return on
the next event tick without giving up the slot.

The bridge also records a :class:`~repro.simos.trace.TestpointTrace` per
thread for the dynamic-behaviour figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.controller import TestpointDecision, ThreadRegulator
from repro.core.errors import PersistenceError, RegulationStateError
from repro.core.persistence import TargetStore
from repro.core.superintendent import Superintendent
from repro.core.supervisor import Supervisor
from repro.obs import events as obs_events
from repro.obs.metrics import TICK_LATENCY_BUCKETS
from repro.obs.telemetry import scope_label
from repro.simos.effects import Effect
from repro.simos.engine import EventHandle
from repro.simos.kernel import Kernel, SimThread
from repro.simos.trace import TestpointTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["MannersTestpoint", "SetThreadPriority", "SimManners"]


@dataclass(frozen=True, slots=True)
class MannersTestpoint(Effect):
    """The paper's ``Testpoint(index, count, metrics)`` call.

    ``metrics`` are cumulative progress counters for metric set ``index``.
    The yield's result is the :class:`~repro.core.controller.TestpointDecision`.
    """

    metrics: tuple[float, ...]
    index: int = 0


@dataclass(frozen=True, slots=True)
class SetThreadPriority(Effect):
    """The library call by which a thread sets its relative priority.

    "The MS Manners library provides a function call by which each thread
    can set its priority relative to other threads." (section 7.1)
    """

    priority: int


class SimManners:
    """Supervisors + superintendent running on simulated time."""

    __slots__ = ("_kernel", "_config", "_telemetry", "_machine_wide", "_supervisors", "_superintendent", "_registration", "_waiting", "_parked_at", "_timer", "_time", "traces")

    def __init__(
        self,
        kernel: Kernel,
        config: MannersConfig = DEFAULT_CONFIG,
        machine_wide: bool = True,
        telemetry: "Telemetry | None" = None,
        time_source: Callable[[], float] | None = None,
    ) -> None:
        """``machine_wide=False`` gives every process its *own*
        superintendent, disabling cross-process time-multiplex isolation —
        the ablation for section 4.5 (mutually induced suspension).

        ``time_source`` replaces the kernel clock as the time the
        *regulation stack* observes (testpoint timestamps, eligibility,
        hung checks).  Real libraries read an OS clock that can step or
        leap independently of true time; the fault harness exploits this
        seam to feed regulators a skewed clock while the simulation's
        event engine keeps running on honest time.
        """
        self._kernel = kernel
        self._config = config
        self._time: Callable[[], float] = (
            time_source if time_source is not None else (lambda: kernel.now)
        )
        self._machine_wide = machine_wide
        self._telemetry = telemetry
        if telemetry is not None:
            # Engine tick-latency histogram: mean wall-clock cost per fired
            # event, sampled once per batch so the hot loop stays cheap.
            kernel.engine.attach_tick_observer(
                telemetry.metrics.histogram(
                    "engine_tick_latency", TICK_LATENCY_BUCKETS
                ).observe
            )
        self._superintendent = Superintendent(
            usage_decay=config.usage_decay, telemetry=telemetry
        )
        self._supervisors: dict[Hashable, Supervisor] = {}
        #: SimThread -> (supervisor, waiting decision delivery pending?)
        self._registration: dict[SimThread, Supervisor] = {}
        #: Threads parked in a testpoint, with the decision to deliver.
        self._waiting: dict[SimThread, TestpointDecision] = {}
        #: Telemetry-only: park time of each suspended thread, for
        #: suspension_ended events.
        self._parked_at: dict[SimThread, float] = {}
        self.traces: dict[SimThread, TestpointTrace] = {}
        self._timer: EventHandle | None = None
        kernel.register_handler(MannersTestpoint, self._on_testpoint_effect)
        kernel.register_handler(SetThreadPriority, self._on_set_priority)
        kernel.add_listener(self._on_thread_event)

    # -- registration -------------------------------------------------------------
    @property
    def superintendent(self) -> Superintendent:
        """The machine-wide process arbiter."""
        return self._superintendent

    def supervisor(self, process: Hashable) -> Supervisor:
        """The (lazily created) supervisor for a process."""
        sup = self._supervisors.get(process)
        if sup is None:
            boss = (
                self._superintendent
                if self._machine_wide
                else Superintendent(usage_decay=self._config.usage_decay)
            )
            sup = Supervisor(
                self._config,
                superintendent=boss,
                process_id=process,
                telemetry=(
                    None
                    if self._telemetry is None
                    else self._telemetry.scoped(scope_label(process))
                ),
            )
            self._supervisors[process] = sup
        return sup

    def regulate(
        self,
        thread: SimThread,
        priority: int = 0,
        config: MannersConfig | None = None,
        store: TargetStore | None = None,
        app_id: str | None = None,
        comparator=None,
    ) -> ThreadRegulator:
        """Enroll a simulated thread for regulation.

        The thread's kernel ``process`` attribute determines which
        supervisor (and thus which superintendent slot) it belongs to.
        With ``store``/``app_id``, persisted targets are loaded now and the
        regulator starts past bootstrap.  An unreadable target file is not
        fatal: the regulator falls back to a fresh bootstrap (reported as a
        ``recovery`` event), matching the degraded-mode contract of
        ``docs/robustness.md``.
        """
        if thread in self._registration:
            raise RegulationStateError(f"thread {thread!r} already regulated")
        sup = self.supervisor(thread.process)
        regulator = sup.register_thread(
            thread, priority=priority, config=config, comparator=comparator
        )
        if store is not None and app_id is not None:
            quarantined_before = len(store.quarantined)
            try:
                persisted = store.load(app_id)
            except PersistenceError as exc:
                persisted = None
                self._note_load_failure(thread, app_id, str(exc))
            if persisted is not None:
                regulator.import_state(persisted)
            elif len(store.quarantined) > quarantined_before:
                self._note_load_failure(thread, app_id, "target file quarantined")
        self._registration[thread] = sup
        self.traces[thread] = TestpointTrace()
        return regulator

    def _note_load_failure(
        self, thread: SimThread, app_id: str, detail: str
    ) -> None:
        """Report a failed target load and the rebootstrap fallback."""
        tel = self._telemetry
        if tel is None:
            return
        now = self._kernel.now
        tel.tick(now)
        tel.emit(
            obs_events.RecoveryAction(
                t=now,
                src=scope_label(thread),
                action="rebootstrap",
                detail=f"{app_id}: {detail}",
            )
        )
        tel.metrics.inc("target_load_fallbacks")

    def regulator(self, thread: SimThread) -> ThreadRegulator:
        """The regulator of an enrolled thread."""
        sup = self._registration.get(thread)
        if sup is None:
            raise RegulationStateError(f"thread {thread!r} is not regulated")
        return sup.regulator(thread)

    # -- effect handlers -----------------------------------------------------------
    def _on_testpoint_effect(self, thread: SimThread, effect: Effect) -> None:
        assert isinstance(effect, MannersTestpoint)
        sup = self._registration.get(thread)
        if sup is None:
            raise RegulationStateError(
                f"thread {thread.name!r} yielded a testpoint but is not "
                "regulated; call SimManners.regulate() first"
            )
        now = self._time()
        decision = sup.on_testpoint(now, thread, effect.index, effect.metrics)
        trace = self.traces[thread]
        if decision.processed:
            trace.record(
                now,
                decision.duration,
                decision.target_duration,
                decision.judgment,
                decision.delay,
            )
        if not decision.processed:
            # Lightweight path: continue on the next tick, keeping the slot.
            thread.blocked_on = "manners-light"
            self._kernel.engine.post_after(0.0, self._kernel.deliver, thread, decision)
            return
        # Processed: the thread gave up the slot inside on_testpoint and is
        # eligible again after its delay.  Park it until arbitration
        # selects it.
        thread.blocked_on = "manners"
        self._waiting[thread] = decision
        if self._telemetry is not None and decision.delay > 0.0:
            self._parked_at[thread] = now
        self._pump()

    def _on_set_priority(self, thread: SimThread, effect: Effect) -> None:
        assert isinstance(effect, SetThreadPriority)
        sup = self._registration.get(thread)
        if sup is None:
            raise RegulationStateError(f"thread {thread!r} is not regulated")
        sup.set_thread_priority(thread, effect.priority)
        thread.blocked_on = "manners-light"
        self._kernel.engine.post_after(0.0, self._kernel.deliver, thread, None)

    def _on_thread_event(self, kind: str, thread: SimThread, now: float) -> None:
        """Release a regulated thread's slot when it exits."""
        if kind != "exit":
            return
        sup = self._registration.pop(thread, None)
        if sup is None:
            return
        self._waiting.pop(thread, None)
        self._parked_at.pop(thread, None)
        sup.unregister_thread(thread)
        if thread.error is not None and self._telemetry is not None:
            # A crashed thread (vs. a normal exit) had its slot reclaimed;
            # record the recovery so chaos traces show the fault absorbed.
            tel = self._telemetry
            tel.tick(now)
            tel.emit(
                obs_events.RecoveryAction(
                    t=now,
                    src=scope_label(thread),
                    action="slot_released",
                    detail=f"thread exited with {type(thread.error).__name__}",
                )
            )
            tel.metrics.inc("slots_released_on_crash")
        self._pump()

    # -- arbitration pump --------------------------------------------------------------
    def _pump(self) -> None:
        """Seat eligible threads and schedule the next wake-up.

        All regulation-facing times (eligibility, hung checks) are in the
        regulation clock's frame (``self._time``); only the timer itself is
        scheduled on honest engine time, converting via the current offset.
        """
        now = self._time()
        released = True
        while released:
            released = False
            for sup in self._supervisors.values():
                evicted = sup.check_hung(now)
                if evicted is not None and evicted in self._waiting:
                    # An evicted-but-waiting thread cannot happen: eviction
                    # targets the slot owner, which is never parked.  Guard
                    # anyway for state-machine safety.
                    continue
                owner = sup.poll(now)
                if owner is not None and owner in self._waiting:
                    decision = self._waiting.pop(owner)
                    tel = self._telemetry
                    if tel is not None:
                        parked = self._parked_at.pop(owner, None)
                        if parked is not None:
                            tel.tick(now)
                            tel.emit(
                                obs_events.SuspensionEnded(
                                    t=now,
                                    src=scope_label(owner),
                                    slept=now - parked,
                                )
                            )
                    owner.blocked_on = "manners-released"
                    self._kernel.engine.post_after(
                        0.0, self._kernel.deliver, owner, decision
                    )
                    released = True
        self._schedule_wakeup(now)

    def _schedule_wakeup(self, now: float) -> None:
        if not self._waiting:
            return
        wakes = []
        for sup in self._supervisors.values():
            when = sup.next_wake_time(now)
            if when is not None:
                wakes.append(when)
        token_wake = self._superintendent.next_eligible_time(now)
        if token_wake is not None:
            wakes.append(token_wake)
        if not wakes:
            # Someone is eligible right now but could not be seated (the
            # token is held elsewhere); re-check shortly after the next
            # event. A small poll keeps the bridge simple and costs little.
            wakes.append(now + self._config.min_testpoint_interval)
        when = min(wakes)
        # ``when`` is in the regulation clock's frame; translate into the
        # engine's frame through the current offset (both clocks advance at
        # the same rate between injected steps).
        kernel_when = self._kernel.now + max(when - now, 0.0)
        if self._timer is not None:
            if self._timer.when <= kernel_when and not self._timer.cancelled:
                return
            self._timer.cancel()
        self._timer = self._kernel.engine.call_at(kernel_when, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self._pump()
