"""Simulated-OS substrate for reproducing the paper's experiments.

A discrete-event machine with the same moving parts as the paper's
testbed: one CPU with strict-priority scheduling, disks with realistic
seek/rotation/transfer timing sharing a SCSI-style bus, a filesystem with
extents and a change journal, performance counters, and an externally
usable thread suspend/resume (debug) interface.

Application code is written as generators yielding effects; see
:mod:`repro.simos.effects`.  The MS Manners control system runs against
simulated time through :mod:`repro.simos.sim_manners`.
"""

from repro.simos.bus import Bus, BusStats
from repro.simos.cpu import CPU, CpuPriority, CpuStats
from repro.simos.disk import CDROM_PARAMS, Disk, DiskParams, DiskStats
from repro.simos.effects import (
    Condition,
    Delay,
    DiskRead,
    DiskWrite,
    Effect,
    SignalCondition,
    UseCPU,
    WaitCondition,
    Yield,
)
from repro.simos.engine import Engine, EventHandle, SimulationError
from repro.simos.filesystem import ChangeRecord, Extent, SimFile, Volume, populate_volume
from repro.simos.kernel import Kernel, SimThread, ThreadState, make_engine
from repro.simos.memory import MemoryManager, TouchMemory
from repro.simos.network import NetSend, NetworkLink, NetworkStats
from repro.simos.perfcounters import PerfCounter, PerfCounterRegistry
from repro.simos.shard import ChainMachine, ShardedFleet, ShardResult
from repro.simos.sim_manners import MannersTestpoint, SetThreadPriority, SimManners
from repro.simos.trace import DutyTrace, TestpointRecord, TestpointTrace
from repro.simos.wheel import EventCore, WheelEngine
from repro.simos.workload import Burst, bursty_schedule, busy_fraction, is_busy

__all__ = [
    "Burst",
    "Bus",
    "BusStats",
    "CDROM_PARAMS",
    "CPU",
    "ChangeRecord",
    "Condition",
    "CpuPriority",
    "ChainMachine",
    "CpuStats",
    "Delay",
    "Disk",
    "DiskParams",
    "DiskRead",
    "DiskStats",
    "DiskWrite",
    "DutyTrace",
    "Effect",
    "Engine",
    "EventCore",
    "EventHandle",
    "Extent",
    "Kernel",
    "MannersTestpoint",
    "MemoryManager",
    "NetSend",
    "NetworkLink",
    "NetworkStats",
    "PerfCounter",
    "PerfCounterRegistry",
    "SetThreadPriority",
    "ShardResult",
    "ShardedFleet",
    "SignalCondition",
    "SimFile",
    "SimManners",
    "SimThread",
    "SimulationError",
    "TestpointRecord",
    "TestpointTrace",
    "ThreadState",
    "TouchMemory",
    "UseCPU",
    "Volume",
    "WaitCondition",
    "WheelEngine",
    "Yield",
    "bursty_schedule",
    "busy_fraction",
    "is_busy",
    "make_engine",
    "populate_volume",
]
