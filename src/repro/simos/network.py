"""Shared network link: the resource *external* to the machine (section 3).

"Since MS Manners is completely resource-independent, it does not
discriminate between various classes of resources, such as those internal
and external to a machine.  For example, a web crawler's progress rate
will degrade when the network is loaded, triggering MS Manners to suspend
the process, which may not be as desired."

:class:`NetworkLink` models an uplink with fair (processor-sharing
approximated as FCFS-of-small-frames) bandwidth and a base round-trip
latency, plus an externally scriptable *congestion* factor standing in for
load beyond the machine's control.  The backup application in
:mod:`repro.apps.backup` sends over such a link, and a regression test
demonstrates the section-3 limitation faithfully: remote congestion slows
the sender's progress and MS Manners suspends it, even though the local
machine is idle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.simos.effects import Effect
from repro.simos.engine import SimulationError
from repro.simos.wheel import EventCore
from repro.simos.kernel import Kernel, SimThread

__all__ = ["NetSend", "NetworkStats", "NetworkLink"]


@dataclass(frozen=True, slots=True)
class NetSend(Effect):
    """Transmit ``nbytes`` over the named network link."""

    link: str
    nbytes: int


@dataclass(slots=True)
class NetworkStats:
    """Aggregate link accounting."""

    transfers: int = 0
    bytes_sent: int = 0
    busy_time: float = 0.0


class NetworkLink:
    """A FCFS uplink with scriptable external congestion.

    The effective bandwidth at any instant is
    ``bandwidth / congestion_factor``; the factor defaults to 1.0 and can
    be changed at any time (e.g. from a scheduled event) to model remote
    load the sender cannot observe directly.
    """

    __slots__ = (
        "_engine",
        "name",
        "bandwidth",
        "latency",
        "frame_bytes",
        "congestion_factor",
        "_busy",
        "_queue",
        "stats",
    )

    def __init__(
        self,
        engine: EventCore,
        name: str = "uplink",
        bandwidth: float = 1_250_000.0,  # 10 Mb/s in bytes/s
        latency: float = 0.005,
        frame_bytes: int = 65536,
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise SimulationError(f"latency must be non-negative, got {latency}")
        if frame_bytes <= 0:
            raise SimulationError(f"frame_bytes must be positive, got {frame_bytes}")
        self._engine = engine
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.frame_bytes = frame_bytes
        self.congestion_factor = 1.0
        self._busy = False
        self._queue: deque[tuple[int, Callable[[], None]]] = deque()
        self.stats = NetworkStats()

    def attach(self, kernel: Kernel) -> None:
        """Register the :class:`NetSend` effect handler with a kernel.

        The first link attached claims the effect type; additional links
        share the handler and dispatch by name.
        """
        registry = getattr(kernel, "_network_links", None)
        if registry is None:
            registry = {}
            kernel._network_links = registry  # type: ignore[attr-defined]

            def handler(thread: SimThread, effect: Effect) -> None:
                assert isinstance(effect, NetSend)
                link = registry.get(effect.link)
                if link is None:
                    raise SimulationError(f"no such network link {effect.link!r}")
                thread.blocked_on = f"net:{effect.link}"
                link.send(effect.nbytes, thread._on_done)

            kernel.register_handler(NetSend, handler)
        if self.name in registry:
            raise SimulationError(f"network link {self.name!r} already attached")
        registry[self.name] = self

    def set_congestion(self, factor: float) -> None:
        """Set the external-congestion slowdown factor (>= 1)."""
        if factor < 1.0:
            raise SimulationError(f"congestion factor must be >= 1, got {factor}")
        self.congestion_factor = factor

    # -- transfers -------------------------------------------------------------
    def send(self, nbytes: int, on_done: Callable[[], None]) -> None:
        """Queue a transfer; ``on_done`` fires when the last byte is out."""
        if nbytes <= 0:
            raise SimulationError(f"transfer size must be positive, got {nbytes}")
        self._queue.append((nbytes, on_done))
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        nbytes, on_done = self._queue.popleft()
        self._busy = True
        # Frame-by-frame so congestion changes mid-transfer take effect.
        self._send_frames(nbytes, on_done, first=True)

    def _send_frames(self, remaining: int, on_done: Callable[[], None], first: bool) -> None:
        if remaining <= 0:
            self.stats.transfers += 1
            self._busy = False
            on_done()
            self._pump()
            return
        frame = min(self.frame_bytes, remaining)
        rate = self.bandwidth / self.congestion_factor
        duration = frame / rate + (self.latency if first else 0.0)
        self.stats.bytes_sent += frame
        self.stats.busy_time += duration
        self._engine.post_after(
            duration, self._send_frames, remaining - frame, on_done, False
        )
