"""Simulated disk: seek + rotational latency + transfer, FCFS queue.

The parameters default to a model of the paper's Seagate ST34371W
(Barracuda 4LP, 4.3 GB, 7200 RPM, ultra-wide SCSI): average seek around
9 ms, half-rotation latency ~4.2 ms, sustained media rate ~10 MB/s.

Two properties matter for reproducing the paper:

* **Symmetric contention** — the queue is FCFS, so two request streams of
  similar shape each see roughly doubled latency; this is the fairness
  assumption of section 3.  (A scheduler favouring small transfers would
  break the symmetry — that asymmetry is discussed, not used, in the
  paper, and can be enabled here with ``favor_small=True`` for the
  corresponding ablation test.)
* **Locality sensitivity** — sequential accesses skip seek and rotation
  (track-buffer behaviour), so a defragmenter genuinely improves layout
  performance, and interleaving two sequential streams costs *more* than
  the sum of their service times (the paper's Figure 6 observes a 50%
  inefficiency from contention).

Seek time follows the classic ``a + b * sqrt(distance)`` curve
[Worthington et al., SIGMETRICS'95 — the paper's citation 29].
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.simos.bus import Bus
from repro.simos.engine import SimulationError
from repro.simos.wheel import EventCore

__all__ = ["DiskParams", "DiskStats", "DiskRequest", "Disk"]


@dataclass(frozen=True, slots=True)
class DiskParams:
    """Geometry and timing parameters.

    Defaults approximate a Seagate ST34371W: 4.3 GB across ~5,200
    cylinders at 7,200 RPM.
    """

    #: Number of cylinders across the logical block range.
    cylinders: int = 5200
    #: Total capacity in bytes.
    capacity: int = 4_300_000_000
    #: Fixed per-seek settle overhead, in seconds.
    seek_base: float = 0.0015
    #: Coefficient of the sqrt(distance) seek term; the default yields an
    #: average random seek of ~8.8 ms across the full stroke.
    seek_factor: float = 0.000175
    #: Rotation period, in seconds (7,200 RPM = 8.33 ms).
    rotation_period: float = 1.0 / 120.0
    #: Sustained media transfer rate, bytes per second.
    transfer_rate: float = 10_000_000.0
    #: Fixed controller/command overhead per request, in seconds.
    overhead: float = 0.0003
    #: Logical block size, in bytes.
    block_size: int = 4096

    @property
    def blocks(self) -> int:
        """Number of logical blocks on the disk."""
        return self.capacity // self.block_size

    @property
    def blocks_per_cylinder(self) -> int:
        """Logical blocks per cylinder (uniform zoning approximation)."""
        return max(self.blocks // self.cylinders, 1)


#: A slow sequential device standing in for the Plextor PX-12TS CD-ROM
#: (12x ≈ 1.8 MB/s, long seeks, 1/0.5 s spin "rotation").
CDROM_PARAMS = DiskParams(
    cylinders=2000,
    capacity=650_000_000,
    seek_base=0.08,
    seek_factor=0.0015,
    rotation_period=1.0 / 8.0,
    transfer_rate=1_800_000.0,
    overhead=0.001,
    block_size=2048,
)


@dataclass(slots=True)
class DiskStats:
    """Aggregate per-disk accounting."""

    requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    queue_wait_time: float = 0.0
    max_queue_wait: float = 0.0
    queued_peak: int = 0
    sequential_hits: int = 0


class DiskRequest:
    """One queued I/O operation."""

    __slots__ = ("kind", "block", "nbytes", "on_done", "enqueued_at")

    def __init__(
        self,
        kind: str,
        block: int,
        nbytes: int,
        on_done: Callable[[], None],
        enqueued_at: float,
    ) -> None:
        self.kind = kind
        self.block = block
        self.nbytes = nbytes
        self.on_done = on_done
        self.enqueued_at = enqueued_at


class Disk:
    """A single disk drive with a FCFS request queue."""

    __slots__ = (
        "_engine",
        "name",
        "params",
        "_bus",
        "_rng",
        "_scheduler",
        "_direction",
        "_queue",
        "_busy",
        "_head_cylinder",
        "_last_end_block",
        "_service_started",
        "stats",
    )

    #: Supported queue disciplines.  FCFS is the default because it gives
    #: the roughly *symmetric* contention the paper's core assumption
    #: requires; SSTF and the elevator raise throughput at the cost of
    #: positional unfairness, and "smallest" is the section-3 asymmetric
    #: strawman (small transfers always jump the queue).
    SCHEDULERS = ("fcfs", "sstf", "elevator", "smallest")

    def __init__(
        self,
        engine: EventCore,
        name: str = "disk0",
        params: DiskParams | None = None,
        bus: Bus | None = None,
        seed: int = 0,
        favor_small: bool = False,
        scheduler: str = "fcfs",
    ) -> None:
        self._engine = engine
        self.name = name
        self.params = params or DiskParams()
        self._bus = bus
        # zlib.crc32 rather than hash(): str hashing is randomized per
        # process, which would make "deterministic" simulations differ
        # between runs of the same seed.
        self._rng = random.Random((seed << 16) ^ (zlib.crc32(name.encode()) & 0xFFFF))
        if favor_small:
            scheduler = "smallest"
        if scheduler not in self.SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; choose from {self.SCHEDULERS}"
            )
        self._scheduler = scheduler
        #: Elevator sweep direction: +1 toward higher cylinders.
        self._direction = 1
        self._queue: deque[DiskRequest] = deque()
        self._busy = False
        self._head_cylinder = 0
        self._last_end_block: int | None = None
        self._service_started = 0.0
        self.stats = DiskStats()

    # -- introspection ----------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether a request is being served."""
        return self._busy

    @property
    def queue_depth(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self._queue)

    def cylinder_of(self, block: int) -> int:
        """Map a logical block to its cylinder."""
        return min(block // self.params.blocks_per_cylinder, self.params.cylinders - 1)

    # -- requests -------------------------------------------------------------------
    def submit(
        self, kind: str, block: int, nbytes: int, on_done: Callable[[], None]
    ) -> None:
        """Queue a request; ``on_done`` fires via the event queue at completion."""
        if kind not in ("read", "write"):
            raise SimulationError(f"unknown disk request kind {kind!r}")
        if nbytes <= 0:
            raise SimulationError(f"request size must be positive, got {nbytes}")
        if block < 0 or block >= self.params.blocks:
            raise SimulationError(
                f"block {block} out of range for {self.name} "
                f"({self.params.blocks} blocks)"
            )
        request = DiskRequest(kind, block, nbytes, on_done, self._engine.now)
        self._queue.append(request)
        self.stats.queued_peak = max(self.stats.queued_peak, len(self._queue))
        self._pump()

    # -- internals ---------------------------------------------------------------------
    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        request = self._select()
        self._busy = True
        self._service_started = self._engine.now
        self.stats.requests += 1
        self.stats.queue_wait_time += self._engine.now - request.enqueued_at
        self.stats.max_queue_wait = max(
            self.stats.max_queue_wait, self._engine.now - request.enqueued_at
        )
        mechanical = self._mechanical_time(request)
        self._engine.post_after(mechanical, self._start_transfer, request)

    def _select(self) -> DiskRequest:
        """Pick the next request per the configured queue discipline."""
        if self._scheduler == "fcfs" or len(self._queue) == 1:
            return self._queue.popleft()
        if self._scheduler == "smallest":
            request = min(self._queue, key=lambda r: r.nbytes)
        elif self._scheduler == "sstf":
            request = min(
                self._queue,
                key=lambda r: abs(self.cylinder_of(r.block) - self._head_cylinder),
            )
        else:  # elevator: continue the sweep; reverse when it empties
            ahead = [
                r
                for r in self._queue
                if (self.cylinder_of(r.block) - self._head_cylinder) * self._direction >= 0
            ]
            if not ahead:
                self._direction = -self._direction
                ahead = list(self._queue)
            request = min(
                ahead,
                key=lambda r: abs(self.cylinder_of(r.block) - self._head_cylinder),
            )
        self._queue.remove(request)
        return request

    def _mechanical_time(self, request: DiskRequest) -> float:
        """Positioning time: overhead + seek + rotational latency."""
        sequential = (
            self._last_end_block is not None and request.block == self._last_end_block
        )
        if sequential:
            # Track-buffer / zero-latency continuation.
            self.stats.sequential_hits += 1
            return self.params.overhead
        target = self.cylinder_of(request.block)
        distance = abs(target - self._head_cylinder)
        seek = 0.0
        if distance > 0:
            seek = self.params.seek_base + self.params.seek_factor * distance**0.5
        rotation = self._rng.random() * self.params.rotation_period
        self._head_cylinder = target
        return self.params.overhead + seek + rotation

    def _start_transfer(self, request: DiskRequest) -> None:
        if self._bus is not None:
            rate = min(self.params.transfer_rate, self._bus.bandwidth)
            self._bus.transfer(request.nbytes / rate, self._finish, request)
        else:
            duration = request.nbytes / self.params.transfer_rate
            self._engine.post_after(duration, self._finish, request)

    def _finish(self, request: DiskRequest) -> None:
        blocks_spanned = max(1, -(-request.nbytes // self.params.block_size))
        self._last_end_block = request.block + blocks_spanned
        self._head_cylinder = self.cylinder_of(
            min(self._last_end_block, self.params.blocks - 1)
        )
        if request.kind == "read":
            self.stats.bytes_read += request.nbytes
        else:
            self.stats.bytes_written += request.nbytes
        self.stats.busy_time += self._engine.now - self._service_started
        self._busy = False
        request.on_done()
        self._pump()
