"""Shared I/O bus (SCSI controller) serialization.

The paper's test machine hangs two Seagate disks and a CD-ROM off one
Adaptec 2940UW controller.  Figure 9 attributes part of the "incomplete
isolation between the two drives" to this shared controller: even threads
working against different disks perturb each other because their transfers
serialize on the bus.

:class:`Bus` models that coupling: a transfer occupies the bus for
``nbytes / bandwidth`` seconds, FCFS.  Seeks and rotational latency happen
inside each disk concurrently; only the data transfer phase is serialized.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.simos.engine import SimulationError
from repro.simos.wheel import EventCore

__all__ = ["BusStats", "Bus"]


@dataclass(slots=True)
class BusStats:
    """Aggregate bus accounting."""

    transfers: int = 0
    busy_time: float = 0.0
    queued_peak: int = 0


class Bus:
    """A FCFS-shared transfer channel."""

    __slots__ = ("_engine", "bandwidth", "name", "_busy", "_queue", "stats")

    def __init__(self, engine: EventCore, bandwidth: float, name: str = "scsi0") -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bus bandwidth must be positive, got {bandwidth}")
        self._engine = engine
        #: Bytes per second the bus can move.
        self.bandwidth = float(bandwidth)
        self.name = name
        self._busy = False
        self._queue: deque[tuple[float, Callable[..., None], tuple]] = deque()
        self.stats = BusStats()

    @property
    def busy(self) -> bool:
        """Whether a transfer is in flight."""
        return self._busy

    @property
    def queue_depth(self) -> int:
        """Transfers waiting behind the current one."""
        return len(self._queue)

    def transfer(self, duration: float, on_done: Callable[..., None], *args) -> None:
        """Occupy the bus for ``duration`` seconds; ``on_done(*args)`` at completion.

        The caller computes the duration (a disk uses its media rate capped
        by the bus bandwidth), because a transfer's speed is limited by the
        slower of the device and the channel.  Extra positional ``args`` are
        forwarded to ``on_done`` so callers need not allocate a closure.
        """
        if duration < 0:
            raise SimulationError(
                f"transfer duration must be non-negative, got {duration}"
            )
        self._queue.append((duration, on_done, args))
        self.stats.queued_peak = max(self.stats.queued_peak, len(self._queue))
        self._pump()

    # -- internals ------------------------------------------------------------
    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        duration, on_done, args = self._queue.popleft()
        self._busy = True
        self.stats.transfers += 1
        self.stats.busy_time += duration
        self._engine.post_after(duration, self._finish, on_done, args)

    def _finish(self, on_done: Callable[..., None], args: tuple) -> None:
        self._busy = False
        on_done(*args)
        self._pump()
