"""Hierarchical timing-wheel event core (the calendar-queue engine).

:class:`WheelEngine` is a drop-in alternative to the binary-heap
:class:`~repro.simos.engine.Engine` with the same scheduling API
(``post_at``/``post_after``/``call_at``/``call_after``), the same
``run``/``step``/``drain`` contract, the same derived-counter accounting,
and the same ``_monitored`` stepped path for the verify monitors — but
with O(1) post and O(1) amortized fire for the dominant short-horizon
timers, independent of how many events are pending.  The heap's
O(log n) element-wise tuple comparisons are what plateau the fleet-scale
workloads (thousands of concurrent timer chains); the wheel replaces them
with an array index.

Structure (see docs/performance.md for the full design discussion):

* **Three wheel levels** of 256 slots each.  Simulated time maps to an
  integer tick index ``idx = int(when * 2**resolution_bits)``; level 0
  spans 256 ticks, level 1 spans 256 level-0 blocks, level 2 spans 256
  level-1 blocks — about 194 simulated days at the default 1/128 s
  resolution.  A post lands in the coarsest level where its index shares
  the wheel cursor's aligned block prefix (one XOR and two compares).
* **Occupancy bitmaps** (one 256-bit int per level) make "next nonempty
  slot" a shift and a count-trailing-zeros, so idle stretches cost O(1)
  rather than a slot-by-slot scan.
* **Cascade on rollover**: when level 0 drains, the next level-1 slot is
  exploded into level-0 slots (and level 2 into level 1); each entry
  cascades at most twice in its life.
* **Overflow band**: timers beyond the level-2 horizon go to a small
  binary heap, pulled back into the wheel one level-2 block at a time —
  the far-future band is where cancelled-entry compaction pays off, so
  it gets the same threshold-based compaction as the heap engine.
* **Ready heap**: zero-delay posts, same-tick posts, and entries that
  land at or behind the cursor (possible after a bounded ``run(until=)``
  advanced the clock without draining the wheel) keep exact
  ``(when, seq)`` order through a tiny heap that interleaves with the
  current slot during dispatch.

Determinism: entries are the same plain ``(when, seq, fn, args)`` tuples
(or :class:`~repro.simos.engine.EventHandle` subclasses) the heap engine
uses, and every dispatch path compares them tuple-wise, so a seeded
simulation fires the exact same event sequence on either core — the
wheel oracle in :mod:`repro.verify` holds the two to bit-identical logs.
"""

from __future__ import annotations

import math
import time
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterator

from repro.simos.engine import (
    _COMPACT_MIN_STALE,
    Engine,
    EventHandle,
    SimulationError,
)

__all__ = ["WheelEngine", "EventCore"]

_INF = float("inf")

#: Slots per wheel level (fixed: the bitmap tricks assume 256).
_SLOTS = 256

#: Single-bit masks and their complements, precomputed so the hot path
#: never allocates a fresh ``1 << s`` on every post.
_BIT = tuple(1 << i for i in range(_SLOTS))
_NBIT = tuple(~(1 << i) for i in range(_SLOTS))


class WheelEngine:
    """Timing-wheel event core with the heap engine's exact contract."""

    # verify: allow-slots (the verify invariant monitor shadows step and
    # the scheduling methods through the instance dict, exactly as it does
    # for Engine; one engine per simulation, so slots buy nothing)

    def __init__(self, resolution_bits: int = 7) -> None:
        if not 0 <= resolution_bits <= 20:
            raise SimulationError(
                f"resolution_bits must be in [0, 20], got {resolution_bits}"
            )
        #: Ticks per second (a power of two, so ``when * _inv`` is an exact
        #: float scaling and the tick index is monotone in ``when``).
        self._inv = float(1 << resolution_bits)
        self._resolution_bits = resolution_bits
        self._now = 0.0
        self._seq = 0  # total events ever scheduled (posts + handles)
        self._events_fired = 0
        self._cancelled = 0  # handles cancelled before firing
        self._drained = 0  # live entries discarded by drain()
        self._stale = 0  # cancelled handles still stored in some band
        self._monitored = False  # routes run() through step() for audit hooks
        #: True until the first cancellable handle is created.  A pure-post
        #: engine can run the drain loop without per-event class checks;
        #: the flag only ever flips True -> False, and entries reach the
        #: dispatch buffer only through _refill, so a buffer chosen under
        #: purity stays handle-free for its whole drain.
        self._pure = True
        #: Wheel cursor: the tick index dispatch has advanced to.  Only
        #: ever moves forward, and only to slots that are about to drain.
        self._cur = 0
        self._l0: list[list] = [[] for _ in range(_SLOTS)]
        self._l1: list[list] = [[] for _ in range(_SLOTS)]
        self._l2: list[list] = [[] for _ in range(_SLOTS)]
        self._bm0 = 0
        self._bm1 = 0
        self._bm2 = 0
        #: Far-future band: a plain heap, compacted when cancels dominate.
        self._overflow: list = []
        #: Due-now band: zero-delay and behind-cursor entries, heap-ordered.
        self._ready: list = []
        #: The slot being dispatched, sorted descending so ``pop()`` yields
        #: events in ``(when, seq)`` order without shifting the list.
        self._buf: list = []
        self._tick_observe: Callable[[float], None] | None = None
        self._tick_sample_every = 1024

    # -- time ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed (for instrumentation and sanity checks)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Scheduled events not yet fired or cancelled (O(1), derived)."""
        return self._seq - self._events_fired - self._cancelled - self._drained

    # -- scheduling ----------------------------------------------------------
    def _reject_time(self, when: float) -> None:
        """Cold path: raise the precise error for an out-of-range time."""
        if not math.isfinite(when):
            raise SimulationError(f"event time must be finite, got {when}")
        raise SimulationError(
            f"cannot schedule event at {when} before current time {self._now}"
        )

    def _insert(self, when: float, entry: tuple) -> None:
        """Place one entry in the band its tick index calls for.

        Level selection is one XOR against the cursor: because the cursor
        only ever advances to the *start* of the block it is draining,
        ``idx ^ cur < 256`` exactly when the two indexes share a level-0
        block, ``< 256**2`` a level-1 block, and so on — so an entry's
        level-1/level-2 slot is never at or behind the cursor's position
        in that level, which is what makes the bitmap scans in
        :meth:`_refill` exact.
        """
        try:
            idx = int(when * self._inv)
        except OverflowError:
            # when is finite but when * ticks-per-second is not: park the
            # entry in the far-future band (it orders by (when, seq)).
            heappush(self._overflow, entry)
            return
        cur = self._cur
        x = idx ^ cur
        if x < 256:
            if idx > cur:
                s = idx & 255
                slot = self._l0[s]
                if slot:
                    slot.append(entry)
                else:
                    slot.append(entry)
                    self._bm0 |= _BIT[s]
            else:
                heappush(self._ready, entry)
        elif idx < cur:
            # Behind the cursor: a bounded run() advanced time past this
            # slot without draining it (the cursor only jumps to occupied
            # slots).  Exact order is preserved through the ready heap.
            heappush(self._ready, entry)
        elif x < 65536:
            s = (idx >> 8) & 255
            slot = self._l1[s]
            if slot:
                slot.append(entry)
            else:
                slot.append(entry)
                self._bm1 |= _BIT[s]
        elif x < 16777216:
            s = (idx >> 16) & 255
            slot = self._l2[s]
            if slot:
                slot.append(entry)
            else:
                slot.append(entry)
                self._bm2 |= _BIT[s]
        else:
            heappush(self._overflow, entry)

    def post_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when``; no handle."""
        if not (self._now <= when < _INF):
            self._reject_time(when)
        seq = self._seq
        self._seq = seq + 1
        self._insert(when, (when, seq, fn, args))

    def post_after(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds; no handle.

        The steady-state hot path: the placement logic is inlined here
        (rather than calling :meth:`_insert`) because one Python call
        frame per post is the difference between beating the heap core
        and matching it.
        """
        when = self._now + delay
        if not (self._now <= when < _INF):
            if delay < 0:
                raise SimulationError(f"delay must be non-negative, got {delay}")
            self._reject_time(when)
        try:
            idx = int(when * self._inv)
        except OverflowError:
            seq = self._seq
            self._seq = seq + 1
            heappush(self._overflow, (when, seq, fn, args))
            return
        cur = self._cur
        seq = self._seq
        self._seq = seq + 1
        x = idx ^ cur
        if x < 256:
            if idx > cur:
                s = idx & 255
                slot = self._l0[s]
                if slot:
                    slot.append((when, seq, fn, args))
                else:
                    slot.append((when, seq, fn, args))
                    self._bm0 |= _BIT[s]
            else:
                heappush(self._ready, (when, seq, fn, args))
        elif idx < cur:
            heappush(self._ready, (when, seq, fn, args))
        elif x < 65536:
            s = (idx >> 8) & 255
            slot = self._l1[s]
            if slot:
                slot.append((when, seq, fn, args))
            else:
                slot.append((when, seq, fn, args))
                self._bm1 |= _BIT[s]
        elif x < 16777216:
            s = (idx >> 16) & 255
            slot = self._l2[s]
            if slot:
                slot.append((when, seq, fn, args))
            else:
                slot.append((when, seq, fn, args))
                self._bm2 |= _BIT[s]
        else:
            heappush(self._overflow, (when, seq, fn, args))

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``when``; cancellable."""
        if not (self._now <= when < _INF):
            self._reject_time(when)
        seq = self._seq
        self._seq = seq + 1
        self._pure = False
        handle = tuple.__new__(EventHandle, (when, seq, fn, args))
        handle._engine = self
        self._insert(when, handle)
        return handle

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds; cancellable."""
        when = self._now + delay
        if not (self._now <= when < _INF):
            if delay < 0:
                raise SimulationError(f"delay must be non-negative, got {delay}")
            self._reject_time(when)
        seq = self._seq
        self._seq = seq + 1
        self._pure = False
        handle = tuple.__new__(EventHandle, (when, seq, fn, args))
        handle._engine = self
        self._insert(when, handle)
        return handle

    def _note_cancel(self) -> None:
        """A stored handle was cancelled; compact if inert entries dominate.

        Same threshold rule as the heap engine: a live O(1) counter
        comparison, with the rebuild only when cancelled entries are both
        numerous and the majority of what is stored.
        """
        self._cancelled += 1
        stale = self._stale + 1
        self._stale = stale
        if stale > _COMPACT_MIN_STALE and stale > self.pending:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the slots, overflow, and ready bands.

        All filtering is in place (slice assignment, in-place heapify), so
        a dispatch loop holding a band reference mid-callback stays
        consistent; the active slot buffer is deliberately left alone —
        its cancelled entries are skipped (and accounted) as dispatch
        reaches them.  Slot order is append order and the heaps
        re-heapify, so the exact ``(when, seq)`` firing order survives and
        compaction is invisible except for speed.
        """
        removed = 0
        for slots, bm_name in (
            (self._l0, "_bm0"),
            (self._l1, "_bm1"),
            (self._l2, "_bm2"),
        ):
            bm = getattr(self, bm_name)
            probe = bm
            while probe:
                s = (probe & -probe).bit_length() - 1
                probe &= probe - 1
                slot = slots[s]
                live = [e for e in slot if e.__class__ is tuple or not e.cancelled]
                if len(live) != len(slot):
                    removed += len(slot) - len(live)
                    slot[:] = live
                    if not live:
                        bm &= _NBIT[s]
            setattr(self, bm_name, bm)
        for band in (self._overflow, self._ready):
            live = [e for e in band if e.__class__ is tuple or not e.cancelled]
            if len(live) != len(band):
                removed += len(band) - len(live)
                band[:] = live
                heapify(band)
        self._stale -= removed

    # -- introspection --------------------------------------------------------
    def _entries(self) -> Iterator[tuple]:
        """Yield every stored entry across all bands (audit/debug path)."""
        for slots in (self._l0, self._l1, self._l2):
            for slot in slots:
                yield from slot
        yield from self._overflow
        yield from self._ready
        yield from self._buf

    def _audit_slots(self) -> list[str]:
        """Check bitmap/slot consistency; return human-readable problems.

        Invariant: a level's bitmap bit is set exactly when its slot list
        is nonempty (cancelled entries count — their bits clear only when
        compaction or a refill empties the slot).
        """
        problems: list[str] = []
        for level, (slots, bm) in enumerate(
            ((self._l0, self._bm0), (self._l1, self._bm1), (self._l2, self._bm2))
        ):
            for s in range(_SLOTS):
                occupied = bool(slots[s])
                flagged = bool(bm & _BIT[s])
                if occupied != flagged:
                    problems.append(
                        f"level {level} slot {s}: "
                        f"{len(slots[s])} entries but bitmap bit is {int(flagged)}"
                    )
        return problems

    # -- instrumentation -------------------------------------------------------
    def attach_tick_observer(
        self,
        observe: Callable[[float], None] | None,
        sample_every: int = 1024,
    ) -> None:
        """Feed mean per-event wall latency to ``observe`` while running.

        Same contract as :meth:`Engine.attach_tick_observer`: wall time is
        measurement-only and never reaches simulated time or digests.
        """
        if sample_every < 1:
            raise SimulationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self._tick_observe = observe
        self._tick_sample_every = sample_every

    # -- dispatch internals ----------------------------------------------------
    def _refill(self) -> bool:
        """Advance the cursor to the next occupied slot and load ``_buf``.

        Returns ``False`` when every band is empty.  May push entries into
        the ready heap (a cascade can land an entry at the new cursor), so
        callers must re-check ``_ready`` after a ``False`` return.
        """
        while True:
            cur = self._cur
            pos = cur & 255
            m = self._bm0 >> pos
            if m:
                s = pos + ((m & -m).bit_length() - 1)
                self._cur = (cur & -256) | s
                buf = self._l0[s]
                self._l0[s] = []
                self._bm0 &= _NBIT[s]
                buf.sort(reverse=True)
                self._buf = buf
                return True
            pos1 = (cur >> 8) & 255
            m1 = self._bm1 >> (pos1 + 1)
            if m1:
                s1 = pos1 + 1 + ((m1 & -m1).bit_length() - 1)
                self._cur = ((cur >> 16) << 16) | (s1 << 8)
                self._bm1 &= _NBIT[s1]
                entries = self._l1[s1]
                self._l1[s1] = []
                # Cascade: explode the level-1 slot into level-0 slots.
                # Every entry lands strictly inside the new cursor block,
                # so the placement is a masked index, not a full _insert.
                inv = self._inv
                l0 = self._l0
                bm0 = self._bm0
                for e in entries:
                    s = int(e[0] * inv) & 255
                    l0[s].append(e)
                    bm0 |= _BIT[s]
                self._bm0 = bm0
                continue
            pos2 = (cur >> 16) & 255
            m2 = self._bm2 >> (pos2 + 1)
            if m2:
                s2 = pos2 + 1 + ((m2 & -m2).bit_length() - 1)
                self._cur = ((cur >> 24) << 24) | (s2 << 16)
                self._bm2 &= _NBIT[s2]
                entries = self._l2[s2]
                self._l2[s2] = []
                for e in entries:
                    self._insert(e[0], e)
                continue
            if self._overflow:
                ov = self._overflow
                inv = self._inv
                if ov[0][0] * inv >= _INF:
                    # Tick index would overflow: dispatch these one at a
                    # time in exact heap order through the ready band.
                    heappush(self._ready, heappop(ov))
                    return False
                idx = int(ov[0][0] * inv)
                self._cur = (idx >> 16) << 16
                top = self._cur >> 24
                # Pull the whole level-2 block back into the wheel; the
                # rest of the far-future band stays in the heap.
                while ov and ov[0][0] * inv < _INF and int(ov[0][0] * inv) >> 24 == top:
                    e = heappop(ov)
                    self._insert(e[0], e)
                continue
            return False

    def _next_entry(self):
        """Pop the globally next live entry, or ``None`` when empty."""
        while True:
            buf = self._buf
            ready = self._ready
            while buf:
                e = buf[-1]
                if e.__class__ is not tuple and e.cancelled:
                    buf.pop()
                    self._stale -= 1
                    continue
                break
            while ready:
                e = ready[0]
                if e.__class__ is not tuple and e.cancelled:
                    heappop(ready)
                    self._stale -= 1
                    continue
                break
            if buf:
                if ready and ready[0] < buf[-1]:
                    return heappop(ready)
                return buf.pop()
            if ready:
                return heappop(ready)
            if not self._refill() and not self._ready:
                return None

    def _peek_entry(self):
        """The globally next live entry without removing it, or ``None``.

        Skips (and accounts) cancelled entries at the band heads, exactly
        like :meth:`_next_entry`, so peek-then-pop sees the same entry.
        """
        while True:
            buf = self._buf
            ready = self._ready
            while buf:
                e = buf[-1]
                if e.__class__ is not tuple and e.cancelled:
                    buf.pop()
                    self._stale -= 1
                    continue
                break
            while ready:
                e = ready[0]
                if e.__class__ is not tuple and e.cancelled:
                    heappop(ready)
                    self._stale -= 1
                    continue
                break
            if buf:
                if ready and ready[0] < buf[-1]:
                    return ready[0]
                return buf[-1]
            if ready:
                return ready[0]
            if not self._refill() and not self._ready:
                return None

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; return ``False`` if nothing is pending."""
        e = self._next_entry()
        if e is None:
            return False
        if e.__class__ is not tuple:
            e.cancelled = True  # Consumed: a late cancel() is a no-op.
        self._now = e[0]
        self._events_fired += 1
        e[2](*e[3])
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until drained, ``until`` passes, or the budget ends.

        Same contract as :meth:`Engine.run`: returns the stop time, and
        with ``until`` the clock advances to exactly ``until`` even when
        the last event fired earlier.
        """
        if self._monitored:
            return self._run_stepped(until, max_events)
        if self._tick_observe is not None:
            return self._run_instrumented(until, max_events)
        if until is None and max_events is None:
            return self._run_drain()
        fired = 0
        while True:
            head = self._peek_entry()
            if head is None:
                break
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                return self._now
            e = self._next_entry()
            if e.__class__ is not tuple:
                e.cancelled = True
            self._now = e[0]
            self._events_fired += 1
            e[2](*e[3])
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_drain(self) -> float:
        """Drain-all fast loop: dispatch straight off the slot buffer.

        The inner ``while buf`` loop touches no band bookkeeping at all —
        pop, clock, call — and only breaks out when a callback pushed
        into the ready heap (a clamped or zero-delay post) that must be
        interleaved in exact ``(when, seq)`` order.  Fired-count updates
        are batched per buffer; the ``finally`` keeps the count exact
        even when a callback raises.
        """
        ready = self._ready
        while True:
            buf = self._buf
            if not buf:
                if ready:
                    e = heappop(ready)
                    if e.__class__ is not tuple:
                        if e.cancelled:
                            self._stale -= 1
                            continue
                        e.cancelled = True
                    self._now = e[0]
                    self._events_fired += 1
                    e[2](*e[3])
                    continue
                if not self._refill():
                    if ready:
                        continue  # A cascade clamped entries into ready.
                    return self._now
                buf = self._buf
            if ready:
                # Interleave path: the ready heap holds due-now entries
                # that may order before the slot buffer's next event.
                if ready[0] < buf[-1]:
                    e = heappop(ready)
                else:
                    e = buf.pop()
                if e.__class__ is not tuple:
                    if e.cancelled:
                        self._stale -= 1
                        continue
                    e.cancelled = True
                self._now = e[0]
                self._events_fired += 1
                e[2](*e[3])
                continue
            n0 = len(buf)
            pop = buf.pop
            if self._pure:
                # Handle-free engine: no cancellation checks needed, and
                # fired-count updates batch per buffer.
                try:
                    while buf:
                        e = pop()
                        self._now = e[0]
                        e[2](*e[3])
                        if ready:
                            break
                finally:
                    self._events_fired += n0 - len(buf)
                continue
            skipped = 0
            try:
                while buf:
                    e = pop()
                    if e.__class__ is not tuple:
                        if e.cancelled:
                            skipped += 1
                            continue
                        e.cancelled = True
                    self._now = e[0]
                    e[2](*e[3])
                    if ready:
                        break
            finally:
                consumed = n0 - len(buf)
                self._events_fired += consumed - skipped
                self._stale -= skipped

    def _run_instrumented(
        self, until: float | None, max_events: int | None
    ) -> float:
        """run() with tick-latency sampling (see attach_tick_observer)."""
        observe = self._tick_observe
        every = self._tick_sample_every
        stamp = time.perf_counter()  # verify: allow-wall-clock (latency metric only)
        batch = 0
        fired = 0
        budget_hit = False
        while True:
            head = self._peek_entry()
            if head is None:
                break
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                budget_hit = True
                break
            e = self._next_entry()
            if e.__class__ is not tuple:
                e.cancelled = True
            self._now = e[0]
            self._events_fired += 1
            e[2](*e[3])
            fired += 1
            batch += 1
            if batch >= every:
                now_wall = time.perf_counter()  # verify: allow-wall-clock (latency metric only)
                observe((now_wall - stamp) / batch)
                stamp = now_wall
                batch = 0
        if batch:
            now_wall = time.perf_counter()  # verify: allow-wall-clock (latency metric only)
            observe((now_wall - stamp) / batch)
        if budget_hit:
            return self._now
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_stepped(self, until: float | None, max_events: int | None) -> float:
        """run() routed through ``self.step()`` so monitors see every fire."""
        fired = 0
        while True:
            head = self._peek_entry()
            if head is None:
                break
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                return self._now
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def drain(self) -> None:
        """Discard all pending events (used when tearing a simulation down)."""
        self._drained += self.pending
        for e in self._entries():
            if e.__class__ is not tuple:
                e.cancelled = True  # Late cancel() calls stay no-ops.
        for slots in (self._l0, self._l1, self._l2):
            for slot in slots:
                if slot:
                    slot.clear()
        self._bm0 = 0
        self._bm1 = 0
        self._bm2 = 0
        self._overflow.clear()
        self._ready.clear()
        self._buf.clear()
        self._stale = 0


#: Either event core.  The heap engine and the wheel engine share one
#: scheduling/execution contract (verified bit-identical by the wheel
#: oracle), so device models and the kernel accept both interchangeably.
EventCore = Engine | WheelEngine
