"""Hierarchical timing-wheel event core (the calendar-queue engine).

:class:`WheelEngine` is a drop-in alternative to the binary-heap
:class:`~repro.simos.engine.Engine` with the same scheduling API
(``post_at``/``post_after``/``call_at``/``call_after``), the same
``run``/``step``/``drain`` contract, the same derived-counter accounting,
and the same ``_monitored`` stepped path for the verify monitors — but
with O(1) post and O(1) amortized fire for the dominant short-horizon
timers, independent of how many events are pending.  The heap's
O(log n) element-wise tuple comparisons are what plateau the fleet-scale
workloads (thousands of concurrent timer chains); the wheel replaces them
with an array index.

Structure (see docs/performance.md for the full design discussion):

* **Three wheel levels** of 256 slots each.  Simulated time maps to an
  integer tick index ``idx = int(when * 2**resolution_bits)``; level 0
  spans 256 ticks, level 1 spans 256 level-0 blocks, level 2 spans 256
  level-1 blocks — about 194 simulated days at the default 1/128 s
  resolution.  A post lands in the coarsest level where its index shares
  the wheel cursor's aligned block prefix (one XOR and two compares).
* **Occupancy bitmaps** (one 256-bit int per level) make "next nonempty
  slot" a shift and a count-trailing-zeros, so idle stretches cost O(1)
  rather than a slot-by-slot scan.
* **Cascade on rollover**: when level 0 drains, the next level-1 slot is
  exploded into level-0 slots (and level 2 into level 1); each entry
  cascades at most twice in its life.
* **Overflow band**: timers beyond the top-level horizon go to a small
  binary heap, pulled back into the wheel one top-level block at a time —
  the far-future band is where cancelled-entry compaction pays off, so
  it gets the same threshold-based compaction as the heap engine.
* **Ready heap**: zero-delay posts, same-tick posts, and entries that
  land at or behind the cursor (possible after a bounded ``run(until=)``
  advanced the clock without draining the wheel) keep exact
  ``(when, seq)`` order through a tiny heap that interleaves with the
  current slot during dispatch.
* **Sparse bypass**: while fewer than :data:`_SPARSE_THRESHOLD` events
  are pending, posts go straight to the ready heap and skip the slot
  machinery entirely.  A near-empty wheel (one or two live timer chains)
  otherwise pays buffer allocation, slot bookkeeping, and refill scans
  per event — the sparse-post regression that kept the heap the default
  core.  The bypass is order-safe by construction: dispatch interleaves
  the ready heap with the active slot by exact ``(when, seq)`` tuple
  comparison, so band placement is purely a performance decision.
* **Adaptive resolution**: ``resolution_bits`` and ``levels`` are
  constructor parameters, and by default the engine *adapts* the
  resolution online — a deterministic counter-strided reservoir of
  observed post delays (every 64th post, no RNG) feeds a cost model
  (:meth:`WheelEngine.suggest_resolution_bits`) that scores candidate
  resolutions by expected cascade + same-tick-collision cost, and
  :meth:`WheelEngine.adapt_resolution` rebuilds the bands at the winner.
  Rebuilds preserve exact firing order (every band orders by
  ``(when, seq)``), so adaptation is invisible except for speed.

Determinism: entries are the same plain ``(when, seq, fn, args)`` tuples
(or :class:`~repro.simos.engine.EventHandle` subclasses) the heap engine
uses, and every dispatch path compares them tuple-wise, so a seeded
simulation fires the exact same event sequence on either core — the
wheel oracle in :mod:`repro.verify` holds the two to bit-identical logs.
"""

from __future__ import annotations

import math
import time
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterator

from repro.simos.engine import (
    _COMPACT_MIN_STALE,
    TICK_INDEX_LIMIT,
    Engine,
    EventHandle,
    SimulationError,
    clamp_horizon,
)

__all__ = ["WheelEngine", "EventCore"]

_INF = float("inf")

#: Slots per wheel level (fixed: the bitmap tricks assume 256).
_SLOTS = 256

#: Single-bit masks and their complements, precomputed so the hot path
#: never allocates a fresh ``1 << s`` on every post.
_BIT = tuple(1 << i for i in range(_SLOTS))
_NBIT = tuple(~(1 << i) for i in range(_SLOTS))

#: While pending events number at or below this, posts bypass the slot
#: machinery and go straight to the ready heap (see the module docstring's
#: "sparse bypass").  8 covers the sparse workloads that regressed (a
#: handful of live timer chains) while keeping the ready heap tiny; dense
#: workloads blow past it immediately and use the slots.
_SPARSE_THRESHOLD = 8

#: Delay-reservoir geometry: every ``_OBS_STRIDE``-th post records its
#: delay into a ``_OBS_SLOTS``-entry ring (deterministic counter striding,
#: not RNG sampling — the determinism lint forbids unseeded randomness and
#: the stride is statistically adequate for a resolution decision).  Each
#: full ring (``_OBS_STRIDE * _OBS_SLOTS`` = 16384 posts) triggers one
#: adaptation check.
_OBS_STRIDE = 64
_OBS_SLOTS = 256

#: Cost-model weights for :meth:`WheelEngine.suggest_resolution_bits`, in
#: "slot touches" per posted event: landing in level 0 costs one touch;
#: each cascade rehomes the entry once more; a same-tick collision pays
#: heap ordering in the ready band; overflow pays heap push + pull-back.
_COST_L0 = 1.0
_COST_CASCADE = 1.0
_COST_SAME_TICK = 2.5
_COST_OVERFLOW = 5.0

#: Adapt only when the modeled cost improves by at least this factor —
#: hysteresis so borderline workloads don't oscillate between resolutions.
_ADAPT_HYSTERESIS = 0.9


class WheelEngine:
    """Timing-wheel event core with the heap engine's exact contract."""

    # verify: allow-slots (the verify invariant monitor shadows step and
    # the scheduling methods through the instance dict, exactly as it does
    # for Engine; one engine per simulation, so slots buy nothing)

    def __init__(
        self,
        resolution_bits: int | None = None,
        levels: int = 3,
        adaptive: bool | None = None,
        sparse_threshold: int | None = None,
    ) -> None:
        """Build a wheel core.

        ``resolution_bits`` sets ticks-per-second to ``2**resolution_bits``
        (default 7 = 1/128 s, the static heuristic for the paper's
        10 ms–2 s timer band).  Passing it explicitly *pins* the
        resolution — adaptation defaults off — while leaving it ``None``
        starts at the heuristic default and lets the online adaptation
        pass retune it from the observed delay distribution.  ``levels``
        (1–3) bounds the wheel horizon to ``256**levels`` ticks; timers
        beyond it ride the overflow heap.  ``adaptive`` overrides the
        pin-implies-static default in either direction.
        ``sparse_threshold`` overrides the pending-population cutoff for
        the ready-heap sparse bypass (0 disables it — every post takes the
        slot path, which the wheel level tests rely on).
        """
        if resolution_bits is None:
            bits = 7
            if adaptive is None:
                adaptive = True
        else:
            bits = resolution_bits
            if adaptive is None:
                adaptive = False
        if not 0 <= bits <= 20:
            raise SimulationError(
                f"resolution_bits must be in [0, 20], got {resolution_bits}"
            )
        if not 1 <= levels <= 3:
            raise SimulationError(f"levels must be in [1, 3], got {levels}")
        if sparse_threshold is None:
            sparse_threshold = _SPARSE_THRESHOLD
        elif sparse_threshold < 0:
            raise SimulationError(
                f"sparse_threshold must be >= 0, got {sparse_threshold}"
            )
        self._sparse = sparse_threshold
        #: Ticks per second (a power of two, so ``when * _inv`` is an exact
        #: float scaling and the tick index is monotone in ``when``).
        self._inv = float(1 << bits)
        self._resolution_bits = bits
        self._levels = levels
        #: Level horizons as XOR thresholds (see _insert).  A disabled
        #: level gets threshold 0, so its ``x < lim`` branch never takes
        #: and out-of-horizon entries fall through to the overflow heap.
        self._lim1 = 65536 if levels >= 2 else 0
        self._lim2 = 16777216 if levels >= 3 else 0
        #: Overflow pull-back geometry: entries come back from the
        #: far-future heap one top-level block at a time.
        self._pull_shift = 8 * levels
        self._pull_align = ~((1 << (8 * levels - 8)) - 1)
        self._adaptive = adaptive
        self._adaptations = 0  # completed resolution rebuilds
        #: Deterministic delay reservoir (see _OBS_STRIDE/_OBS_SLOTS).
        self._obs: list[float | None] = [None] * _OBS_SLOTS
        #: Change signature of the reservoir at the last adaptation check
        #: (count, exact sum) — a repeat signature skips the re-ranking.
        self._obs_sig: tuple | None = None
        #: Refill-loop iteration counter: one increment per band scan in
        #: :meth:`_refill`, giving tests and the adaptation cost model an
        #: O(occupied-slot) work witness for idle-wheel advances.
        self._scan_iters = 0
        self._now = 0.0
        self._seq = 0  # total events ever scheduled (posts + handles)
        self._events_fired = 0
        self._cancelled = 0  # handles cancelled before firing
        self._drained = 0  # live entries discarded by drain()
        self._stale = 0  # cancelled handles still stored in some band
        self._monitored = False  # routes run() through step() for audit hooks
        #: True until the first cancellable handle is created.  A pure-post
        #: engine can run the drain loop without per-event class checks;
        #: the flag only ever flips True -> False, and entries reach the
        #: dispatch buffer only through _refill, so a buffer chosen under
        #: purity stays handle-free for its whole drain.
        self._pure = True
        #: Wheel cursor: the tick index dispatch has advanced to.  Only
        #: ever moves forward, and only to slots that are about to drain.
        self._cur = 0
        self._l0: list[list] = [[] for _ in range(_SLOTS)]
        self._l1: list[list] = [[] for _ in range(_SLOTS)]
        self._l2: list[list] = [[] for _ in range(_SLOTS)]
        self._bm0 = 0
        self._bm1 = 0
        self._bm2 = 0
        #: Far-future band: a plain heap, compacted when cancels dominate.
        self._overflow: list = []
        #: Due-now band: zero-delay and behind-cursor entries, heap-ordered.
        self._ready: list = []
        #: The slot being dispatched, sorted descending so ``pop()`` yields
        #: events in ``(when, seq)`` order without shifting the list.
        self._buf: list = []
        self._tick_observe: Callable[[float], None] | None = None
        self._tick_sample_every = 1024

    # -- time ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed (for instrumentation and sanity checks)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Scheduled events not yet fired or cancelled (O(1), derived)."""
        return self._seq - self._events_fired - self._cancelled - self._drained

    @property
    def resolution_bits(self) -> int:
        """Current ticks-per-second exponent (may change when adaptive)."""
        return self._resolution_bits

    @property
    def levels(self) -> int:
        """Configured wheel depth (1–3 levels of 256 slots)."""
        return self._levels

    @property
    def adaptations(self) -> int:
        """Completed online resolution rebuilds."""
        return self._adaptations

    def next_event_time(self) -> float | None:
        """Firing time of the next live event, or ``None`` when drained.

        Same contract as :meth:`Engine.next_event_time`: cancelled entries
        at the band heads are skipped (and accounted), so the returned
        time is exactly what the next :meth:`step` will fire at.
        """
        e = self._peek_entry()
        return None if e is None else e[0]

    # -- scheduling ----------------------------------------------------------
    def _reject_time(self, when: float) -> None:
        """Cold path: raise the precise error for an out-of-range time."""
        if not math.isfinite(when):
            raise SimulationError(f"event time must be finite, got {when}")
        raise SimulationError(
            f"cannot schedule event at {when} before current time {self._now}"
        )

    def _insert(self, when: float, entry: tuple) -> None:
        """Place one entry in the band its tick index calls for.

        Level selection is one XOR against the cursor: because the cursor
        only ever advances to the *start* of the block it is draining,
        ``idx ^ cur < 256`` exactly when the two indexes share a level-0
        block, ``< 256**2`` a level-1 block, and so on — so an entry's
        level-1/level-2 slot is never at or behind the cursor's position
        in that level, which is what makes the bitmap scans in
        :meth:`_refill` exact.

        The sparse bypass short-circuits all of it: while nothing is
        slotted and the ready heap is below the sparse threshold, band
        placement is a single heap push.  The check costs one attribute
        load in the dense regime (an occupancy bitmap is nonzero and
        short-circuits) and stays order-safe in every regime — dispatch
        interleaves by exact ``(when, seq)`` comparison regardless of
        band, so placement is purely a performance decision.
        """
        if (
            not self._buf
            and not self._bm0
            and not (self._bm1 | self._bm2)
            and not self._overflow
            and len(self._ready) < self._sparse
        ):
            heappush(self._ready, entry)
            return
        # A tick index past the addressable range lands in the far-future
        # overflow band through the level-placement else-branch below
        # (x = idx ^ cur is then >= _lim2); only a product that overflows
        # float range entirely (int(inf) raises) needs the explicit catch.
        try:
            idx = int(when * self._inv)
        except OverflowError:
            heappush(self._overflow, entry)
            return
        cur = self._cur
        x = idx ^ cur
        if x < 256:
            if idx > cur:
                s = idx & 255
                slot = self._l0[s]
                if slot:
                    slot.append(entry)
                else:
                    slot.append(entry)
                    self._bm0 |= _BIT[s]
            else:
                heappush(self._ready, entry)
        elif idx < cur:
            # Behind the cursor: a bounded run() advanced time past this
            # slot without draining it (the cursor only jumps to occupied
            # slots).  Exact order is preserved through the ready heap.
            heappush(self._ready, entry)
        elif x < self._lim1:
            s = (idx >> 8) & 255
            slot = self._l1[s]
            if slot:
                slot.append(entry)
            else:
                slot.append(entry)
                self._bm1 |= _BIT[s]
        elif x < self._lim2:
            s = (idx >> 16) & 255
            slot = self._l2[s]
            if slot:
                slot.append(entry)
            else:
                slot.append(entry)
                self._bm2 |= _BIT[s]
        else:
            heappush(self._overflow, entry)

    def post_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when``; no handle."""
        if not (self._now <= when < _INF):
            self._reject_time(when)
        seq = self._seq
        self._seq = seq + 1
        if not (seq & 63) and self._adaptive:
            self._observe_delay(seq, when - self._now)
        self._insert(when, (when, seq, fn, args))

    def post_after(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds; no handle.

        The steady-state hot path: the placement logic is inlined here
        (rather than calling :meth:`_insert`) because one Python call
        frame per post is the difference between beating the heap core
        and matching it.  The sparse bypass comes first — a near-empty
        engine pays one bitmap test and a tiny heap push, nothing
        else, and the dense regime pays a single short-circuited
        occupancy-bitmap load to skip it — and the delay reservoir samples
        every 64th post (one bitmask test on the others).
        """
        when = self._now + delay
        if not (self._now <= when < _INF):
            if delay < 0:
                raise SimulationError(f"delay must be non-negative, got {delay}")
            self._reject_time(when)
        seq = self._seq
        self._seq = seq + 1
        if not (seq & 63) and self._adaptive:
            self._observe_delay(seq, delay)
        if (
            not self._buf
            and not self._bm0
            and not (self._bm1 | self._bm2)
            and not self._overflow
            and len(self._ready) < self._sparse
        ):
            heappush(self._ready, (when, seq, fn, args))
            return
        try:
            idx = int(when * self._inv)
        except OverflowError:
            heappush(self._overflow, (when, seq, fn, args))
            return
        cur = self._cur
        x = idx ^ cur
        if x < 256:
            if idx > cur:
                s = idx & 255
                slot = self._l0[s]
                if slot:
                    slot.append((when, seq, fn, args))
                else:
                    slot.append((when, seq, fn, args))
                    self._bm0 |= _BIT[s]
            else:
                heappush(self._ready, (when, seq, fn, args))
        elif idx < cur:
            heappush(self._ready, (when, seq, fn, args))
        elif x < self._lim1:
            s = (idx >> 8) & 255
            slot = self._l1[s]
            if slot:
                slot.append((when, seq, fn, args))
            else:
                slot.append((when, seq, fn, args))
                self._bm1 |= _BIT[s]
        elif x < self._lim2:
            s = (idx >> 16) & 255
            slot = self._l2[s]
            if slot:
                slot.append((when, seq, fn, args))
            else:
                slot.append((when, seq, fn, args))
                self._bm2 |= _BIT[s]
        else:
            heappush(self._overflow, (when, seq, fn, args))

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``when``; cancellable."""
        if not (self._now <= when < _INF):
            self._reject_time(when)
        seq = self._seq
        self._seq = seq + 1
        self._pure = False
        handle = tuple.__new__(EventHandle, (when, seq, fn, args))
        handle._engine = self
        self._insert(when, handle)
        return handle

    def call_after(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds; cancellable."""
        when = self._now + delay
        if not (self._now <= when < _INF):
            if delay < 0:
                raise SimulationError(f"delay must be non-negative, got {delay}")
            self._reject_time(when)
        seq = self._seq
        self._seq = seq + 1
        self._pure = False
        handle = tuple.__new__(EventHandle, (when, seq, fn, args))
        handle._engine = self
        self._insert(when, handle)
        return handle

    def _note_cancel(self) -> None:
        """A stored handle was cancelled; compact if inert entries dominate.

        Same threshold rule as the heap engine: a live O(1) counter
        comparison, with the rebuild only when cancelled entries are both
        numerous and the majority of what is stored.
        """
        self._cancelled += 1
        stale = self._stale + 1
        self._stale = stale
        if stale > _COMPACT_MIN_STALE and stale > self.pending:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the slots, overflow, and ready bands.

        All filtering is in place (slice assignment, in-place heapify), so
        a dispatch loop holding a band reference mid-callback stays
        consistent; the active slot buffer is deliberately left alone —
        its cancelled entries are skipped (and accounted) as dispatch
        reaches them.  Slot order is append order and the heaps
        re-heapify, so the exact ``(when, seq)`` firing order survives and
        compaction is invisible except for speed.
        """
        removed = 0
        for slots, bm_name in (
            (self._l0, "_bm0"),
            (self._l1, "_bm1"),
            (self._l2, "_bm2"),
        ):
            bm = getattr(self, bm_name)
            probe = bm
            while probe:
                s = (probe & -probe).bit_length() - 1
                probe &= probe - 1
                slot = slots[s]
                live = [e for e in slot if e.__class__ is tuple or not e.cancelled]
                if len(live) != len(slot):
                    removed += len(slot) - len(live)
                    slot[:] = live
                    if not live:
                        bm &= _NBIT[s]
            setattr(self, bm_name, bm)
        for band in (self._overflow, self._ready):
            live = [e for e in band if e.__class__ is tuple or not e.cancelled]
            if len(live) != len(band):
                removed += len(band) - len(live)
                band[:] = live
                heapify(band)
        self._stale -= removed

    # -- introspection --------------------------------------------------------
    def _entries(self) -> Iterator[tuple]:
        """Yield every stored entry across all bands (audit/debug path)."""
        for slots in (self._l0, self._l1, self._l2):
            for slot in slots:
                yield from slot
        yield from self._overflow
        yield from self._ready
        yield from self._buf

    def _audit_slots(self) -> list[str]:
        """Check bitmap/slot consistency; return human-readable problems.

        Invariant: a level's bitmap bit is set exactly when its slot list
        is nonempty (cancelled entries count — their bits clear only when
        compaction or a refill empties the slot).
        """
        problems: list[str] = []
        for level, (slots, bm) in enumerate(
            ((self._l0, self._bm0), (self._l1, self._bm1), (self._l2, self._bm2))
        ):
            for s in range(_SLOTS):
                occupied = bool(slots[s])
                flagged = bool(bm & _BIT[s])
                if occupied != flagged:
                    problems.append(
                        f"level {level} slot {s}: "
                        f"{len(slots[s])} entries but bitmap bit is {int(flagged)}"
                    )
        return problems

    # -- instrumentation -------------------------------------------------------
    def attach_tick_observer(
        self,
        observe: Callable[[float], None] | None,
        sample_every: int = 1024,
    ) -> None:
        """Feed mean per-event wall latency to ``observe`` while running.

        Same contract as :meth:`Engine.attach_tick_observer`: wall time is
        measurement-only and never reaches simulated time or digests.
        """
        if sample_every < 1:
            raise SimulationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self._tick_observe = observe
        self._tick_sample_every = sample_every

    # -- adaptive resolution ---------------------------------------------------
    def _observe_delay(self, seq: int, delay: float) -> None:
        """Record one sampled post delay; adapt when the ring wraps.

        Callers pre-filter to every :data:`_OBS_STRIDE`-th post (a single
        ``seq & 63`` test on the hot path), so this runs on ~1.6% of
        posts; the full adaptation check runs once per
        ``_OBS_STRIDE * _OBS_SLOTS`` (16384) posts.
        """
        i = (seq >> 6) & 255
        self._obs[i] = delay
        if i == 255:
            self._maybe_adapt()

    def _delay_cost(self, bits: int, samples: list) -> float:
        """Modeled per-post slot-touch cost at a candidate resolution.

        The cost model scores where each sampled delay would land at
        ``2**bits`` ticks/second: sub-tick delays collide in the ready
        heap (ordering cost), level-0 landings are one slot touch, each
        higher level adds a cascade rehoming, and past-horizon delays pay
        the overflow heap + pull-back.  Empty-slot scans are already
        O(popcount) thanks to the occupancy bitmaps, so they contribute no
        resolution-dependent term worth modeling.
        """
        lim1 = float(self._lim1 or 256)
        lim2 = float(self._lim2 or self._lim1 or 256)
        scale = float(1 << bits)
        cost = 0.0
        for d in samples:
            t = clamp_horizon(d * scale, TICK_INDEX_LIMIT)
            if t < 1.0:
                cost += _COST_SAME_TICK
            elif t < 256.0:
                cost += _COST_L0
            elif t < lim1:
                cost += _COST_L0 + _COST_CASCADE
            elif t < lim2:
                cost += _COST_L0 + 2.0 * _COST_CASCADE
            else:
                cost += _COST_OVERFLOW
        return cost / len(samples)

    def suggest_resolution_bits(self) -> int:
        """Resolution the cost model prefers for the observed delays.

        Static heuristic fallback: with fewer than 32 reservoir samples
        there is not enough delay evidence to justify a retune, so the
        current resolution stands (the 1/128 s default places the paper's
        10 ms–2 s timer band inside level 0).  Ties and near-ties resolve
        toward the current resolution, then toward fewer bits — both
        deterministic.
        """
        samples = [d for d in self._obs if d is not None]
        if len(samples) < 32:
            return self._resolution_bits
        current = self._resolution_bits
        best = (self._delay_cost(current, samples), 0, current)
        for bits in range(21):
            if bits == current:
                continue
            rank = (self._delay_cost(bits, samples), abs(bits - current), bits)
            if rank < best:
                best = rank
        return best[2]

    def _maybe_adapt(self) -> None:
        """Adapt if the best candidate clears the hysteresis margin.

        A full candidate ranking costs ~21 cost-model passes over the
        reservoir, so it only runs when the reservoir actually changed:
        the ring's exact sum is the change signature (deterministic, one
        pass), and a steady workload — same delays wrap after wrap —
        skips the ranking entirely.
        """
        samples = [d for d in self._obs if d is not None]
        if len(samples) < 32:
            return
        sig = (len(samples), math.fsum(samples))
        if sig == self._obs_sig:
            return
        self._obs_sig = sig
        current = self._resolution_bits
        current_cost = self._delay_cost(current, samples)
        best = (current_cost, 0, current)
        for bits in range(21):
            if bits == current:
                continue
            rank = (self._delay_cost(bits, samples), abs(bits - current), bits)
            if rank < best:
                best = rank
        if best[2] != current and best[0] < _ADAPT_HYSTERESIS * current_cost:
            self.adapt_resolution(best[2])

    def adapt_resolution(self, resolution_bits: int | None = None) -> bool:
        """Rebuild every band at a new resolution; ``True`` if it changed.

        With ``resolution_bits=None`` the cost model picks
        (:meth:`suggest_resolution_bits`).  The rebuild collects every
        stored entry from the slot, overflow, and ready bands (dropping
        cancelled handles, which adjusts the stale count), resets the
        cursor to the current time at the new resolution, and re-inserts.
        Exact firing order is unchanged because every band orders by
        ``(when, seq)`` — adaptation is invisible to the simulation except
        for speed, which is what keeps seeded runs digest-identical across
        resolutions.  The active dispatch buffer is deliberately left in
        place: its entries are already committed to fire before anything
        still stored, and the interleave against the ready heap keeps
        their order exact.
        """
        if resolution_bits is None:
            bits = self.suggest_resolution_bits()
        else:
            bits = resolution_bits
            if not 0 <= bits <= 20:
                raise SimulationError(
                    f"resolution_bits must be in [0, 20], got {bits}"
                )
        if bits == self._resolution_bits:
            return False
        entries: list = []
        for slots in (self._l0, self._l1, self._l2):
            for slot in slots:
                if slot:
                    entries.extend(slot)
                    slot.clear()
        entries.extend(self._overflow)
        self._overflow.clear()
        entries.extend(self._ready)
        self._ready.clear()
        self._bm0 = 0
        self._bm1 = 0
        self._bm2 = 0
        self._resolution_bits = bits
        self._inv = float(1 << bits)
        scaled_now = self._now * self._inv
        self._cur = int(scaled_now) if scaled_now < TICK_INDEX_LIMIT else 0
        dropped = 0
        ins = self._insert
        for e in entries:
            if e.__class__ is not tuple and e.cancelled:
                dropped += 1
                continue
            ins(e[0], e)
        self._stale -= dropped
        self._adaptations += 1
        return True

    # -- dispatch internals ----------------------------------------------------
    def _refill(self) -> bool:
        """Advance the cursor to the next occupied slot and load ``_buf``.

        Returns ``False`` when every band is empty.  May push entries into
        the ready heap (a cascade can land an entry at the new cursor), so
        callers must re-check ``_ready`` after a ``False`` return.

        Each loop iteration is one bitmap scan / cascade / overflow pull —
        O(1) work thanks to the occupancy bitmaps — so ``_scan_iters``
        grows with the number of *occupied* slots crossed, never with the
        tick distance: an idle wheel advancing an arbitrary horizon costs
        O(popcount), which the skip-ahead property tests assert.
        """
        while True:
            self._scan_iters += 1
            cur = self._cur
            pos = cur & 255
            m = self._bm0 >> pos
            if m:
                s = pos + ((m & -m).bit_length() - 1)
                self._cur = (cur & -256) | s
                buf = self._l0[s]
                self._l0[s] = []
                self._bm0 &= _NBIT[s]
                buf.sort(reverse=True)
                self._buf = buf
                return True
            pos1 = (cur >> 8) & 255
            m1 = self._bm1 >> (pos1 + 1)
            if m1:
                s1 = pos1 + 1 + ((m1 & -m1).bit_length() - 1)
                self._cur = ((cur >> 16) << 16) | (s1 << 8)
                self._bm1 &= _NBIT[s1]
                entries = self._l1[s1]
                self._l1[s1] = []
                # Cascade: explode the level-1 slot into level-0 slots.
                # Every entry lands strictly inside the new cursor block,
                # so the placement is a masked index, not a full _insert.
                inv = self._inv
                l0 = self._l0
                bm0 = self._bm0
                for e in entries:
                    s = int(e[0] * inv) & 255
                    l0[s].append(e)
                    bm0 |= _BIT[s]
                self._bm0 = bm0
                continue
            pos2 = (cur >> 16) & 255
            m2 = self._bm2 >> (pos2 + 1)
            if m2:
                s2 = pos2 + 1 + ((m2 & -m2).bit_length() - 1)
                self._cur = ((cur >> 24) << 24) | (s2 << 16)
                self._bm2 &= _NBIT[s2]
                entries = self._l2[s2]
                self._l2[s2] = []
                for e in entries:
                    self._insert(e[0], e)
                continue
            if self._overflow:
                ov = self._overflow
                inv = self._inv
                scaled = ov[0][0] * inv
                if scaled >= TICK_INDEX_LIMIT:
                    # Past the addressable tick range: dispatch these one
                    # at a time in exact heap order through the ready band.
                    heappush(self._ready, heappop(ov))
                    return False
                idx = int(scaled)
                self._cur = idx & self._pull_align
                shift = self._pull_shift
                top = idx >> shift
                # Pull the whole top-level block back into the wheel; the
                # rest of the far-future band stays in the heap.
                while ov:
                    scaled = ov[0][0] * inv
                    if scaled >= TICK_INDEX_LIMIT or int(scaled) >> shift != top:
                        break
                    e = heappop(ov)
                    self._insert(e[0], e)
                continue
            return False

    def _next_entry(self):
        """Pop the globally next live entry, or ``None`` when empty."""
        while True:
            buf = self._buf
            ready = self._ready
            while buf:
                e = buf[-1]
                if e.__class__ is not tuple and e.cancelled:
                    buf.pop()
                    self._stale -= 1
                    continue
                break
            while ready:
                e = ready[0]
                if e.__class__ is not tuple and e.cancelled:
                    heappop(ready)
                    self._stale -= 1
                    continue
                break
            if buf:
                if ready and ready[0] < buf[-1]:
                    return heappop(ready)
                return buf.pop()
            if ready:
                # Sparse fast path: with the slot and overflow bands empty
                # the ready heap is the whole world; and even when they are
                # not, a ready head at or behind the cursor provably fires
                # before any slotted entry (slots only ever hold ticks
                # strictly beyond the cursor), so popping it directly is
                # exact — and keeps the cursor put, so in-flight posts keep
                # landing in slots instead of chasing a prematurely
                # advanced cursor into the ready band.
                if (
                    not (self._bm0 | self._bm1 | self._bm2)
                    and not self._overflow
                ) or int(ready[0][0] * self._inv) <= self._cur:
                    return heappop(ready)
            if not self._refill() and not self._ready:
                return None
            # A slotted entry may order before the ready head: loop to
            # interleave the freshly loaded buffer (or the far-future head
            # the refill moved into ready) in exact (when, seq) order.

    def _peek_entry(self):
        """The globally next live entry without removing it, or ``None``.

        Skips (and accounts) cancelled entries at the band heads, exactly
        like :meth:`_next_entry`, so peek-then-pop sees the same entry.
        """
        while True:
            buf = self._buf
            ready = self._ready
            while buf:
                e = buf[-1]
                if e.__class__ is not tuple and e.cancelled:
                    buf.pop()
                    self._stale -= 1
                    continue
                break
            while ready:
                e = ready[0]
                if e.__class__ is not tuple and e.cancelled:
                    heappop(ready)
                    self._stale -= 1
                    continue
                break
            if buf:
                if ready and ready[0] < buf[-1]:
                    return ready[0]
                return buf[-1]
            if ready and (
                (
                    not (self._bm0 | self._bm1 | self._bm2)
                    and not self._overflow
                )
                or int(ready[0][0] * self._inv) <= self._cur
            ):
                # Sparse fast path (see _next_entry): the ready head is
                # provably the globally next entry.
                return ready[0]
            if not self._refill() and not self._ready:
                return None

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; return ``False`` if nothing is pending."""
        e = self._next_entry()
        if e is None:
            return False
        if e.__class__ is not tuple:
            e.cancelled = True  # Consumed: a late cancel() is a no-op.
        self._now = e[0]
        self._events_fired += 1
        e[2](*e[3])
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until drained, ``until`` passes, or the budget ends.

        Same contract as :meth:`Engine.run`: returns the stop time, and
        with ``until`` the clock advances to exactly ``until`` even when
        the last event fired earlier.
        """
        if self._monitored:
            return self._run_stepped(until, max_events)
        if self._tick_observe is not None:
            return self._run_instrumented(until, max_events)
        if until is None and max_events is None:
            return self._run_drain()
        fired = 0
        while True:
            head = self._peek_entry()
            if head is None:
                break
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                return self._now
            e = self._next_entry()
            if e.__class__ is not tuple:
                e.cancelled = True
            self._now = e[0]
            self._events_fired += 1
            e[2](*e[3])
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_drain(self) -> float:
        """Drain-all fast loop: dispatch straight off the slot buffer.

        The inner ``while buf`` loop touches no band bookkeeping at all —
        pop, clock, call — and only breaks out when a callback pushed
        into the ready heap (a clamped or zero-delay post) that must be
        interleaved in exact ``(when, seq)`` order.  Fired-count updates
        are batched per buffer; the ``finally`` keeps the count exact
        even when a callback raises.
        """
        ready = self._ready
        while True:
            buf = self._buf
            if not buf:
                if ready and (
                    (
                        not (self._bm0 | self._bm1 | self._bm2)
                        and not self._overflow
                    )
                    or int(ready[0][0] * self._inv) <= self._cur
                ):
                    # Sparse fast path: either the slot and overflow bands
                    # are empty (ready is the whole world), or the ready
                    # head sits at or behind the cursor and so provably
                    # fires before any slotted entry — either way, pop it
                    # without a refill, keeping the cursor put so new
                    # posts keep landing in slots.
                    e = heappop(ready)
                    if e.__class__ is not tuple:
                        if e.cancelled:
                            self._stale -= 1
                            continue
                        e.cancelled = True
                    self._now = e[0]
                    self._events_fired += 1
                    e[2](*e[3])
                    continue
                if not self._refill():
                    if ready:
                        # A cascade clamped entries into ready, or the
                        # refill moved the far-future head there; loop to
                        # interleave (or fast-path once the slots drain).
                        continue
                    return self._now
                buf = self._buf
            if ready:
                # Interleave path: the ready heap holds due-now entries
                # that may order before the slot buffer's next event.
                if ready[0] < buf[-1]:
                    e = heappop(ready)
                else:
                    e = buf.pop()
                if e.__class__ is not tuple:
                    if e.cancelled:
                        self._stale -= 1
                        continue
                    e.cancelled = True
                self._now = e[0]
                self._events_fired += 1
                e[2](*e[3])
                continue
            n0 = len(buf)
            pop = buf.pop
            if self._pure:
                # Handle-free engine: no cancellation checks needed, and
                # fired-count updates batch per buffer.
                try:
                    while buf:
                        e = pop()
                        self._now = e[0]
                        e[2](*e[3])
                        if ready:
                            break
                finally:
                    self._events_fired += n0 - len(buf)
                continue
            skipped = 0
            try:
                while buf:
                    e = pop()
                    if e.__class__ is not tuple:
                        if e.cancelled:
                            skipped += 1
                            continue
                        e.cancelled = True
                    self._now = e[0]
                    e[2](*e[3])
                    if ready:
                        break
            finally:
                consumed = n0 - len(buf)
                self._events_fired += consumed - skipped
                self._stale -= skipped

    def _run_instrumented(
        self, until: float | None, max_events: int | None
    ) -> float:
        """run() with tick-latency sampling (see attach_tick_observer)."""
        observe = self._tick_observe
        every = self._tick_sample_every
        stamp = time.perf_counter()  # verify: allow-wall-clock (latency metric only)
        batch = 0
        fired = 0
        budget_hit = False
        while True:
            head = self._peek_entry()
            if head is None:
                break
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                budget_hit = True
                break
            e = self._next_entry()
            if e.__class__ is not tuple:
                e.cancelled = True
            self._now = e[0]
            self._events_fired += 1
            e[2](*e[3])
            fired += 1
            batch += 1
            if batch >= every:
                now_wall = time.perf_counter()  # verify: allow-wall-clock (latency metric only)
                observe((now_wall - stamp) / batch)
                stamp = now_wall
                batch = 0
        if batch:
            now_wall = time.perf_counter()  # verify: allow-wall-clock (latency metric only)
            observe((now_wall - stamp) / batch)
        if budget_hit:
            return self._now
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_stepped(self, until: float | None, max_events: int | None) -> float:
        """run() routed through ``self.step()`` so monitors see every fire."""
        fired = 0
        while True:
            head = self._peek_entry()
            if head is None:
                break
            if until is not None and head[0] > until:
                break
            if max_events is not None and fired >= max_events:
                return self._now
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def drain(self) -> None:
        """Discard all pending events (used when tearing a simulation down)."""
        self._drained += self.pending
        for e in self._entries():
            if e.__class__ is not tuple:
                e.cancelled = True  # Late cancel() calls stay no-ops.
        for slots in (self._l0, self._l1, self._l2):
            for slot in slots:
                if slot:
                    slot.clear()
        self._bm0 = 0
        self._bm1 = 0
        self._bm2 = 0
        self._overflow.clear()
        self._ready.clear()
        self._buf.clear()
        self._stale = 0


#: Either event core.  The heap engine and the wheel engine share one
#: scheduling/execution contract (verified bit-identical by the wheel
#: oracle), so device models and the kernel accept both interchangeably.
EventCore = Engine | WheelEngine
