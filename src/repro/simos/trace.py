"""Execution and progress traces for the paper's dynamic-behaviour figures.

Two recorders:

* :class:`DutyTrace` — subscribes to kernel thread events and records, per
  traced thread, the intervals during which the thread is *executing* from
  the application's point of view: not blocked in the MS Manners testpoint,
  not debug-suspended.  (Waiting on disk or CPU still counts as executing —
  that is the thread doing its work.)  This regenerates Figure 7 (defrag
  duty during the database workload) and Figure 9 (Groveler thread duty).
* :class:`TestpointTrace` — records per-processed-testpoint measurements
  (time, measured duration, target duration, judgment) from the regulation
  bridge, and aggregates the *normalized target duration* over fixed
  windows: ``sum(target durations) / sum(measured durations)``, the
  quantity on Figure 8's y-axis (values above 1 mean progress above the
  target rate).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable

from repro.core.signtest import Judgment
from repro.obs import events as obs_events
from repro.simos.kernel import Kernel, SimThread

__all__ = ["DutyTrace", "TestpointRecord", "TestpointTrace"]


class DutyTrace:
    """Binary executing/blocked timeline per traced thread.

    Subscribes to the kernel's thread-event bus on construction; call
    :meth:`close` (or use the instance as a context manager) to detach when
    tracing is done, so discarded traces stop costing a callback per event.
    """

    __slots__ = ("_kernel", "_traced", "_blocked_labels", "_closed")

    def __init__(self, kernel: Kernel, blocked_labels: tuple[str, ...] = ("manners",)) -> None:
        self._kernel = kernel
        self._blocked_labels = blocked_labels
        self._traced: dict[SimThread, list[tuple[float, int]]] = {}
        self._closed = False
        kernel.add_listener(self._on_event)

    def close(self) -> None:
        """Detach from the kernel event bus (idempotent); data stays readable."""
        if not self._closed:
            self._kernel.remove_listener(self._on_event)
            self._closed = True

    def __enter__(self) -> "DutyTrace":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def watch(self, thread: SimThread) -> None:
        """Start tracing a thread (records its current state immediately)."""
        if thread not in self._traced:
            self._traced[thread] = [(self._kernel.now, self._flag(thread))]

    def _flag(self, thread: SimThread) -> int:
        if not thread.alive:
            return 0
        if thread.suspended:
            return 0
        if thread.blocked_on in self._blocked_labels:
            return 0
        return 1

    def _on_event(self, kind: str, thread: SimThread, now: float) -> None:
        series = self._traced.get(thread)
        if series is None:
            return
        flag = self._flag(thread)
        if flag != series[-1][1]:
            series.append((now, flag))

    # -- queries ---------------------------------------------------------------
    def series(self, thread: SimThread) -> list[tuple[float, int]]:
        """The (time, 0/1) transition list, oldest first."""
        if thread not in self._traced:
            raise KeyError(f"thread {thread!r} is not traced")
        return list(self._traced[thread])

    def executing_time(self, thread: SimThread, start: float, end: float) -> float:
        """Seconds the thread spent executing within [start, end]."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        series = self._traced.get(thread)
        if not series:
            return 0.0
        total = 0.0
        for i, (t, flag) in enumerate(series):
            seg_end = series[i + 1][0] if i + 1 < len(series) else max(end, t)
            lo = max(t, start)
            hi = min(seg_end, end)
            if hi > lo and flag:
                total += hi - lo
        return total

    def duty_fraction(self, thread: SimThread, start: float, end: float) -> float:
        """Fraction of [start, end] the thread spent executing."""
        if end <= start:
            return 0.0
        return self.executing_time(thread, start, end) / (end - start)

    def binned(
        self, thread: SimThread, start: float, end: float, bin_width: float
    ) -> list[tuple[float, float]]:
        """(bin start, executing fraction) samples — the plot series."""
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        out = []
        t = start
        while t < end:
            hi = min(t + bin_width, end)
            out.append((t, self.duty_fraction(thread, t, hi)))
            t = hi
        return out


@dataclass(frozen=True, slots=True)
class TestpointRecord:
    """One processed testpoint as seen by the regulation bridge."""

    when: float
    duration: float
    target_duration: float | None
    judgment: Judgment | None
    delay: float


class TestpointTrace:
    """Chronological record of processed testpoints for one thread."""

    __slots__ = ("_records")

    def __init__(self) -> None:
        self._records: list[TestpointRecord] = []

    def record(
        self,
        when: float,
        duration: float,
        target_duration: float | None,
        judgment: Judgment | None,
        delay: float,
    ) -> None:
        """Append one processed-testpoint observation."""
        self._records.append(
            TestpointRecord(when, duration, target_duration, judgment, delay)
        )

    def record_event(self, event: "obs_events.TestpointProcessed") -> None:
        """Append one telemetry ``testpoint`` event (the event-bus form)."""
        self.record(
            event.t,
            event.duration,
            event.target_duration,
            None if event.judgment is None else Judgment(event.judgment),
            event.delay,
        )

    @classmethod
    def from_events(cls, events: "Iterable[obs_events.Event]") -> "TestpointTrace":
        """Build a trace from a telemetry event stream (e.g. a JSONL replay).

        Only ``testpoint`` events contribute; everything else is ignored, so
        a full mixed trace can be passed as-is.
        """
        trace = cls()
        for event in events:
            if isinstance(event, obs_events.TestpointProcessed):
                trace.record_event(event)
        return trace

    @property
    def records(self) -> list[TestpointRecord]:
        """All records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def normalized_progress(
        self, start: float, end: float, window: float = 2.0
    ) -> list[tuple[float, float]]:
        """Figure 8's series: normalized target duration per window.

        For each window, ``sum(target) / sum(measured)`` over the
        testpoints whose timestamps fall inside it; windows with no
        comparable testpoints are skipped.  Values > 1 mean the thread
        progressed faster than its target rate.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        times = [r.when for r in self._records]
        out = []
        t = start
        while t < end:
            hi = min(t + window, end)
            lo_i = bisect.bisect_left(times, t)
            hi_i = bisect.bisect_left(times, hi)
            measured = 0.0
            target = 0.0
            for record in self._records[lo_i:hi_i]:
                if record.target_duration is None or record.duration <= 0:
                    continue
                measured += record.duration
                target += record.target_duration
            if measured > 0:
                out.append((t, target / measured))
            t = hi
        return out

    def mean_target_duration(self, start: float, end: float) -> float | None:
        """Mean target duration between testpoints in [start, end] (Fig. 10)."""
        times = [r.when for r in self._records]
        lo_i = bisect.bisect_left(times, start)
        hi_i = bisect.bisect_left(times, end)
        values = [
            r.target_duration
            for r in self._records[lo_i:hi_i]
            if r.target_duration is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)
