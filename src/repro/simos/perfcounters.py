"""Performance counters: the standard progress-export mechanism.

Windows NT performance counters are "a standard means for programs to
export measurements that aid performance tuning" (paper section 7.2); they
are how BeNice observes an unmodified application's progress.  This module
provides the simulated equivalent: a machine-wide registry in which any
application can publish named, monotonically readable counters, and any
observer (BeNice) can poll them *without any cooperation from the
application beyond publishing*.

Counters are plain floats.  Applications usually expose cumulative totals
(bytes read, operations completed), which is exactly the form
:class:`~repro.core.controller.ThreadRegulator` expects.
"""

from __future__ import annotations

from repro.core.errors import RegulationStateError

__all__ = ["PerfCounter", "PerfCounterRegistry"]


class PerfCounter:
    """One published counter."""

    __slots__ = ("process", "name", "_value")

    def __init__(self, process: str, name: str) -> None:
        self.process = process
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current reading."""
        return self._value

    def add(self, amount: float) -> None:
        """Increment the counter (the common, monotone usage)."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self._value += amount

    def set(self, value: float) -> None:
        """Overwrite the counter (for gauge-style counters)."""
        self._value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCounter({self.process}/{self.name}={self._value})"


class PerfCounterRegistry:
    """The machine-wide counter namespace."""

    __slots__ = ("_counters")

    def __init__(self) -> None:
        self._counters: dict[tuple[str, str], PerfCounter] = {}

    def publish(self, process: str, name: str) -> PerfCounter:
        """Create (or return the existing) counter ``process/name``."""
        key = (process, name)
        counter = self._counters.get(key)
        if counter is None:
            counter = PerfCounter(process, name)
            self._counters[key] = counter
        return counter

    def read(self, process: str, name: str) -> float:
        """Poll one counter; unknown counters are an error (a typo, usually)."""
        try:
            return self._counters[(process, name)].value
        except KeyError:
            raise RegulationStateError(
                f"no counter {name!r} published by {process!r}"
            ) from None

    def read_all(self, process: str) -> dict[str, float]:
        """Poll every counter a process publishes."""
        return {
            name: counter.value
            for (proc, name), counter in self._counters.items()
            if proc == process
        }

    def processes(self) -> tuple[str, ...]:
        """Processes that have published at least one counter."""
        return tuple(sorted({proc for proc, _ in self._counters}))
