"""Engine sharding: independent simulated machines across worker processes.

The fleet-scale workloads (ROADMAP item 2) simulate many *independent*
machines — each with its own event core, clock, and seeded workload —
that exchange a comparatively small number of cross-machine messages.
That structure shards cleanly: machines partition across worker
processes, every process advances its machines through the same sequence
of **tick barriers**, and messages cross shard boundaries only at a
barrier.

Determinism is the whole design (the same discipline
:class:`~repro.analysis.parallel.ParallelRunner` enforces for trials):

* a machine's evolution within a round depends only on its own seed and
  the messages delivered to it at the round's start — never on which
  shard hosts it or which machines share its process;
* outbound messages carry ``(send_time, src, seq)`` where ``seq`` is the
  source machine's append order; the coordinator sorts the union of all
  shards' outboxes by that key before routing, so delivery order is a
  pure function of the messages themselves;
* delivery happens at the barrier (a message sent during round *k* is
  posted into the destination engine when round *k+1* begins), so no
  machine can observe a mid-round event on another machine.

``shards=1`` runs the exact same barrier loop inline — no worker
processes — and therefore produces byte-identical machine snapshots, a
property the CI perf-smoke job asserts via the result digest.

**Work-stealing rebalancing** (``rebalance=True``) migrates whole
machines from the slowest shard to the fastest at tick barriers.  The
steal decision is a pure function of the barrier-ordered load vector —
every shard's load is collected *at* the barrier and examined in shard
index order with deterministic tie-breaks, so no decision ever races
wall clocks mid-round.  ``balance_on`` picks the load signal: ``"wall"``
(per-shard round wall seconds, the production signal) or ``"events"``
(per-shard fired-event counts, bit-reproducible for tests).  Digest
parity survives stealing by construction: a machine's evolution depends
only on its seed and delivered messages, never on which shard hosts it,
so migrating it between rounds changes wall time and nothing else.

The built-in :class:`ChainMachine` is the reference fleet workload used
by ``repro bench engine_sharded`` and the shard tests: per-machine timer
chains on the wheel core with deterministic cross-machine pings.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from typing import Any, Callable, Sequence

from repro.simos.engine import SimulationError

__all__ = [
    "Message",
    "ChainMachine",
    "ShardResult",
    "ShardedFleet",
    "skewed_machine",
]

#: One cross-machine message: ``(send_time, src, seq, dst, payload)``.
#: ``seq`` is the source machine's outbox append index for the round;
#: the routing sort key ``(send_time, src, seq)`` is therefore total and
#: shard-layout independent.  Payloads must be picklable and JSON-able.
Message = tuple


class ChainMachine:
    """One simulated machine: wheel-core timer chains + cross-machine pings.

    Deterministic from ``(machine_id, machines, seed)`` alone: the seeded
    RNG is used only at construction time (to lay out chain periods), so
    the event stream itself is replay-exact.  Every ``ping_every``-th
    chain hop sends a ping to a neighbour machine; delivered pings spawn
    a short local completion burst — enough cross-shard traffic to make
    ordering bugs visible, few enough messages that the barrier exchange
    stays cheap.
    """

    __slots__ = (
        "machine_id",
        "machines",
        "engine",
        "_ping_every",
        "_hops",
        "_pings_out",
        "_pings_in",
        "_outbox",
    )

    def __init__(
        self,
        machine_id: int,
        machines: int,
        seed: int,
        chains: int = 64,
        ping_every: int = 32,
        engine_core: str = "wheel",
    ) -> None:
        from repro.simos.kernel import make_engine

        if machines < 1 or not 0 <= machine_id < machines:
            raise SimulationError(
                f"machine_id {machine_id} outside fleet of {machines}"
            )
        self.machine_id = machine_id
        self.machines = machines
        self.engine = make_engine(engine_core)
        self._ping_every = ping_every
        self._hops = 0
        self._pings_out = 0
        self._pings_in = 0
        self._outbox: list[Message] = []
        # Chain layout: deterministic per (seed, machine_id), seeded-RNG
        # generated once here and never consulted again.
        import random

        rng = random.Random((seed * 1_000_003 + 17) ^ (machine_id * 0x9E3779B9))
        post_after = self.engine.post_after
        for chain in range(chains):
            period = 0.25 + rng.randrange(28) * 0.0625  # 0.25s .. ~1.94s
            start = 0.001 + rng.randrange(64) * 0.015625
            post_after(start, self._tick, chain, period)

    # -- workload ------------------------------------------------------------
    def _tick(self, chain: int, period: float) -> None:
        self._hops += 1
        if self._hops % self._ping_every == 0:
            dst = (self.machine_id + 1 + chain % max(1, self.machines - 1)) % self.machines
            if dst != self.machine_id:
                self._outbox.append(
                    (
                        self.engine.now,
                        self.machine_id,
                        len(self._outbox),
                        dst,
                        chain,
                    )
                )
                self._pings_out += 1
        self.engine.post_after(period, self._tick, chain, period)

    def _on_ping(self, src: int, payload: Any) -> None:
        self._pings_in += 1
        # A short completion burst models the work a remote request causes.
        self.engine.post_after(0.0078125, self._burst, 2)

    def _burst(self, left: int) -> None:
        if left:
            self.engine.post_after(0.0078125, self._burst, left - 1)

    # -- shard protocol ------------------------------------------------------
    def deliver(self, messages: Sequence[Message]) -> None:
        """Post barrier-delivered messages into the local engine.

        Called at a round boundary (``engine.now`` equals the barrier
        time); messages arrive pre-sorted by the coordinator, so the
        posting order — and therefore the engine sequence numbers — is
        shard-layout independent.
        """
        now = self.engine.now
        post_at = self.engine.post_at
        for _send_time, src, _seq, _dst, payload in messages:
            post_at(now, self._on_ping, src, payload)

    def run_until(self, t: float) -> list[Message]:
        """Advance the local engine to the barrier; return the outbox."""
        self.engine.run(until=t)
        out = self._outbox
        self._outbox = []
        return out

    def snapshot(self) -> dict:
        """Deterministic JSON-able end-of-run state (digest material)."""
        return {
            "machine": self.machine_id,
            "now": self.engine.now,
            "events_fired": self.engine.events_fired,
            "pending": self.engine.pending,
            "hops": self._hops,
            "pings_in": self._pings_in,
            "pings_out": self._pings_out,
        }


def skewed_machine(machine_id: int, machines: int, seed: int) -> ChainMachine:
    """Imbalanced reference fleet: every 4th machine carries 16x the load.

    Machine ids ``0, 4, 8, ...`` get 256 timer chains; the rest get 16.
    Under the coordinator's round-robin placement with ``shards=4`` the
    heavy machines all land on shard 0, which makes this the reference
    workload for the work-stealing rebalancer (``repro bench
    shard_imbalanced``): without stealing, shard 0 is the critical path
    for ~80% of the fleet's events; with stealing, the heavy machines
    spread across shards within a few barriers.  Module-level and
    picklable, so spawn-start workers can import it.
    """
    heavy = machine_id % 4 == 0
    return ChainMachine(machine_id, machines, seed, chains=256 if heavy else 16)


class ShardResult:
    """Outcome of one fleet run: per-machine snapshots + derived digest."""

    __slots__ = (
        "snapshots",
        "events_fired",
        "messages_routed",
        "shards",
        "migrations",
    )

    def __init__(
        self,
        snapshots: list[dict],
        messages_routed: int,
        shards: int,
        migrations: int = 0,
    ) -> None:
        self.snapshots = snapshots
        self.events_fired = sum(int(s.get("events_fired", 0)) for s in snapshots)
        self.messages_routed = messages_routed
        self.shards = shards
        self.migrations = migrations

    @property
    def digest(self) -> str:
        """Order-insensitive-by-construction digest: snapshots sort by id."""
        text = json.dumps(
            sorted(self.snapshots, key=lambda s: s["machine"]), sort_keys=True
        )
        return hashlib.sha256(text.encode()).hexdigest()[:16]


def _machine_events(machine) -> int:
    """Fired-event count from the protocol-level snapshot (load signal)."""
    return int(machine.snapshot().get("events_fired", 0))


def _shard_worker(conn, make_machine, machine_ids, machines, seed) -> None:
    """Worker loop: build the shard's machines, then serve barrier rounds.

    A ``round`` reply carries ``(outbox, wall_seconds, {mid: events})`` —
    the wall time the round took in this worker and each machine's
    *cumulative* fired-event count.  Both are measurement-only load
    signals the coordinator reads at the barrier; neither feeds simulated
    time or the snapshots, so digests never depend on them.  ``steal``
    pops the named machines and ships them (pickled over the pipe) to
    the coordinator, which hands them to the receiving shard via
    ``adopt``; migration happens strictly between rounds, so a machine's
    event stream is seamless across the move.
    """
    fleet = {
        mid: make_machine(mid, machines, seed) for mid in machine_ids
    }
    machine_ids = sorted(machine_ids)
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "round":
                _, t, inbox = msg
                outbox: list[Message] = []
                start = time.perf_counter()  # verify: allow-wall-clock (load signal only)
                for mid in machine_ids:  # fixed id order within the shard
                    machine = fleet[mid]
                    delivery = inbox.get(mid)
                    if delivery:
                        machine.deliver(delivery)
                    outbox.extend(machine.run_until(t))
                wall = time.perf_counter() - start  # verify: allow-wall-clock (load signal only)
                conn.send(
                    (outbox, wall, {mid: _machine_events(fleet[mid]) for mid in machine_ids})
                )
            elif op == "steal":
                _, mids = msg
                moved = []
                for mid in mids:
                    machine = fleet.pop(mid)
                    machine_ids.remove(mid)
                    moved.append((mid, machine))
                conn.send(moved)
            elif op == "adopt":
                _, moved = msg
                for mid, machine in moved:
                    fleet[mid] = machine
                    machine_ids.append(mid)
                machine_ids.sort()
                conn.send(True)
            elif op == "finish":
                conn.send([fleet[mid].snapshot() for mid in machine_ids])
                return
            else:  # pragma: no cover - protocol misuse guard
                raise SimulationError(f"unknown shard op {op!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        return


class ShardedFleet:
    """Coordinator: N machines across S worker processes, barrier-stepped.

    ``make_machine(machine_id, machines, seed)`` must build a machine
    implementing the shard protocol (``deliver`` / ``run_until`` /
    ``snapshot``) and — with its arguments — be picklable, since workers
    construct their own machines (simulated kernels hold generator frames
    and cannot cross a process boundary themselves).

    With ``shards=1`` the barrier loop runs inline in this process; with
    ``shards=N`` machines round-robin across N persistent workers.  Both
    layouts route messages through the same globally-sorted exchange, so
    the run is bit-identical either way — ``ShardResult.digest`` is the
    proof the CI gate checks.
    """

    __slots__ = (
        "machines",
        "shards",
        "seed",
        "rebalance",
        "balance_on",
        "migrations",
        "_make_machine",
        "_inline",
        "_workers",
        "_pipes",
        "_shard_ids",
    )

    def __init__(
        self,
        machines: int,
        make_machine: Callable[[int, int, int], Any] = ChainMachine,
        shards: int = 1,
        seed: int = 0,
        rebalance: bool = False,
        balance_on: str = "wall",
    ) -> None:
        if machines < 1:
            raise SimulationError(f"need at least one machine, got {machines}")
        if shards < 1:
            raise SimulationError(f"need at least one shard, got {shards}")
        if balance_on not in ("wall", "events"):
            raise SimulationError(
                f"balance_on must be 'wall' or 'events', got {balance_on!r}"
            )
        self.machines = machines
        self.shards = min(shards, machines)
        self.seed = seed
        self.rebalance = rebalance and self.shards > 1
        self.balance_on = balance_on
        self.migrations = 0
        self._make_machine = make_machine
        self._inline: dict[int, Any] | None = None
        self._workers: list = []
        self._pipes: list = []
        self._shard_ids: list[list[int]] = [
            list(range(s, machines, self.shards)) for s in range(self.shards)
        ]
        if self.shards == 1:
            self._inline = {
                mid: make_machine(mid, machines, seed) for mid in range(machines)
            }
        else:
            # fork keeps startup cheap and closure-friendly where available
            # (Linux/CI); spawn elsewhere requires make_machine to be an
            # importable callable, which the default ChainMachine is.
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            for ids in self._shard_ids:
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child, make_machine, ids, machines, seed),
                    daemon=True,
                )
                proc.start()
                child.close()
                self._workers.append(proc)
                self._pipes.append(parent)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Terminate workers (idempotent; finished workers exit on their own)."""
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._workers:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
        self._workers = []
        self._pipes = []

    def __enter__(self) -> "ShardedFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- rebalancing ---------------------------------------------------------
    @staticmethod
    def _pick_steal(
        loads: list[float], weights: list[dict[int, int]]
    ) -> tuple[int, int, int] | None:
        """Steal decision from the barrier-ordered load vector.

        Pure function: given per-shard loads (index = shard) and
        per-shard ``{machine_id: cumulative events}`` weight maps, return
        ``(src_shard, dst_shard, machine_id)`` or ``None``.  All ties
        break toward the lower shard/machine index, so the decision is
        bit-reproducible for any given load vector — the only
        nondeterminism under ``balance_on="wall"`` is the measured vector
        itself, which never reaches simulated state.

        Policy: one whole machine per barrier, from the most- to the
        least-loaded shard, only when the spread exceeds 25% of the
        fastest shard's load; the migrated machine is the one whose
        event weight best matches half the load gap (converted to event
        units via the source shard's events-per-load ratio), so a single
        hot machine moves in one step instead of oscillating.
        """
        src = max(range(len(loads)), key=lambda s: (loads[s], -s))
        dst = min(range(len(loads)), key=lambda s: (loads[s], s))
        if src == dst or len(weights[src]) <= 1:
            return None
        if loads[src] <= 1.25 * loads[dst]:
            return None
        src_events = sum(weights[src].values())
        if src_events <= 0 or loads[src] <= 0:
            return None
        # Half the load gap, expressed in this shard's event units.
        target = (loads[src] - loads[dst]) / (2.0 * loads[src]) * src_events
        mid = min(
            weights[src], key=lambda m: (abs(weights[src][m] - target), m)
        )
        return (src, dst, mid)

    def _migrate(self, src: int, dst: int, mid: int) -> None:
        """Move one machine between worker shards (between rounds only)."""
        self._pipes[src].send(("steal", [mid]))
        moved = self._pipes[src].recv()
        self._pipes[dst].send(("adopt", moved))
        self._pipes[dst].recv()
        self._shard_ids[src].remove(mid)
        self._shard_ids[dst].append(mid)
        self._shard_ids[dst].sort()
        self.migrations += 1

    # -- execution -----------------------------------------------------------
    def run(self, rounds: int, tick: float = 1.0) -> ShardResult:
        """Advance the whole fleet through ``rounds`` barrier rounds.

        Each round: deliver the previous round's messages, run every
        machine to the barrier, collect outboxes, sort the union by
        ``(send_time, src, seq)``, and bucket by destination for the next
        round.  Messages still in flight when the last round ends are
        dropped on the floor identically in both layouts (they were never
        delivered, so they cannot affect the digest).

        With ``rebalance=True`` each barrier additionally examines the
        shard load vector (:meth:`_pick_steal`) and migrates at most one
        machine from the slowest shard to the fastest before the next
        round — snapshots and digests are unaffected because machine
        evolution is placement-independent.
        """
        if rounds < 1:
            raise SimulationError(f"need at least one round, got {rounds}")
        if tick <= 0:
            raise SimulationError(f"tick must be positive, got {tick}")
        routed = 0
        inbox: dict[int, list[Message]] = {}
        for r in range(1, rounds + 1):
            t = r * tick
            gathered: list[Message] = []
            if self._inline is not None:
                for mid in range(self.machines):
                    machine = self._inline[mid]
                    delivery = inbox.get(mid)
                    if delivery:
                        machine.deliver(delivery)
                    gathered.extend(machine.run_until(t))
            else:
                for pipe, ids in zip(self._pipes, self._shard_ids):
                    pipe.send(
                        ("round", t, {mid: inbox[mid] for mid in ids if mid in inbox})
                    )
                loads: list[float] = []
                weights: list[dict[int, int]] = []
                for pipe in self._pipes:
                    out, wall, events = pipe.recv()
                    gathered.extend(out)
                    loads.append(
                        wall if self.balance_on == "wall" else float(sum(events.values()))
                    )
                    weights.append(events)
                if self.rebalance and r < rounds:
                    steal = self._pick_steal(loads, weights)
                    if steal is not None:
                        self._migrate(*steal)
            # The exchange: a single global sort makes delivery order a
            # pure function of the message set, not of the shard layout.
            gathered.sort(key=lambda m: (m[0], m[1], m[2]))
            inbox = {}
            for message in gathered:
                inbox.setdefault(message[3], []).append(message)
            routed += len(gathered)
        if self._inline is not None:
            snapshots = [self._inline[mid].snapshot() for mid in range(self.machines)]
        else:
            snapshots = []
            for pipe in self._pipes:
                pipe.send(("finish",))
            for pipe in self._pipes:
                snapshots.extend(pipe.recv())
        result = ShardResult(snapshots, routed, self.shards, self.migrations)
        return result
