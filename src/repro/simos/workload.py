"""Load-pattern generators for the calibration and isolation experiments.

The paper's section 9.6 drives the calibration test with a synthetic disk
load: "The burst times fluctuated between 10 seconds and 15 minutes,
separated by similarly fluctuating idle periods.  The mean load varied in a
sinusoidal pattern to simulate a diurnally cyclical pattern of system
activity."  :func:`bursty_schedule` generates exactly that shape; the dummy
load applications in :mod:`repro.apps.dummyload` replay the schedule.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["Burst", "bursty_schedule", "busy_fraction", "is_busy"]


@dataclass(frozen=True, slots=True)
class Burst:
    """One busy interval of a load schedule."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the burst, in seconds."""
        return self.end - self.start


def _log_uniform(rng: random.Random, lo: float, hi: float) -> float:
    """Sample log-uniformly in [lo, hi] — bursts of all scales occur."""
    return math.exp(rng.uniform(math.log(lo), math.log(hi)))


def bursty_schedule(
    total_time: float,
    seed: int = 0,
    burst_range: tuple[float, float] = (10.0, 900.0),
    diurnal_period: float = 86_400.0,
    base_duty: float = 0.5,
    diurnal_amplitude: float = 0.4,
    start_busy: bool = True,
) -> list[Burst]:
    """Generate a bursty, diurnally modulated busy/idle schedule.

    Burst durations are log-uniform over ``burst_range`` (the paper's 10 s
    to 15 min).  Each burst is followed by an idle period sized so that the
    *local* duty cycle matches the diurnal target
    ``base_duty + diurnal_amplitude * sin(2*pi*t / diurnal_period)``,
    clamped to [0.05, 0.95].  With ``start_busy`` the schedule opens with a
    burst — the paper starts its defragmenter "during a continuous burst of
    disk activity" to exercise the worst-case calibration start.
    """
    if total_time <= 0:
        raise ValueError(f"total_time must be positive, got {total_time}")
    if not 0.0 < base_duty < 1.0:
        raise ValueError(f"base_duty must be in (0, 1), got {base_duty}")
    lo, hi = burst_range
    if not 0 < lo <= hi:
        raise ValueError(f"invalid burst_range {burst_range}")
    rng = random.Random(seed)
    bursts: list[Burst] = []
    t = 0.0
    if not start_busy:
        t = _log_uniform(rng, lo, hi)
    while t < total_time:
        duration = _log_uniform(rng, lo, hi)
        burst = Burst(t, min(t + duration, total_time))
        bursts.append(burst)
        duty = base_duty + diurnal_amplitude * math.sin(
            2.0 * math.pi * burst.start / diurnal_period
        )
        duty = min(max(duty, 0.05), 0.95)
        idle = duration * (1.0 - duty) / duty
        t = burst.end + idle
    return bursts


def is_busy(bursts: list[Burst], when: float) -> bool:
    """Whether the schedule is in a busy interval at time ``when``."""
    for burst in bursts:
        if burst.start <= when < burst.end:
            return True
        if burst.start > when:
            break
    return False


def busy_fraction(bursts: list[Burst], start: float, end: float) -> float:
    """Fraction of [start, end] covered by busy intervals."""
    if end <= start:
        return 0.0
    covered = 0.0
    for burst in bursts:
        lo = max(burst.start, start)
        hi = min(burst.end, end)
        if hi > lo:
            covered += hi - lo
        if burst.start >= end:
            break
    return covered / (end - start)
