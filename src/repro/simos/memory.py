"""Physical-memory model exhibiting the paper's section-3 asymmetry.

"One noteworthy example of resource asymmetry is physical memory.  If the
combined memory requirement of two processes exceeds the available
physical memory, operating systems tend to drastically favor one process
over another, in order to avoid page thrashing.  This is reasonable
behavior, but it invalidates our key assumption for this important
resource."

:class:`MemoryManager` models exactly that policy: each process declares a
working set; while the working sets fit in physical memory everyone hits;
under oversubscription the *favored* processes (first-registered by
default, like a long-resident service protected by a thrash-avoidance
policy) keep their full residency and the others eat page faults.

Simulated threads yield :class:`TouchMemory` effects; a fault costs a
disk-like delay.  The regression test built on this module demonstrates
the paper's limitation honestly: a favored low-importance process can
thrash a high-importance process without its own progress rate dropping,
so progress-based regulation never engages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.simos.effects import Effect
from repro.simos.engine import SimulationError
from repro.simos.wheel import EventCore
from repro.simos.kernel import Kernel, SimThread

__all__ = ["TouchMemory", "MemoryManager"]


@dataclass(frozen=True, slots=True)
class TouchMemory(Effect):
    """Touch ``pages`` pages of the calling thread's process working set."""

    pages: int = 1


class MemoryManager:
    """Page frames shared by declared working sets, with favoritism.

    Register with the kernel via :meth:`attach`; afterwards any thread may
    yield :class:`TouchMemory`.
    """

    __slots__ = (
        "_engine",
        "frames",
        "fault_service",
        "_rng",
        "_working_sets",
        "faults",
        "touches",
    )

    def __init__(
        self,
        engine: EventCore,
        frames: int,
        fault_service: float = 0.008,
        seed: int = 0,
    ) -> None:
        if frames <= 0:
            raise SimulationError(f"frames must be positive, got {frames}")
        if fault_service <= 0:
            raise SimulationError(f"fault_service must be positive, got {fault_service}")
        self._engine = engine
        self.frames = frames
        self.fault_service = fault_service
        self._rng = random.Random(seed)
        #: process -> declared working-set pages, in registration order.
        self._working_sets: dict[str, int] = {}
        self.faults: dict[str, int] = {}
        self.touches: dict[str, int] = {}

    # -- configuration --------------------------------------------------------
    def declare(self, process: str, working_set: int) -> None:
        """Declare (or update) a process's working-set size in pages."""
        if working_set <= 0:
            raise SimulationError(f"working set must be positive, got {working_set}")
        self._working_sets[process] = working_set
        self.faults.setdefault(process, 0)
        self.touches.setdefault(process, 0)

    def attach(self, kernel: Kernel) -> None:
        """Register the TouchMemory effect handler with a kernel."""
        kernel.register_handler(TouchMemory, self._make_handler(kernel))

    # -- policy -----------------------------------------------------------------
    def residency(self, process: str) -> float:
        """Fraction of the process's working set that is resident [0, 1].

        Favoritism: earlier-registered processes are served first from the
        frame pool (the OS protects the long-resident process to avoid
        global thrashing); later ones share the remainder.
        """
        if process not in self._working_sets:
            raise SimulationError(f"process {process!r} declared no working set")
        remaining = self.frames
        for name, pages in self._working_sets.items():
            granted = min(pages, max(remaining, 0))
            if name == process:
                return granted / pages
            remaining -= granted
        raise AssertionError("unreachable")  # pragma: no cover

    def fault_probability(self, process: str) -> float:
        """Chance that one touch misses residency."""
        return 1.0 - self.residency(process)

    @property
    def oversubscribed(self) -> bool:
        """Whether declared working sets exceed physical memory."""
        return sum(self._working_sets.values()) > self.frames

    # -- effect handling ------------------------------------------------------------
    def _make_handler(self, kernel: Kernel):
        def handler(thread: SimThread, effect: Effect) -> None:
            assert isinstance(effect, TouchMemory)
            process = thread.process
            p_fault = self.fault_probability(process)
            delay = 0.0
            self.touches[process] = self.touches.get(process, 0) + effect.pages
            for _ in range(effect.pages):
                if self._rng.random() < p_fault:
                    self.faults[process] = self.faults.get(process, 0) + 1
                    delay += self.fault_service
            thread.blocked_on = "memory"
            kernel.engine.post_after(delay, kernel.deliver, thread, None)

        return handler
