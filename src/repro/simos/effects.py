"""The effect vocabulary simulated threads yield to the kernel.

Simulated application code is written as Python generators.  Instead of
calling blocking OS services, a thread *yields* an effect object describing
what it wants; the kernel performs it and resumes the generator with the
result once it completes.  This mirrors how real threads block in system
calls, and gives the simulator complete control over timing::

    def copy_file(kernel, fs, src, dst):
        data_blocks = fs.file_blocks(src)
        for block in data_blocks:
            yield DiskRead(fs.volume, block, fs.block_size)
            yield DiskWrite(fs.volume, block, fs.block_size)
            yield UseCPU(0.0001)  # checksum

Effects are plain frozen dataclasses; the kernel dispatches on their type.
New effects (like the MS Manners testpoint in
:mod:`repro.simos.sim_manners`) can be registered without touching the
kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "Effect",
    "Delay",
    "UseCPU",
    "DiskRead",
    "DiskWrite",
    "WaitCondition",
    "SignalCondition",
    "Condition",
    "Yield",
]


class Effect:
    """Base class for everything a simulated thread can yield."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Delay(Effect):
    """Sleep for ``seconds`` of simulated time (no resource use)."""

    seconds: float


@dataclass(frozen=True, slots=True)
class UseCPU(Effect):
    """Consume ``seconds`` of CPU *service* time.

    Actual elapsed time depends on contention and the thread's CPU
    priority: the simulated CPU is strict-priority with round-robin
    time-slicing within a level, so a low-priority thread's burst stretches
    whenever higher-priority threads are runnable.
    """

    seconds: float


@dataclass(frozen=True, slots=True)
class DiskRead(Effect):
    """Read ``nbytes`` starting at logical ``block`` of disk ``disk``.

    ``disk`` names a disk registered with the kernel.  Completion time
    includes queueing (FCFS), seek, rotational latency, and transfer over
    the (possibly shared) bus.
    """

    disk: str
    block: int
    nbytes: int


@dataclass(frozen=True, slots=True)
class DiskWrite(Effect):
    """Write ``nbytes`` starting at logical ``block`` of disk ``disk``."""

    disk: str
    block: int
    nbytes: int


class Condition:
    """A waitable pulse, like a condition variable without the lock.

    Threads yield :class:`WaitCondition` to block on it and
    :class:`SignalCondition` (or call :meth:`Condition` helpers from
    non-thread code via the kernel) to wake waiters.  Each signal carries an
    optional payload delivered as the result of the wait.
    """

    __slots__ = ("name", "waiters")

    def __init__(self, name: str = "condition") -> None:
        self.name = name
        #: Threads currently blocked on this condition (kernel-managed).
        self.waiters: list[Any] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Condition({self.name!r}, waiters={len(self.waiters)})"


@dataclass(frozen=True, slots=True)
class WaitCondition(Effect):
    """Block until the condition is signalled; resumes with the payload."""

    condition: Condition


@dataclass(frozen=True, slots=True)
class SignalCondition(Effect):
    """Wake waiters on a condition and continue immediately.

    ``broadcast`` wakes every current waiter; otherwise only the longest
    waiting one.  ``payload`` is delivered to each woken thread.
    """

    condition: Condition
    payload: Any = None
    broadcast: bool = False


@dataclass(frozen=True, slots=True)
class Yield(Effect):
    """Reschedule immediately: let same-time events interleave.

    Useful in tight loops that perform no simulated work but must not
    monopolize the event queue.
    """
