"""Simulated OS kernel: threads, effect dispatch, and the debug interface.

Simulated application code is written as Python generators yielding
:mod:`repro.simos.effects` objects.  The kernel owns the event engine, one
CPU, any number of disks (optionally sharing a bus), and the thread
lifecycle.  Code between two yields executes in zero simulated time; all
simulated cost flows through effects.

The kernel also exposes the *debug interface* of the paper's section 7.2:
:meth:`Kernel.suspend_thread` and :meth:`Kernel.resume_thread` stop and
restart a thread externally at an arbitrary point, exactly as BeNice does to
unmodified Windows applications via ``SuspendThread``.  A suspended thread
stops consuming CPU immediately; in-flight disk requests complete (the
device does not care) but their completions are parked until resume.

Listeners can subscribe to thread lifecycle events (spawn, block, run,
suspend, resume, exit) to build the execution-duty traces behind the
paper's Figures 7 and 9.

For the fault-injection harness (:mod:`repro.faults`) the kernel also
exposes crash and I/O-failure hooks: :meth:`Kernel.kill_thread` terminates
a thread externally at an arbitrary point (including mid-suspension), and
:meth:`Kernel.inject_disk_fault` makes the next N requests to a disk fail
with :class:`DiskFault` delivered into the issuing thread.
"""

from __future__ import annotations

import enum
import os
from typing import Any, Callable, Generator, Iterable

from repro.simos.bus import Bus
from repro.simos.cpu import CPU, CpuPriority
from repro.simos.disk import Disk, DiskParams
from repro.simos.effects import (
    Condition,
    Delay,
    DiskRead,
    DiskWrite,
    Effect,
    SignalCondition,
    UseCPU,
    WaitCondition,
    Yield,
)
from repro.simos.engine import Engine, SimulationError
from repro.simos.wheel import WheelEngine

__all__ = ["ThreadState", "SimThread", "Kernel", "DiskFault", "make_engine"]

#: Event-core registry for :func:`make_engine`.  ``wheel`` is the default:
#: with the sparse ready-band bypass and adaptive resolution it matches the
#: heap on sparse machines (a handful of pending timers) and wins ~2x on
#: dense fleet-scale machines (thousands of concurrent timers, where heap
#: reordering costs O(log n) per event).  ``heap`` remains the escape hatch
#: (``REPRO_ENGINE=heap``) for workloads the cost model mis-serves — see
#: the "when to force heap" table in docs/performance.md.  Both fire
#: identical event sequences — the verify wheel oracle holds them to
#: bit-identical logs.
ENGINE_CORES = {"heap": Engine, "wheel": WheelEngine}


def make_engine(core: str | None = None):
    """Build an event core from a spec: ``wheel`` (default) or ``heap``.

    ``core=None`` falls back to the ``REPRO_ENGINE`` environment variable,
    then to ``wheel`` — so a whole experiment sweep can be flipped onto
    the heap core without touching call sites.  The wheel accepts an
    optional pinned resolution suffix, ``wheel:<bits>`` (e.g.
    ``REPRO_ENGINE=wheel:10`` for 1/1024 s ticks), which also disables
    the online adaptation exactly as ``WheelEngine(resolution_bits=10)``
    does.
    """
    spec = core or os.environ.get("REPRO_ENGINE") or "wheel"
    name, _, suffix = spec.partition(":")
    try:
        cls = ENGINE_CORES[name]
    except KeyError:
        raise SimulationError(
            f"unknown engine core {spec!r}; choose from {sorted(ENGINE_CORES)}"
        ) from None
    if not suffix:
        return cls()
    if cls is not WheelEngine:
        raise SimulationError(
            f"engine core {name!r} takes no resolution suffix, got {spec!r}"
        )
    try:
        bits = int(suffix)
    except ValueError:
        raise SimulationError(
            f"engine core suffix must be an integer resolution, got {spec!r}"
        ) from None
    return WheelEngine(resolution_bits=bits)


class DiskFault(SimulationError):
    """An injected I/O failure, thrown into the thread that issued the I/O.

    Application threads model error handling by catching this where they
    yield :class:`~repro.simos.effects.DiskRead` /
    :class:`~repro.simos.effects.DiskWrite`; an uncaught fault fails the
    thread like any other exception.
    """

#: Default shared-bus bandwidth: Ultra-Wide SCSI, 40 MB/s.
DEFAULT_BUS_BANDWIDTH = 40_000_000.0

ThreadBody = Generator[Effect, Any, Any]


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    NEW = "new"
    RUNNING = "running"  # executing or runnable (between effects)
    BLOCKED = "blocked"  # waiting on an effect
    DONE = "done"
    FAILED = "failed"


class SimThread:
    """One simulated thread of execution."""

    __slots__ = (
        "tid",
        "name",
        "body",
        "priority",
        "process",
        "state",
        "blocked_on",
        "suspended",
        "_parked",
        "_pending_cpu",
        "_on_done",
        "result",
        "error",
    )

    _next_tid = 1

    def __init__(
        self,
        name: str,
        body: ThreadBody,
        priority: CpuPriority,
        process: str,
    ) -> None:
        self.tid = SimThread._next_tid
        SimThread._next_tid += 1
        self.name = name
        self.body = body
        self.priority = priority
        self.process = process
        self.state = ThreadState.NEW
        #: What the thread is blocked on (for traces): ``"cpu"``,
        #: ``"disk:<name>"``, ``"sleep"``, ``"cond:<name>"``, ``"manners"``...
        self.blocked_on: str | None = None
        #: Debug-interface suspension flag.
        self.suspended = False
        #: Parked effect completion ``(value, exception)`` delivered while
        #: suspended; at most one of the two is meaningful.
        self._parked: tuple[Any, BaseException | None] | None = None
        #: CPU service remaining when suspension evicted a running burst.
        self._pending_cpu: float | None = None
        #: The kernel's completion callback for this thread, built once at
        #: spawn so effect dispatch never allocates a fresh closure.
        self._on_done: Callable[[], None] | None = None
        #: Generator return value once DONE.
        self.result: Any = None
        #: The exception that killed the thread, if FAILED.
        self.error: BaseException | None = None

    @property
    def alive(self) -> bool:
        """Whether the thread can still make progress."""
        return self.state not in (ThreadState.DONE, ThreadState.FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread({self.tid}:{self.name!r}, {self.state.value})"


Listener = Callable[[str, SimThread, float], None]


class Kernel:
    """The simulated machine: engine + CPU + disks + threads."""

    __slots__ = (
        "engine",
        "cpu",
        "bus",
        "disks",
        "_seed",
        "_threads",
        "_listeners",
        "_disk_faults",
        "_handlers",
        "_post_after",
        "_network_links",
    )

    def __init__(
        self,
        seed: int = 0,
        cpu_quantum: float = 0.02,
        bus_bandwidth: float | None = DEFAULT_BUS_BANDWIDTH,
        engine_core: str | None = None,
    ) -> None:
        self.engine = make_engine(engine_core)
        #: Bound hot-path scheduler, cached so effect dispatch skips the
        #: ``self.engine.post_after`` attribute chain on every effect.
        self._post_after = self.engine.post_after
        #: Link registry installed by :func:`repro.simos.network.attach`.
        self._network_links = None
        self.cpu = CPU(self.engine, quantum=cpu_quantum)
        #: The shared I/O bus, or ``None`` for fully independent disks.
        self.bus: Bus | None = (
            Bus(self.engine, bus_bandwidth) if bus_bandwidth else None
        )
        self.disks: dict[str, Disk] = {}
        self._seed = seed
        self._threads: list[SimThread] = []
        self._listeners: list[Listener] = []
        #: Injected I/O failures still pending, per disk name.
        self._disk_faults: dict[str, int] = {}
        self._handlers: dict[type, Callable[[SimThread, Effect], None]] = {
            Delay: self._do_delay,
            UseCPU: self._do_cpu,
            DiskRead: self._do_disk,
            DiskWrite: self._do_disk,
            WaitCondition: self._do_wait,
            SignalCondition: self._do_signal,
            Yield: self._do_yield,
        }

    # -- machine configuration ---------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self.engine.now

    def add_disk(
        self,
        name: str,
        params: DiskParams | None = None,
        shared_bus: bool = True,
    ) -> Disk:
        """Attach a disk; ``shared_bus=False`` gives it a private channel."""
        if name in self.disks:
            raise SimulationError(f"disk {name!r} already exists")
        disk = Disk(
            self.engine,
            name=name,
            params=params,
            bus=self.bus if shared_bus else None,
            seed=self._seed + len(self.disks) + 1,
        )
        self.disks[name] = disk
        return disk

    def register_handler(
        self, effect_type: type, handler: Callable[[SimThread, Effect], None]
    ) -> None:
        """Register a handler for a new effect type (extension point).

        The handler must eventually call :meth:`deliver` for the thread.
        """
        if effect_type in self._handlers:
            raise SimulationError(f"handler for {effect_type.__name__} already set")
        self._handlers[effect_type] = handler

    def add_listener(self, listener: Listener) -> None:
        """Subscribe to thread lifecycle events ``(kind, thread, now)``."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        """Unsubscribe a listener; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # -- thread lifecycle ------------------------------------------------------------
    def spawn(
        self,
        name: str,
        body: ThreadBody,
        priority: CpuPriority = CpuPriority.NORMAL,
        process: str | None = None,
        start_after: float = 0.0,
    ) -> SimThread:
        """Create a thread and schedule its first step."""
        thread = SimThread(name, body, priority, process or name)
        thread._on_done = lambda: self.deliver(thread, None)
        self._threads.append(thread)
        if self._listeners:
            self._notify("spawn", thread)
        self._post_after(start_after, self._first_step, thread)
        return thread

    def threads(self) -> tuple[SimThread, ...]:
        """All threads ever spawned."""
        return tuple(self._threads)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run the simulation; returns the stop time.

        Thread failures surface here: if any thread died of an exception,
        it is re-raised (wrapped) rather than silently swallowed.
        """
        stop = self.engine.run(until=until, max_events=max_events)
        for thread in self._threads:
            if thread.state is ThreadState.FAILED:
                raise SimulationError(
                    f"thread {thread.name!r} failed"
                ) from thread.error
        return stop

    # -- the debug interface (paper section 7.2) ----------------------------------------
    def suspend_thread(self, thread: SimThread) -> None:
        """Externally stop a thread at an arbitrary point (BeNice-style)."""
        if not thread.alive or thread.suspended:
            return
        thread.suspended = True
        if thread.blocked_on == "cpu":
            remaining = self.cpu.remove(thread)
            if remaining is not None:
                thread._pending_cpu = remaining
        if self._listeners:
            self._notify("suspend", thread)

    def resume_thread(self, thread: SimThread) -> None:
        """Undo :meth:`suspend_thread`; parked completions are delivered."""
        if not thread.alive or not thread.suspended:
            return
        thread.suspended = False
        if self._listeners:
            self._notify("unsuspend", thread)
        if thread._pending_cpu is not None:
            remaining = thread._pending_cpu
            thread._pending_cpu = None
            self.cpu.request(
                thread, remaining, int(thread.priority), thread._on_done
            )
        elif thread._parked is not None:
            value, exc = thread._parked
            thread._parked = None
            self._post_after(0.0, self._advance, thread, value, exc)

    def kill_thread(
        self, thread: SimThread, error: BaseException | None = None
    ) -> None:
        """Externally terminate a thread at an arbitrary point.

        The crash-injection counterpart of :meth:`suspend_thread`: works on
        running, blocked, and suspended threads alike (crashing a thread
        mid-suspension is the interesting robustness case — its supervisor
        must still learn of the exit and free its slot).  The generator is
        closed so ``finally`` blocks run; the thread ends ``DONE`` with
        ``error`` recorded, and listeners see a normal ``exit`` event.
        """
        if not thread.alive:
            return
        if thread.blocked_on == "cpu" and not thread.suspended:
            self.cpu.remove(thread)
        thread.suspended = False
        thread._parked = None
        thread._pending_cpu = None
        try:
            thread.body.close()
        except Exception:
            # A generator refusing to die is its own bug; the kill wins.
            pass
        thread.state = ThreadState.DONE
        thread.error = error
        thread.blocked_on = None
        if self._listeners:
            self._notify("exit", thread)

    def inject_disk_fault(self, disk: str, count: int = 1) -> None:
        """Fail the next ``count`` I/O requests submitted to ``disk``.

        Each faulted request delivers a :class:`DiskFault` into the issuing
        thread instead of performing the I/O.
        """
        if disk not in self.disks:
            raise SimulationError(f"no such disk {disk!r}")
        if count < 1:
            raise SimulationError(f"fault count must be >= 1, got {count}")
        self._disk_faults[disk] = self._disk_faults.get(disk, 0) + count

    # -- effect completion ----------------------------------------------------------------
    def deliver(self, thread: SimThread, value: Any) -> None:
        """Complete the thread's outstanding effect with ``value``.

        Extension handlers call this when their effect finishes.  Delivery
        to a suspended thread parks until resume; delivery to a dead thread
        is dropped.
        """
        if not thread.alive:
            return
        if thread.suspended:
            thread._parked = (value, None)
            return
        self._advance(thread, value)

    def deliver_error(self, thread: SimThread, exc: BaseException) -> None:
        """Complete the thread's outstanding effect by raising ``exc`` in it.

        The error-path twin of :meth:`deliver`: the exception is thrown at
        the thread's current yield point.  Same parking semantics —
        delivery to a suspended thread waits for resume, delivery to a
        dead thread is dropped.
        """
        if not thread.alive:
            return
        if thread.suspended:
            thread._parked = (None, exc)
            return
        self._advance(thread, None, exc)

    # -- internals ------------------------------------------------------------------------
    def _first_step(self, thread: SimThread) -> None:
        if thread.suspended:
            thread._parked = (None, None)
            return
        self._advance(thread, None)

    def _advance(
        self, thread: SimThread, value: Any, exc: BaseException | None = None
    ) -> None:
        if not thread.alive:
            return
        listeners = self._listeners
        thread.state = ThreadState.RUNNING
        thread.blocked_on = None
        if listeners:
            self._notify("run", thread)
        try:
            if exc is not None:
                effect = thread.body.throw(exc)
            else:
                effect = thread.body.send(value)
        except StopIteration as stop:
            thread.state = ThreadState.DONE
            thread.result = stop.value
            if listeners:
                self._notify("exit", thread)
            return
        except Exception as exc:  # Deliberate: capture app bugs, fail loudly in run().
            thread.state = ThreadState.FAILED
            thread.error = exc
            if listeners:
                self._notify("exit", thread)
            return
        handler = self._handlers.get(type(effect))
        if handler is None:
            thread.state = ThreadState.FAILED
            thread.error = SimulationError(f"unknown effect {effect!r}")
            if listeners:
                self._notify("exit", thread)
            return
        thread.state = ThreadState.BLOCKED
        handler(thread, effect)
        if listeners:
            self._notify("block", thread)

    def _notify(self, kind: str, thread: SimThread) -> None:
        now = self.engine.now
        for listener in self._listeners:
            listener(kind, thread, now)

    # -- built-in effect handlers ---------------------------------------------------------
    def _do_delay(self, thread: SimThread, effect: Delay) -> None:
        if effect.seconds < 0:
            raise SimulationError(f"cannot sleep for {effect.seconds}")
        thread.blocked_on = "sleep"
        self._post_after(effect.seconds, self.deliver, thread, None)

    def _do_cpu(self, thread: SimThread, effect: UseCPU) -> None:
        thread.blocked_on = "cpu"
        self.cpu.request(
            thread, effect.seconds, int(thread.priority), thread._on_done
        )

    def _do_disk(self, thread: SimThread, effect: DiskRead | DiskWrite) -> None:
        disk = self.disks.get(effect.disk)
        if disk is None:
            raise SimulationError(f"no such disk {effect.disk!r}")
        kind = "read" if isinstance(effect, DiskRead) else "write"
        thread.blocked_on = f"disk:{effect.disk}"
        pending_faults = self._disk_faults.get(effect.disk, 0)
        if pending_faults > 0:
            if pending_faults == 1:
                del self._disk_faults[effect.disk]
            else:
                self._disk_faults[effect.disk] = pending_faults - 1
            self._post_after(
                0.0,
                self.deliver_error,
                thread,
                DiskFault(f"injected {kind} failure on disk {effect.disk!r}"),
            )
            return
        disk.submit(kind, effect.block, effect.nbytes, thread._on_done)

    def _do_wait(self, thread: SimThread, effect: WaitCondition) -> None:
        thread.blocked_on = f"cond:{effect.condition.name}"
        effect.condition.waiters.append(thread)

    def _do_signal(self, thread: SimThread, effect: SignalCondition) -> None:
        condition = effect.condition
        if condition.waiters:
            if effect.broadcast:
                woken: Iterable[SimThread] = tuple(condition.waiters)
                condition.waiters.clear()
            else:
                woken = (condition.waiters.pop(0),)
            for waiter in woken:
                self._post_after(0.0, self.deliver, waiter, effect.payload)
        # The signalling thread continues immediately (next event tick).
        thread.blocked_on = "signal"
        self._post_after(0.0, self.deliver, thread, None)

    def _do_yield(self, thread: SimThread, effect: Yield) -> None:
        thread.blocked_on = "yield"
        self._post_after(0.0, self.deliver, thread, None)

    def signal(self, condition: Condition, payload: Any = None, broadcast: bool = False) -> None:
        """Signal a condition from non-thread code (timers, externals)."""
        if not condition.waiters:
            return
        if broadcast:
            woken = tuple(condition.waiters)
            condition.waiters.clear()
        else:
            woken = (condition.waiters.pop(0),)
        for waiter in woken:
            self._post_after(0.0, self.deliver, waiter, payload)
