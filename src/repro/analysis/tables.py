"""Plain-text rendering of the figures' data (tables and series).

The benchmarks print the same rows and series the paper plots — medians,
quartiles, whiskers, and outlier counts per configuration for the box-plot
figures, and ``(x, y)`` series for the trace figures — so paper-vs-measured
comparisons can be read straight off the benchmark output (and are recorded
in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.stats import BoxStats

__all__ = ["format_box_table", "format_series", "format_ratio_line"]


def format_box_table(
    title: str,
    rows: Mapping[str, BoxStats],
    unit: str = "s",
    baseline: str | None = None,
) -> str:
    """Render one box-plot figure as an aligned text table.

    ``baseline`` names the row against which relative medians are shown
    (the paper's "not running" control); its own row shows 1.00x.
    """
    header = (
        f"{'configuration':<24} {'median':>9} {'lo-q':>9} {'hi-q':>9} "
        f"{'whisk-lo':>9} {'whisk-hi':>9} {'outliers':>8} {'rel':>8}"
    )
    lines = [title, "=" * len(title), header, "-" * len(header)]
    base_median = rows[baseline].median if baseline is not None else None
    for name, stats in rows.items():
        rel = ""
        if base_median:
            rel = f"{stats.median / base_median:7.2f}x"
        lines.append(
            f"{name:<24} {stats.median:>8.1f}{unit} {stats.lower_quartile:>8.1f}{unit} "
            f"{stats.upper_quartile:>8.1f}{unit} {stats.whisker_low:>8.1f}{unit} "
            f"{stats.whisker_high:>8.1f}{unit} {len(stats.outliers):>8d} {rel:>8}"
        )
    return "\n".join(lines)


def format_series(
    title: str,
    series: Sequence[tuple[float, float]],
    x_label: str = "t",
    y_label: str = "y",
    max_points: int = 40,
) -> str:
    """Render an (x, y) series compactly, down-sampling long ones."""
    lines = [title, "=" * len(title), f"{x_label:>12} {y_label:>12}"]
    if not series:
        lines.append("(empty series)")
        return "\n".join(lines)
    step = max(1, len(series) // max_points)
    for i in range(0, len(series), step):
        x, y = series[i]
        lines.append(f"{x:>12.1f} {y:>12.3f}")
    if step > 1:
        lines.append(f"({len(series)} points, showing every {step}th)")
    return "\n".join(lines)


def format_ratio_line(name: str, measured: float, paper: float, unit: str = "") -> str:
    """One paper-vs-measured comparison line."""
    return (
        f"{name:<40} measured={measured:10.3f}{unit}  paper={paper:10.3f}{unit}  "
        f"ratio={measured / paper if paper else float('nan'):6.2f}"
    )
