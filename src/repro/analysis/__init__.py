"""Experiment post-processing: box-plot statistics, tables, trial harness."""

from repro.analysis.ascii_plot import sparkline, timeseries_plot
from repro.analysis.parallel import (
    ParallelRunner,
    TrialCache,
    TrialEnvelope,
    code_fingerprint,
    config_fingerprint,
    resolve_jobs,
)
from repro.analysis.runner import aggregate, run_trials, trial_count
from repro.analysis.stats import BoxStats, box_stats, median, quartiles
from repro.analysis.tables import format_box_table, format_ratio_line, format_series

__all__ = [
    "BoxStats",
    "ParallelRunner",
    "TrialCache",
    "TrialEnvelope",
    "aggregate",
    "box_stats",
    "code_fingerprint",
    "config_fingerprint",
    "format_box_table",
    "format_ratio_line",
    "format_series",
    "median",
    "quartiles",
    "resolve_jobs",
    "run_trials",
    "sparkline",
    "timeseries_plot",
    "trial_count",
]
