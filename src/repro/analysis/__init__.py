"""Experiment post-processing: box-plot statistics, tables, trial harness."""

from repro.analysis.ascii_plot import sparkline, timeseries_plot
from repro.analysis.runner import aggregate, run_trials, trial_count
from repro.analysis.stats import BoxStats, box_stats, median, quartiles
from repro.analysis.tables import format_box_table, format_ratio_line, format_series

__all__ = [
    "BoxStats",
    "aggregate",
    "box_stats",
    "format_box_table",
    "format_ratio_line",
    "format_series",
    "median",
    "quartiles",
    "run_trials",
    "sparkline",
    "timeseries_plot",
    "trial_count",
]
