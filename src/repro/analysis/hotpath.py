"""Event-core hot-path microbenchmarks (shared by pytest and ``repro bench``).

The simulator's inner loop is ``post_after`` → event store → dispatch
(docs/performance.md).  This module drives that loop directly — no kernel,
no devices — so its throughput numbers isolate the event core itself.
Every workload runs against a named core from
:data:`repro.simos.kernel.ENGINE_CORES` (binary heap or hierarchical
timing wheel), and each report compares the two side by side:

* **post chain** (``engine_hotpath``) — the allocation-free steady-state
  path: each fired event posts the next with ``post_after``.  A single
  sparse chain keeps the store tiny, which is the heap's best case.
* **call chain** — the same chain through ``call_after``, measuring the
  cancellable-handle overhead (the rare path).
* **cancel churn** — schedule-and-cancel bursts shaped like a long
  regulator suspension, exercising handle cancellation and threshold
  compaction.  ``rounds``/``burst`` are the churn knobs ``repro bench
  engine_hotpath --churn`` exposes.
* **dense fleet** (``engine_wheel``) — thousands of concurrent timer
  chains, the fleet-simulation regime where the store holds thousands of
  live timers at once.  Here the heap pays ``O(log n)`` per op while the
  wheel's slot insert/drain stays ``O(1)``; this report's headline is the
  wheel's throughput, with the heap on the identical workload alongside.
* **sharded fleet** (``engine_sharded``) — :class:`ChainMachine` fleets
  through :class:`~repro.simos.shard.ShardedFleet` barrier rounds,
  measuring aggregate events/s across worker processes and re-checking
  the ``shards=1`` vs ``shards=N`` digest-parity contract every run.
* **sparse chains** (``engine_sparse``) — a handful of live timer
  chains, the near-idle regime that used to be the wheel's worst case
  (per-event slot bookkeeping on a near-empty wheel).  The report is the
  wheel-by-default safety gate: the wheel's sparse throughput must stay
  within the CI band of its committed baseline, with the heap on the
  identical workload alongside.
* **imbalanced shards** (``shard_imbalanced``) — the
  :func:`~repro.simos.shard.skewed_machine` fleet, where round-robin
  placement lands every heavy machine on shard 0.  Runs the fleet with
  and without work-stealing rebalancing and reports the critical-path
  balance gain (deterministic, unlike wall time on a loaded CI box)
  plus the digest-parity proof with migrations in play.

Every run re-checks the optimization's correctness guards: the O(1)
``pending`` counter must equal a full store scan, and compaction must
have bounded the churn store.  A fast-but-wrong engine fails here, not
in CI.
"""

from __future__ import annotations

import time

from repro.simos.engine import Engine

__all__ = [
    "live_entries",
    "live_heap_entries",
    "stored_entries",
    "run_engine_hotpath",
    "run_dense_fleet",
    "run_sparse_chains",
    "engine_hotpath_report",
    "engine_wheel_report",
    "engine_sharded_report",
    "engine_sparse_report",
    "shard_imbalanced_report",
]


def live_entries(engine) -> int:
    """Count live stored events the slow way, for either core.

    Heap cores scan ``_heap``; wheel cores walk every band via
    ``_entries()``.  Either way: plain posts plus uncancelled handles.
    """
    heap = getattr(engine, "_heap", None)
    entries = heap if heap is not None else engine._entries()
    return sum(1 for h in entries if h.__class__ is tuple or not h.cancelled)


#: Historical name from when the heap was the only core.
live_heap_entries = live_entries


def stored_entries(engine) -> int:
    """Total stored entries (live + stale), for either core."""
    heap = getattr(engine, "_heap", None)
    if heap is not None:
        return len(heap)
    return sum(1 for _ in engine._entries())


def _make(engine_core: str):
    from repro.simos.kernel import make_engine

    return make_engine(engine_core)


def _run_post_chain(events: int, engine_core: str = "heap"):
    """Fire a chain of handle-free posts: the steady-state dispatch path."""
    engine = _make(engine_core)
    post_after = engine.post_after

    def tick(n):
        if n > 0:
            post_after(1.0, tick, n - 1)

    engine.post_at(0.0, tick, events - 1)
    engine.run()
    return engine


def _run_call_chain(events: int, engine_core: str = "heap"):
    """The same chain through cancellable handles (the rare path)."""
    engine = _make(engine_core)

    def tick(n):
        if n > 0:
            engine.call_after(1.0, tick, n - 1)

    engine.call_at(0.0, tick, events - 1)
    engine.run()
    return engine


def _run_cancel_churn(rounds: int, burst: int, engine_core: str = "heap"):
    """Schedule-and-cancel churn shaped like regulator suspensions.

    Each round schedules ``burst`` timers, cancels all but one, and lets
    the survivor fire — cancelled entries continuously dominate fresh
    pushes, so the engine's threshold compaction path runs many times.
    """
    engine = _make(engine_core)
    for _ in range(rounds):
        handles = [engine.call_after(float(i + 1), lambda: None) for i in range(burst)]
        for handle in handles[1:]:
            handle.cancel()
        engine.step()
    return engine


def run_dense_fleet(
    chains: int = 4096, hops: int = 96, engine_core: str = "heap", delay: float = 1.0
) -> float:
    """Run ``chains`` concurrent timer chains; return events/s.

    All chains start together and re-arm with the same ``delay``, so the
    store holds ``chains`` live timers for the whole run — the regime a
    fleet of simulated machines produces, and the one the timing wheel
    is built for.
    """
    engine = _make(engine_core)
    post_after = engine.post_after

    def tick(n):
        if n:
            post_after(delay, tick, n - 1)

    for _ in range(chains):
        post_after(0.001, tick, hops)
    events = chains * (hops + 1)
    start = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - start
    assert engine.events_fired == events
    assert engine.pending == 0
    return events / wall


def run_sparse_chains(
    chains: int = 2,
    hops: int = 50_000,
    engine_core: str = "wheel",
    delay: float = 0.05,
) -> float:
    """Run a near-idle workload of ``chains`` timer chains; return events/s.

    With only a couple of live timers the store never grows, so all the
    cost is per-event machinery: heap push/pop for the heap core, the
    ready-band sparse bypass for the wheel.  This is the workload that
    regressed before the bypass existed and the one the wheel-by-default
    flip is gated on.
    """
    engine = _make(engine_core)
    post_after = engine.post_after

    def tick(n):
        if n:
            post_after(delay, tick, n - 1)

    for _ in range(chains):
        post_after(delay, tick, hops)
    events = chains * (hops + 1)
    start = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - start
    assert engine.events_fired == events
    assert engine.pending == 0
    return events / wall


def run_engine_hotpath(
    events: int = 30_000,
    rounds: int = 2_000,
    burst: int = 40,
    engine_core: str = "heap",
) -> dict[str, float]:
    """Run the three chain/churn workloads; return throughput stats.

    Raises ``AssertionError`` if any correctness guard fails — the
    counters and compaction must be invisible except for speed.
    """
    start = time.perf_counter()
    posted = _run_post_chain(events, engine_core)
    post_wall = time.perf_counter() - start

    start = time.perf_counter()
    called = _run_call_chain(events, engine_core)
    call_wall = time.perf_counter() - start

    start = time.perf_counter()
    churn = _run_cancel_churn(rounds, burst, engine_core)
    churn_wall = time.perf_counter() - start
    ops = rounds * burst  # schedules; most are then cancelled

    assert posted.events_fired == events
    assert called.events_fired == events
    assert churn.events_fired == rounds
    # The O(1) counter must agree with a full scan after all that churn.
    for engine in (posted, called, churn):
        assert engine.pending == live_entries(engine)
    # Compaction must have kept the store from retaining the churn.
    assert stored_entries(churn) < ops / 4

    return {
        "post_events_per_sec": events / post_wall,
        "call_events_per_sec": events / call_wall,
        "churn_ops_per_sec": ops / churn_wall,
        "stored_churn_entries": float(stored_entries(churn)),
        "wall_time_s": post_wall + call_wall + churn_wall,
    }


def engine_hotpath_report(
    events: int = 200_000, rounds: int = 4_000, burst: int = 40, repeats: int = 3
) -> dict:
    """Best-of-``repeats`` stats as a ``BENCH_engine_hotpath.json`` payload.

    ``events_per_sec`` (the key the CI perf gate compares) is the heap
    core's post chain — the allocation-free path steady-state simulation
    dispatches through.  The wheel core runs the identical workloads and
    its numbers ride along (``wheel_*``) so both cores stay visible in
    one report; the wheel's own gated headline is ``engine_wheel``.
    """
    from repro.analysis.parallel import code_fingerprint

    best: dict[str, float] = {}
    wall = 0.0
    for _ in range(max(1, repeats)):
        for core in ("heap", "wheel"):
            stats = run_engine_hotpath(
                events=events, rounds=rounds, burst=burst, engine_core=core
            )
            wall += stats["wall_time_s"]
            prefix = "" if core == "heap" else "wheel_"
            for key, value in stats.items():
                if key in ("stored_churn_entries", "wall_time_s"):
                    continue
                name = prefix + key
                best[name] = max(best.get(name, 0.0), value)
    return {
        "name": "engine_hotpath",
        "kind": "micro",
        "events": events,
        "rounds": rounds,
        "burst": burst,
        "repeats": repeats,
        "events_per_sec": round(best["post_events_per_sec"]),
        "post_events_per_sec": round(best["post_events_per_sec"]),
        "call_events_per_sec": round(best["call_events_per_sec"]),
        "churn_ops_per_sec": round(best["churn_ops_per_sec"]),
        "wheel_post_events_per_sec": round(best["wheel_post_events_per_sec"]),
        "wheel_call_events_per_sec": round(best["wheel_call_events_per_sec"]),
        "wheel_churn_ops_per_sec": round(best["wheel_churn_ops_per_sec"]),
        "wall_time_s": round(wall, 4),
        "code_fingerprint": code_fingerprint(),
    }


def engine_wheel_report(
    chains: int = 4096, hops: int = 96, repeats: int = 5
) -> dict:
    """Dense-fleet throughput, wheel vs heap, as ``BENCH_engine_wheel.json``.

    ``events_per_sec`` is the wheel core on the dense workload — the
    number the CI perf gate holds against the committed baseline.  The
    heap runs the identical workload for the side-by-side
    ``speedup_vs_heap`` (the heap gets fewer repeats; it is the slow
    reference, not the gated subject).
    """
    from repro.analysis.parallel import code_fingerprint

    start = time.perf_counter()
    wheel = max(
        run_dense_fleet(chains, hops, "wheel") for _ in range(max(1, repeats))
    )
    heap = max(
        run_dense_fleet(chains, hops, "heap")
        for _ in range(max(1, min(repeats, 3)))
    )
    wall = time.perf_counter() - start
    return {
        "name": "engine_wheel",
        "kind": "micro",
        "chains": chains,
        "hops": hops,
        "repeats": repeats,
        "events_per_sec": round(wheel),
        "heap_events_per_sec": round(heap),
        "speedup_vs_heap": round(wheel / heap, 2),
        "wall_time_s": round(wall, 4),
        "code_fingerprint": code_fingerprint(),
    }


def engine_sharded_report(
    machines: int = 8,
    shards: int | None = None,
    rounds: int = 8,
    chains: int = 512,
    seed: int = 0,
    repeats: int = 2,
) -> dict:
    """Sharded-fleet aggregate throughput as ``BENCH_engine_sharded.json``.

    Runs the :class:`ChainMachine` fleet twice per repeat — inline
    (``shards=1``) and sharded — and asserts the two digests match, so
    the determinism contract is re-proven on every benchmark run, not
    just in the test suite.  ``events_per_sec`` is the sharded layout's
    aggregate dispatch rate (barrier exchange included, machine
    construction excluded).
    """
    from functools import partial

    from repro.analysis.parallel import code_fingerprint, resolve_shards
    from repro.simos.shard import ChainMachine, ShardedFleet

    shards = resolve_shards(shards, machines=machines, default=2)
    make_machine = partial(ChainMachine, chains=chains)
    serial_best = sharded_best = 0.0
    digests: tuple[str, str] = ("", "")
    events_fired = messages_routed = 0
    start = time.perf_counter()
    for _ in range(max(1, repeats)):
        inline = ShardedFleet(machines, make_machine, shards=1, seed=seed)
        t0 = time.perf_counter()
        serial = inline.run(rounds)
        serial_best = max(serial_best, serial.events_fired / (time.perf_counter() - t0))
        with ShardedFleet(machines, make_machine, shards=shards, seed=seed) as fleet:
            t0 = time.perf_counter()
            result = fleet.run(rounds)
            sharded_best = max(
                sharded_best, result.events_fired / (time.perf_counter() - t0)
            )
        digests = (serial.digest, result.digest)
        assert digests[0] == digests[1], (
            f"shard digest parity broken: shards=1 {digests[0]} "
            f"!= shards={shards} {digests[1]}"
        )
        events_fired = result.events_fired
        messages_routed = result.messages_routed
    wall = time.perf_counter() - start
    return {
        "name": "engine_sharded",
        "kind": "micro",
        "machines": machines,
        "shards": shards,
        "rounds": rounds,
        "chains": chains,
        "seed": seed,
        "repeats": repeats,
        "events_per_sec": round(sharded_best),
        "serial_events_per_sec": round(serial_best),
        "parallel_speedup": round(sharded_best / serial_best, 2),
        "events_fired": events_fired,
        "messages_routed": messages_routed,
        "parity_ok": digests[0] == digests[1],
        "digest": digests[0],
        "wall_time_s": round(wall, 4),
        "code_fingerprint": code_fingerprint(),
    }


def engine_sparse_report(
    chains: int = 2, hops: int = 100_000, repeats: int = 3
) -> dict:
    """Sparse-chain throughput, wheel vs heap, as ``BENCH_engine_sparse.json``.

    ``events_per_sec`` is the wheel core (the default engine) on the
    near-idle workload — the number the CI perf gate holds against the
    committed baseline so the wheel-by-default flip can never silently
    regress the sparse regime.  The heap runs the identical workload and
    rides along as ``heap_events_per_sec`` with the ``vs_heap`` ratio.
    """
    from repro.analysis.parallel import code_fingerprint

    start = time.perf_counter()
    wheel = max(
        run_sparse_chains(chains, hops, "wheel") for _ in range(max(1, repeats))
    )
    heap = max(
        run_sparse_chains(chains, hops, "heap") for _ in range(max(1, repeats))
    )
    wall = time.perf_counter() - start
    return {
        "name": "engine_sparse",
        "kind": "micro",
        "chains": chains,
        "hops": hops,
        "repeats": repeats,
        "events_per_sec": round(wheel),
        "heap_events_per_sec": round(heap),
        "vs_heap": round(wheel / heap, 2),
        "wall_time_s": round(wall, 4),
        "code_fingerprint": code_fingerprint(),
    }


def _placement_imbalance(snapshots: list[dict], shard_ids: list[list[int]]) -> float:
    """Critical-path ratio of a placement: max shard load over mean.

    Computed from the (placement-independent) per-machine fired-event
    counts, so the metric is deterministic even when the placement came
    from wall-clock stealing.  1.0 is perfect balance; with barrier
    stepping the fleet's wall time tracks the slowest shard, so aggregate
    throughput scales with roughly the inverse of this ratio.
    """
    events = {s["machine"]: int(s.get("events_fired", 0)) for s in snapshots}
    loads = [sum(events[mid] for mid in ids) for ids in shard_ids]
    mean = sum(loads) / len(loads)
    return max(loads) / mean if mean > 0 else 1.0


def shard_imbalanced_report(
    machines: int = 16,
    shards: int | None = None,
    rounds: int = 10,
    seed: int = 0,
    repeats: int = 2,
) -> dict:
    """Work-stealing gain on a skewed fleet as ``BENCH_shard_imbalanced.json``.

    Runs the :func:`~repro.simos.shard.skewed_machine` fleet three ways —
    inline (``shards=1``), sharded without rebalancing, and sharded with
    work-stealing — and asserts all three digests match, proving the
    parity contract *with migrations in play*.  ``events_per_sec`` is the
    rebalanced layout's measured aggregate rate (the CI-gated number);
    ``balance_gain`` is the deterministic headline: the critical-path
    imbalance of the static placement over the stolen-to placement, i.e.
    how much shorter the slowest shard's queue got.  Wall-clock speedup
    follows the balance gain only on a multi-core box, so the gate rides
    on the deterministic metric's inputs, not the host's core count.
    """
    from repro.analysis.parallel import code_fingerprint, resolve_shards
    from repro.simos.shard import ShardedFleet, skewed_machine

    shards = resolve_shards(shards, machines=machines, default=4)
    static_best = stolen_best = 0.0
    migrations = 0
    imbalance_static = imbalance_stolen = 1.0
    digests = ("", "", "")
    events_fired = 0
    start = time.perf_counter()
    for _ in range(max(1, repeats)):
        inline = ShardedFleet(machines, skewed_machine, shards=1, seed=seed)
        serial = inline.run(rounds)
        with ShardedFleet(
            machines, skewed_machine, shards=shards, seed=seed
        ) as fleet:
            t0 = time.perf_counter()
            static = fleet.run(rounds)
            static_best = max(
                static_best, static.events_fired / (time.perf_counter() - t0)
            )
            imbalance_static = _placement_imbalance(
                static.snapshots, fleet._shard_ids
            )
        with ShardedFleet(
            machines,
            skewed_machine,
            shards=shards,
            seed=seed,
            rebalance=True,
            balance_on="events",
        ) as fleet:
            t0 = time.perf_counter()
            stolen = fleet.run(rounds)
            stolen_best = max(
                stolen_best, stolen.events_fired / (time.perf_counter() - t0)
            )
            imbalance_stolen = _placement_imbalance(
                stolen.snapshots, fleet._shard_ids
            )
            migrations = stolen.migrations
        digests = (serial.digest, static.digest, stolen.digest)
        assert digests[0] == digests[1] == digests[2], (
            f"shard digest parity broken: shards=1 {digests[0]} vs "
            f"static {digests[1]} vs rebalanced {digests[2]}"
        )
        events_fired = stolen.events_fired
    wall = time.perf_counter() - start
    return {
        "name": "shard_imbalanced",
        "kind": "micro",
        "machines": machines,
        "shards": shards,
        "rounds": rounds,
        "seed": seed,
        "repeats": repeats,
        "events_per_sec": round(stolen_best),
        "static_events_per_sec": round(static_best),
        "migrations": migrations,
        "imbalance_static": round(imbalance_static, 3),
        "imbalance_rebalanced": round(imbalance_stolen, 3),
        "balance_gain": round(imbalance_static / imbalance_stolen, 2),
        "events_fired": events_fired,
        "parity_ok": digests[0] == digests[1] == digests[2],
        "digest": digests[0],
        "wall_time_s": round(wall, 4),
        "code_fingerprint": code_fingerprint(),
    }
