"""Event-core hot-path microbenchmark (shared by pytest and ``repro bench``).

The simulator's inner loop is ``Engine.post_after`` → heap → dispatch
(docs/performance.md).  This module drives that loop directly — no kernel,
no devices — so its throughput numbers isolate the event core itself:

* **post chain** — the allocation-free steady-state path: each fired
  event posts the next with :meth:`Engine.post_after`.  This is the
  headline ``events_per_sec`` the CI perf gate tracks.
* **call chain** — the same chain through :meth:`Engine.call_after`,
  measuring the cancellable-handle overhead (the rare path).
* **cancel churn** — schedule-and-cancel bursts shaped like a long
  regulator suspension, exercising handle cancellation and heap
  compaction.

Every run re-checks the optimization's correctness guards: the O(1)
``pending`` counter must equal a full heap scan, and compaction must have
bounded the churn heap.  A fast-but-wrong engine fails here, not in CI.
"""

from __future__ import annotations

import time

from repro.simos.engine import Engine

__all__ = [
    "live_heap_entries",
    "run_engine_hotpath",
    "engine_hotpath_report",
]


def live_heap_entries(engine: Engine) -> int:
    """Count live heap entries the slow way (plain posts + uncancelled handles)."""
    return sum(
        1 for h in engine._heap if h.__class__ is tuple or not h.cancelled
    )


def _run_post_chain(events: int) -> Engine:
    """Fire a chain of handle-free posts: the steady-state dispatch path."""
    engine = Engine()
    post_after = engine.post_after

    def tick(n):
        if n > 0:
            post_after(1.0, tick, n - 1)

    engine.post_at(0.0, tick, events - 1)
    engine.run()
    return engine


def _run_call_chain(events: int) -> Engine:
    """The same chain through cancellable handles (the rare path)."""
    engine = Engine()

    def tick(n):
        if n > 0:
            engine.call_after(1.0, tick, n - 1)

    engine.call_at(0.0, tick, events - 1)
    engine.run()
    return engine


def _run_cancel_churn(rounds: int, burst: int) -> Engine:
    """Schedule-and-cancel churn shaped like regulator suspensions.

    Each round schedules ``burst`` timers, cancels all but one, and lets
    the survivor fire — cancelled entries continuously dominate fresh
    pushes, so the engine's compaction path runs many times.
    """
    engine = Engine()
    for _ in range(rounds):
        handles = [engine.call_after(float(i + 1), lambda: None) for i in range(burst)]
        for handle in handles[1:]:
            handle.cancel()
        engine.step()
    return engine


def run_engine_hotpath(
    events: int = 30_000, rounds: int = 2_000, burst: int = 40
) -> dict[str, float]:
    """Run the three workloads; return throughput stats.

    Raises ``AssertionError`` if any correctness guard fails — the
    counters and compaction must be invisible except for speed.
    """
    start = time.perf_counter()
    posted = _run_post_chain(events)
    post_wall = time.perf_counter() - start

    start = time.perf_counter()
    called = _run_call_chain(events)
    call_wall = time.perf_counter() - start

    start = time.perf_counter()
    churn = _run_cancel_churn(rounds, burst)
    churn_wall = time.perf_counter() - start
    ops = rounds * burst  # schedules; most are then cancelled

    assert posted.events_fired == events
    assert called.events_fired == events
    assert churn.events_fired == rounds
    # The O(1) counter must agree with a full scan after all that churn.
    for engine in (posted, called, churn):
        assert engine.pending == live_heap_entries(engine)
    # Compaction must have kept the heap from retaining the churn.
    assert len(churn._heap) < ops / 4

    return {
        "post_events_per_sec": events / post_wall,
        "call_events_per_sec": events / call_wall,
        "churn_ops_per_sec": ops / churn_wall,
        "churn_heap_len": float(len(churn._heap)),
        "wall_time_s": post_wall + call_wall + churn_wall,
    }


def engine_hotpath_report(
    events: int = 200_000, rounds: int = 4_000, burst: int = 40, repeats: int = 3
) -> dict:
    """Best-of-``repeats`` stats as a ``BENCH_engine_hotpath.json`` payload.

    ``events_per_sec`` (the key the CI perf gate compares) is the post
    chain — the allocation-free path steady-state simulation dispatches
    through.
    """
    from repro.analysis.parallel import code_fingerprint

    best: dict[str, float] = {}
    for _ in range(max(1, repeats)):
        stats = run_engine_hotpath(events=events, rounds=rounds, burst=burst)
        for key, value in stats.items():
            if key in ("churn_heap_len", "wall_time_s"):
                continue
            best[key] = max(best.get(key, 0.0), value)
    return {
        "name": "engine_hotpath",
        "kind": "micro",
        "events": events,
        "rounds": rounds,
        "burst": burst,
        "repeats": repeats,
        "events_per_sec": round(best["post_events_per_sec"]),
        "post_events_per_sec": round(best["post_events_per_sec"]),
        "call_events_per_sec": round(best["call_events_per_sec"]),
        "churn_ops_per_sec": round(best["churn_ops_per_sec"]),
        "wall_time_s": round(stats["wall_time_s"], 4),
        "code_fingerprint": code_fingerprint(),
    }
