"""Box-plot statistics exactly as the paper defines them (section 9.1).

"The 'waist' in each box indicates the median value, the 'shoulders'
indicate the upper quartile, and the 'hips' indicate the lower quartile.
The vertical line from the top of the box extends to a horizontal bar
indicating the maximum data value less than the upper cutoff, which is the
upper quartile plus 3/2 the height of the box.  Similarly, the line from
the bottom of the box extends to a bar indicating the minimum data value
greater than the lower cutoff ... Data outside the cutoffs is represented
as points."

:func:`box_stats` computes those five numbers plus the outliers, so each
benchmark can report precisely the quantities the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["BoxStats", "box_stats", "median", "quartiles"]


def median(values: Sequence[float]) -> float:
    """Sample median (mean of the middle two for even sizes)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def quartiles(values: Sequence[float]) -> tuple[float, float]:
    """(lower, upper) quartiles by the median-of-halves (Tukey) method."""
    if not values:
        raise ValueError("quartiles of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    if n == 1:
        return ordered[0], ordered[0]
    mid = n // 2
    lower_half = ordered[:mid]
    upper_half = ordered[mid + 1 :] if n % 2 else ordered[mid:]
    return median(lower_half), median(upper_half)


@dataclass(frozen=True)
class BoxStats:
    """One box plot's numbers, per the paper's definition."""

    count: int
    median: float
    lower_quartile: float
    upper_quartile: float
    #: Whisker ends: extreme data within the 1.5-box cutoffs.
    whisker_low: float
    whisker_high: float
    #: Data beyond the cutoffs.
    outliers: tuple[float, ...]
    mean: float

    @property
    def box_height(self) -> float:
        """Inter-quartile range."""
        return self.upper_quartile - self.lower_quartile


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute the paper's box-plot statistics for a sample."""
    if not values:
        raise ValueError("box_stats of empty sequence")
    for v in values:
        if not math.isfinite(v):
            raise ValueError(f"non-finite sample value: {v}")
    ordered = sorted(values)
    med = median(ordered)
    lo_q, hi_q = quartiles(ordered)
    height = hi_q - lo_q
    hi_cut = hi_q + 1.5 * height
    lo_cut = lo_q - 1.5 * height
    inside = [v for v in ordered if lo_cut <= v <= hi_cut]
    outliers = tuple(v for v in ordered if v < lo_cut or v > hi_cut)
    whisker_low = min(inside) if inside else lo_q
    whisker_high = max(inside) if inside else hi_q
    return BoxStats(
        count=len(ordered),
        median=med,
        lower_quartile=lo_q,
        upper_quartile=hi_q,
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
        mean=sum(ordered) / len(ordered),
    )
