"""Named benchmarks for the ``repro bench`` CLI, with machine-readable output.

Each named benchmark runs one contention scenario through the parallel
trial engine and reports performance, not just correctness:

* wall time and trials/sec for the requested ``--jobs`` level;
* a serial (``jobs=1``) reference pass when ``jobs > 1``, giving
  ``speedup_vs_serial`` *and* a parity check — the parallel results must
  equal the serial ones exactly, or the report says so;
* simulator throughput (``events_per_sec``, from the engine's
  ``events_fired`` counters);
* a digest of the trial results, so two runs (e.g. CI's ``--jobs 2`` and
  ``--jobs 1`` passes) can be compared for determinism across processes.

The report is written as ``BENCH_<name>.json`` so the perf trajectory of
the simulator and the harness is tracked from run to run.  Timing passes
always execute trials (cache reads are bypassed — a cache hit would time
the filesystem, not the simulator); fresh results are stored into the
trial cache afterwards unless ``--no-cache`` is given, so subsequent
*sweeps* skip the work.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path

from repro.analysis.parallel import (
    ParallelRunner,
    TrialCache,
    code_fingerprint,
    resolve_jobs,
)
from repro.analysis.runner import trial_count

__all__ = [
    "BenchSpec",
    "BENCHMARKS",
    "MICROBENCHMARKS",
    "run_benchmark",
    "write_report",
]


@dataclass(frozen=True)
class BenchSpec:
    """One named benchmark: a scenario, a regulation mode, and seeds."""

    #: Scenario key in :data:`repro.experiments.MEASURED_SCENARIOS`.
    scenario: str
    #: Regulation mode value (e.g. ``"MS Manners"``).
    mode: str
    #: First seed; trial ``i`` runs with ``seed_base + i``.
    seed_base: int
    #: Default workload scale (overridable via ``REPRO_SCALE``).
    scale: float
    #: One-line description for ``repro bench --list``.
    summary: str


#: The named benchmarks ``repro bench`` can run.
BENCHMARKS: dict[str, BenchSpec] = {
    "defrag_idle": BenchSpec(
        scenario="defrag_idle",
        mode="unregulated",
        seed_base=3000,
        scale=0.05,
        summary="defragmenter alone on an idle machine (Figure 5 scenario)",
    ),
    "defrag_database": BenchSpec(
        scenario="defrag_database",
        mode="MS Manners",
        seed_base=1000,
        scale=0.05,
        summary="regulated defragmenter vs database load (Figure 3 scenario)",
    ),
    "groveler_setup": BenchSpec(
        scenario="groveler_setup",
        mode="MS Manners",
        seed_base=2000,
        scale=0.05,
        summary="regulated Groveler vs installer (Figure 4 scenario)",
    ),
}

#: In-process microbenchmarks (no trial fan-out; one line each for --list).
#: Values are ``(report factory path, summary)``; the factory is resolved
#: lazily from :mod:`repro.analysis.hotpath` so ``--list`` stays cheap.
MICROBENCHMARKS: dict[str, tuple[str, str]] = {
    "engine_hotpath": (
        "engine_hotpath_report",
        "event-core microbench: post/call chains + cancel churn, heap vs wheel",
    ),
    "engine_wheel": (
        "engine_wheel_report",
        "dense-fleet microbench: 4096 concurrent timer chains, wheel vs heap",
    ),
    "engine_sharded": (
        "engine_sharded_report",
        "sharded-fleet bench: ChainMachine barrier rounds + digest parity",
    ),
    "engine_sparse": (
        "engine_sparse_report",
        "sparse-chain microbench: near-idle timer chains, wheel vs heap",
    ),
    "shard_imbalanced": (
        "shard_imbalanced_report",
        "skewed-fleet bench: work-stealing balance gain + digest parity",
    ),
}


def _results_digest(results: list) -> str:
    """Order-sensitive digest of a trial-result list (canonical JSON)."""
    text = json.dumps(results, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def run_benchmark(
    name: str,
    jobs: int | None = None,
    trials: int | None = None,
    scale: float | None = None,
    use_cache: bool = True,
    cache_root: str | Path | None = None,
    micro_args: dict | None = None,
) -> dict:
    """Run the named benchmark; return the ``BENCH_<name>.json`` payload.

    ``jobs`` resolves as explicit > ``REPRO_JOBS`` > all cores; ``trials``
    as explicit > ``REPRO_TRIALS`` > 15.  With ``jobs > 1`` a serial
    reference pass also runs, yielding ``speedup_vs_serial`` and
    ``parity_ok`` (parallel results exactly equal to serial).

    ``micro_args`` are keyword overrides for a microbenchmark's report
    factory (e.g. ``{"rounds": 8000, "burst": 80}`` for the hotpath churn
    knob, or ``{"shards": 4}`` for the sharded fleet); ignored for
    scenario benchmarks.
    """
    from repro.experiments.scenarios import measured_trial

    if name in MICROBENCHMARKS:
        from repro.analysis import hotpath

        factory = getattr(hotpath, MICROBENCHMARKS[name][0])
        return factory(**(micro_args or {}))
    try:
        spec = BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from "
            f"{sorted(BENCHMARKS) + sorted(MICROBENCHMARKS)}"
        ) from None
    jobs = resolve_jobs(jobs)
    n = trials if trials is not None else trial_count()
    scale = scale if scale is not None else spec.scale
    trial = partial(measured_trial, spec.scenario, spec.mode, scale=scale)

    with ParallelRunner(jobs=jobs) as runner:
        start = time.perf_counter()
        results = runner.run(trial, trials=n, seed_base=spec.seed_base)
        wall = time.perf_counter() - start

        serial_wall = None
        speedup = None
        parity_ok = None  # stays null when no serial reference pass ran
        if jobs > 1:
            start = time.perf_counter()
            serial_results = ParallelRunner(jobs=1).run(
                trial, trials=n, seed_base=spec.seed_base
            )
            serial_wall = time.perf_counter() - start
            speedup = serial_wall / wall if wall > 0 else None
            parity_ok = serial_results == results

    events_total = sum(int(r.get("events_fired", 0)) for r in results)
    report = {
        "name": name,
        "scenario": spec.scenario,
        "mode": spec.mode,
        "seed_base": spec.seed_base,
        "scale": scale,
        "trials": n,
        "jobs": jobs,
        "wall_time_s": round(wall, 4),
        "trials_per_sec": round(n / wall, 4) if wall > 0 else None,
        "serial_wall_time_s": round(serial_wall, 4) if serial_wall is not None else None,
        "speedup_vs_serial": round(speedup, 3) if speedup is not None else None,
        "parity_ok": parity_ok,
        "events_total": events_total,
        "events_per_sec": round(events_total / wall) if wall > 0 else None,
        "results_digest": _results_digest(results),
        "code_fingerprint": code_fingerprint(),
        "cached_for_reuse": False,
    }

    if use_cache:
        cache = TrialCache(cache_root) if cache_root is not None else TrialCache()
        cache_name = f"{spec.scenario}:{spec.mode}"
        config = {"scenario": spec.scenario, "mode": spec.mode, "scale": scale}
        for i, value in enumerate(results):
            cache.put(cache_name, cache.key(cache_name, config, spec.seed_base + i), value)
        report["cached_for_reuse"] = True
    return report


def write_report(report: dict, out_dir: str | Path) -> Path:
    """Write ``BENCH_<name>.json`` under ``out_dir``; return the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{report['name']}.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def load_report(name: str, results_dir: str | Path) -> dict:
    """Load ``BENCH_<name>.json`` from ``results_dir``."""
    path = Path(results_dir) / f"BENCH_{name}.json"
    return json.loads(path.read_text(encoding="utf-8"))


#: Hard ceilings on telemetry overhead reports (``BENCH_obs_overhead``),
#: in fractional extra interpreter calls vs the disabled path.  Unlike the
#: drift tolerance below these are absolute: a fresh report at or above a
#: cap fails the gate even if the committed baseline was just as bad.
OVERHEAD_CAPS: dict[str, float] = {
    "null_overhead": 0.02,
    "traced_overhead": 0.05,
}


def compare_reports(
    baseline: dict, fresh: dict, tolerance: float = 0.20
) -> list[str]:
    """Check a fresh report against the committed baseline; return failures.

    Two gated metrics, each allowed to drift ``tolerance`` (a fraction)
    in the *bad* direction only — improvements never fail the gate:

    * ``events_per_sec`` may not drop below ``baseline * (1 - tolerance)``;
    * ``wall_time_s`` may not rise above ``baseline * (1 + tolerance)``,
      compared only when both runs did the same amount of work (same
      ``trials`` and ``jobs``, or a microbench with the same sizing).

    Overhead reports additionally face the absolute :data:`OVERHEAD_CAPS`
    ceilings: those are contract bounds, not drift bounds, so a baseline
    refresh can never ratchet them loose.

    Returns a list of human-readable failure lines (empty = pass).
    """
    failures: list[str] = []
    name = fresh.get("name", "?")

    for key, cap in OVERHEAD_CAPS.items():
        value = fresh.get(key)
        if value is not None and value >= cap:
            failures.append(
                f"{name}: {key} {value:.3%} breaches the hard cap {cap:.0%}"
            )

    base_eps = baseline.get("events_per_sec")
    fresh_eps = fresh.get("events_per_sec")
    if base_eps and fresh_eps is not None:
        floor = base_eps * (1.0 - tolerance)
        if fresh_eps < floor:
            failures.append(
                f"{name}: events/sec regressed {fresh_eps:,.0f} < "
                f"{floor:,.0f} (baseline {base_eps:,.0f} - {tolerance:.0%})"
            )

    same_work = all(
        baseline.get(key) == fresh.get(key)
        for key in (
            "trials",
            "jobs",
            "events",
            "rounds",
            "burst",
            "chains",
            "hops",
            "machines",
            "shards",
            "seed",
            "repeats",
        )
    )
    base_wall = baseline.get("wall_time_s")
    fresh_wall = fresh.get("wall_time_s")
    if same_work and base_wall and fresh_wall is not None:
        ceiling = base_wall * (1.0 + tolerance)
        if fresh_wall > ceiling:
            failures.append(
                f"{name}: wall time regressed {fresh_wall:.3f}s > "
                f"{ceiling:.3f}s (baseline {base_wall:.3f}s + {tolerance:.0%})"
            )
    return failures
