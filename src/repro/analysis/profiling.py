"""``repro profile`` — measure where simulation time (and memory) goes.

The hot-loop optimizations in this tree were found by profiling, not
guessing (docs/performance.md); this module keeps that loop closed.  It
runs one seeded scenario trial under :mod:`cProfile` — and, on request,
:mod:`tracemalloc` — and renders a top-N report keyed to the exact
(scenario, mode, seed, scale) so a hot spot can be re-measured after a
change with the same command line:

    repro profile defrag_database --seed 1000 --top 25
    repro profile defrag_idle --memory

Profiling overhead inflates absolute times; the report is for *ranking*
call sites, not for throughput numbers (use ``repro bench`` for those).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass

__all__ = ["ProfileReport", "profile_scenario"]


@dataclass(frozen=True, slots=True)
class ProfileReport:
    """One profiling run: the workload key, its stats, and the rendering."""

    scenario: str
    mode: str
    seed: int
    scale: float
    top: int
    #: Wall time of the profiled trial (cProfile overhead included).
    wall_time_s: float
    #: Events the simulator fired during the trial.
    events_fired: int
    #: The rendered top-N report (cumulative + internal time tables).
    text: str
    #: Top allocation sites, or ``None`` when tracemalloc was not requested.
    memory_text: str | None = None

    def render(self) -> str:
        """The full human-readable report."""
        header = (
            f"profile: scenario={self.scenario} mode={self.mode!r} "
            f"seed={self.seed} scale={self.scale}\n"
            f"wall time {self.wall_time_s:.3f}s (cProfile overhead included), "
            f"{self.events_fired:,} events fired\n"
        )
        parts = [header, self.text]
        if self.memory_text is not None:
            parts.append(self.memory_text)
        return "\n".join(parts)


def _top_tables(profiler: cProfile.Profile, top: int) -> str:
    """Render the two pstats tables that matter: cumulative and tottime."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative")
    buffer.write(f"top {top} by cumulative time (who owns the time):\n")
    stats.print_stats(top)
    buffer.write(f"top {top} by internal time (where the cycles burn):\n")
    stats.sort_stats("tottime")
    stats.print_stats(top)
    return buffer.getvalue()


def _memory_table(snapshot, top: int) -> str:
    """Render tracemalloc's top allocation sites, grouped by line."""
    lines = [f"top {top} allocation sites (tracemalloc, grouped by line):"]
    total = 0
    for stat in snapshot.statistics("lineno")[:top]:
        frame = stat.traceback[0]
        lines.append(
            f"  {stat.size / 1024:9.1f} KiB  {stat.count:>8} blocks  "
            f"{frame.filename}:{frame.lineno}"
        )
        total += stat.size
    lines.append(f"  (top-{top} total {total / 1024:.1f} KiB)")
    return "\n".join(lines) + "\n"


def profile_scenario(
    scenario: str,
    mode: str = "MS Manners",
    seed: int = 1000,
    scale: float = 0.05,
    top: int = 25,
    memory: bool = False,
) -> ProfileReport:
    """Profile one seeded scenario trial; return the rendered report.

    Raises ``ValueError`` for an unknown scenario or mode (same message
    the trial entry point itself raises), before any profiling starts.
    """
    import time

    from repro.experiments.scenarios import measured_trial

    if memory:
        import tracemalloc

        tracemalloc.start()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    try:
        profiler.enable()
        try:
            result = measured_trial(scenario, mode, seed, scale=scale)
        finally:
            profiler.disable()
        wall = time.perf_counter() - start
        memory_text = None
        if memory:
            memory_text = _memory_table(tracemalloc.take_snapshot(), top)
    finally:
        if memory:
            tracemalloc.stop()

    return ProfileReport(
        scenario=scenario,
        mode=mode,
        seed=seed,
        scale=scale,
        top=top,
        wall_time_s=wall,
        events_fired=int(result.get("events_fired", 0)),
        text=_top_tables(profiler, top),
        memory_text=memory_text,
    )
