"""Repeat-trial experiment harness.

The paper repeats each configuration of its contention experiments 50 times
and reports box plots.  :func:`run_trials` drives any single-trial function
over a seed sequence and aggregates the results; trial counts honour the
``REPRO_TRIALS`` environment variable so the full paper-scale runs and
quick smoke runs share one code path.
"""

from __future__ import annotations

import os
from typing import Callable, Mapping, Sequence, TypeVar

from repro.analysis.stats import BoxStats, box_stats

__all__ = ["trial_count", "run_trials", "aggregate"]

T = TypeVar("T")

#: Default trials per configuration when REPRO_TRIALS is unset.  The paper
#: uses 50; the default here keeps a full benchmark run in minutes while
#: remaining statistically meaningful.  Set REPRO_TRIALS=50 for paper scale.
DEFAULT_TRIALS = 15


def trial_count(default: int = DEFAULT_TRIALS) -> int:
    """Trials per configuration, from ``REPRO_TRIALS`` or the default."""
    raw = os.environ.get("REPRO_TRIALS")
    if raw is None:
        return default
    count = int(raw)
    if count < 1:
        raise ValueError(f"REPRO_TRIALS must be >= 1, got {raw}")
    return count


def run_trials(
    trial: Callable[[int], T],
    trials: int | None = None,
    seed_base: int = 1000,
) -> list[T]:
    """Run ``trial(seed)`` for ``trials`` distinct seeds; return the results."""
    n = trials if trials is not None else trial_count()
    return [trial(seed_base + i) for i in range(n)]


def aggregate(
    samples: Mapping[str, Sequence[float]],
) -> dict[str, BoxStats]:
    """Box-plot statistics per configuration, preserving insertion order."""
    return {name: box_stats(list(values)) for name, values in samples.items()}
