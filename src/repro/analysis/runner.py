"""Repeat-trial experiment harness.

The paper repeats each configuration of its contention experiments 50 times
and reports box plots.  :func:`run_trials` drives any single-trial function
over a seed sequence and aggregates the results; trial counts honour the
``REPRO_TRIALS`` environment variable so the full paper-scale runs and
quick smoke runs share one code path.

Execution fans out over worker processes when ``jobs`` (or ``REPRO_JOBS``)
exceeds 1 — see :mod:`repro.analysis.parallel`.  Seed assignment is
deterministic and results come back in seed order, so serial and parallel
runs of a deterministic trial return identical lists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence, TypeVar

from repro.analysis.env import env_int
from repro.analysis.stats import BoxStats, box_stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.parallel import ParallelRunner, TrialCache
    from repro.obs.telemetry import Telemetry

__all__ = ["trial_count", "run_trials", "aggregate"]

T = TypeVar("T")

#: Default trials per configuration when REPRO_TRIALS is unset.  The paper
#: uses 50; the default here keeps a full benchmark run in minutes while
#: remaining statistically meaningful.  Set REPRO_TRIALS=50 for paper scale.
DEFAULT_TRIALS = 15


def trial_count(default: int = DEFAULT_TRIALS) -> int:
    """Trials per configuration, from ``REPRO_TRIALS`` or the default.

    Empty/whitespace values count as unset; anything else must parse as an
    integer >= 1 or :class:`ValueError` names the variable and the value.
    """
    count = env_int("REPRO_TRIALS", default=None)
    return default if count is None else count


def run_trials(
    trial: Callable[..., T],
    trials: int | None = None,
    seed_base: int = 1000,
    *,
    jobs: int | None = None,
    telemetry: "Telemetry | None" = None,
    cache: "TrialCache | None" = None,
    cache_name: str | None = None,
    cache_config: Any = None,
    runner: "ParallelRunner | None" = None,
) -> list[T]:
    """Run ``trial(seed)`` for ``trials`` distinct seeds; return the results.

    ``jobs`` resolves as explicit argument > ``REPRO_JOBS`` > 1 (serial).
    Parallel runs require a picklable ``trial`` (a module-level function or
    a :func:`functools.partial` over one) and return exactly what the
    serial run would.  With ``telemetry``, the trial is called as
    ``trial(seed, telemetry=...)`` and per-trial ``repro.obs`` counters are
    merged into ``telemetry.metrics`` (in both serial and parallel modes,
    so the two stay bit-identical).  With ``cache`` and ``cache_name``,
    previously completed seeds are loaded from the trial cache instead of
    re-run — see :class:`repro.analysis.parallel.TrialCache`.  Passing an
    existing ``runner`` reuses its (persistent) worker pool and cache —
    the sweep-loop path; ``jobs``/``cache`` are then ignored.
    """
    n = trials if trials is not None else trial_count()
    from repro.analysis.parallel import ParallelRunner, resolve_jobs

    if runner is None:
        resolved = resolve_jobs(jobs, default=1)
        if resolved == 1 and telemetry is None and cache is None:
            # The historical fast path: plain loop, lambdas welcome.
            return [trial(seed_base + i) for i in range(n)]
        runner = ParallelRunner(jobs=resolved, cache=cache)
    return runner.run(
        trial,
        trials=n,
        seed_base=seed_base,
        telemetry=telemetry,
        cache_name=cache_name,
        cache_config=cache_config,
    )


def aggregate(
    samples: Mapping[str, Sequence[float]],
) -> dict[str, BoxStats]:
    """Box-plot statistics per configuration, preserving insertion order."""
    return {name: box_stats(list(values)) for name, values in samples.items()}
