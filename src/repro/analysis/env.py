"""Validated ``REPRO_*`` environment-variable parsing, in one place.

Every knob the benchmark and experiment harnesses read from the
environment used to be parsed ad hoc at its call site, with three distinct
failure modes: ``REPRO_SCALE=0`` silently poisoned every workload sizing,
``REPRO_CACHE=False`` silently *enabled* the cache (only lowercase
``"false"`` was recognized), and ``REPRO_JOBS=""`` raised a bare
``invalid literal for int()`` that named neither the variable nor the
value.  This module is the single parsing layer:

* :func:`env_int` — integer knobs (``REPRO_TRIALS``, ``REPRO_JOBS``,
  ``REPRO_SHARDS``): whitespace is stripped, an empty value counts as
  unset, and errors name the variable and the offending value.
* :func:`env_scale` — finite-and-positive float knobs (``REPRO_SCALE``):
  ``0``, negatives, ``nan`` and ``inf`` are rejected up front instead of
  surfacing later as degenerate workloads.
* :func:`env_flag` — boolean knobs (``REPRO_CACHE``, ``REPRO_FULL``):
  case-insensitive ``0/false/no/off`` and ``1/true/yes/on``; anything
  else raises rather than being silently mis-read.

The explicit-argument twins (:func:`parse_count`, :func:`check_scale`)
apply the same validation to values passed programmatically, so a CLI
``--jobs 0`` and a ``REPRO_JOBS=0`` fail with the same style of message.
"""

from __future__ import annotations

import math
import os

__all__ = [
    "env_flag",
    "env_int",
    "env_scale",
    "parse_count",
    "check_scale",
]

#: Accepted spellings for boolean environment flags (lowercased).
_FLAG_TRUE = frozenset({"1", "true", "yes", "on"})
_FLAG_FALSE = frozenset({"0", "false", "no", "off"})


def parse_count(raw: int | str, source: str, minimum: int = 1) -> int:
    """Parse an integer count, naming ``source`` and the value on failure.

    ``source`` is the environment variable or argument name; it appears in
    every error message so a bad ``REPRO_JOBS`` is distinguishable from a
    bad ``--jobs``.
    """
    if isinstance(raw, int):
        value = raw
    else:
        try:
            value = int(str(raw).strip())
        except ValueError:
            raise ValueError(
                f"{source} must be an integer >= {minimum}, got {raw!r}"
            ) from None
    if value < minimum:
        raise ValueError(f"{source} must be >= {minimum}, got {raw!r}")
    return value


def env_int(name: str, default: int | None = None, minimum: int = 1) -> int | None:
    """Read integer env var ``name``; empty/whitespace counts as unset.

    Returns ``default`` when the variable is unset or blank.  A non-blank
    value must parse as an integer ``>= minimum`` or :class:`ValueError`
    is raised naming the variable and the offending value.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return parse_count(raw, name, minimum=minimum)


def check_scale(value: float, source: str = "scale") -> float:
    """Require a finite, strictly positive workload scale.

    A zero/negative/NaN scale does not fail loudly on its own — it quietly
    collapses every ``max(16, int(3200 * scale))`` workload sizing to its
    floor — so the validation happens here, at the entry point.
    """
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(
            f"{source} must be a finite number > 0, got {value!r}"
        )
    return value


def env_scale(name: str = "REPRO_SCALE", default: float = 1.0) -> float:
    """Read a workload-scale env var: finite and strictly positive.

    Empty/whitespace counts as unset (returns ``default``).  Rejects
    non-numeric values, ``0``, negatives, ``nan``, and ``inf`` with a
    :class:`ValueError` naming the variable and the offending value — the
    same style as :func:`repro.analysis.runner.trial_count`.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        raise ValueError(
            f"{name} must be a finite number > 0, got {raw!r}"
        ) from None
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite number > 0, got {raw!r}")
    return value


def env_flag(name: str, default: bool = False) -> bool:
    """Read boolean env var ``name`` with strict, case-insensitive parsing.

    ``0``/``false``/``no``/``off`` are false; ``1``/``true``/``yes``/``on``
    are true (any capitalization).  Unset or blank returns ``default``.
    Every other value raises :class:`ValueError` — historically
    ``REPRO_CACHE=False`` and ``REPRO_FULL=no`` were silently mis-read by
    two call sites that disagreed about the same tuple of literals.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    text = raw.strip().lower()
    if text in _FLAG_TRUE:
        return True
    if text in _FLAG_FALSE:
        return False
    raise ValueError(
        f"{name} must be one of 0/false/no/off or 1/true/yes/on, got {raw!r}"
    )
