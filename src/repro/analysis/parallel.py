"""Parallel trial execution: process fan-out, result envelopes, trial cache.

The paper's contention experiments repeat every configuration 50 times
(section 9.2), and the ROADMAP's production target is sweeps over large
configuration grids.  Driving each ``trial(seed)`` serially in one process
binds a paper-scale run to a single core; this module supplies the missing
execution layer:

* :class:`ParallelRunner` fans trials out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Seeds are assigned
  deterministically (``seed_base + index``) *before* dispatch and results
  are reassembled in index order, so a parallel run returns exactly the
  list a serial run would — bit-identical aggregates, regardless of worker
  count or completion order.  ``jobs=1`` (or ``REPRO_JOBS=1``) is an exact
  serial fallback that never touches the pool machinery.
* :class:`TrialEnvelope` is the picklable unit shipped back from a worker:
  the trial's return value plus the worker-local ``repro.obs`` counter
  snapshot.  The parent merges counters into the caller's
  :class:`~repro.obs.metrics.MetricsRegistry`, so telemetry totals stay
  correct across process boundaries (counters are additive; gauges and
  histograms are per-worker and intentionally not merged).
* :class:`TrialCache` keys a finished trial on
  ``(benchmark name, scenario-config fingerprint, seed, code fingerprint)``
  and stores the JSON-serializable result under
  ``benchmarks/results/cache/``.  Re-running an unchanged sweep skips
  completed trials; editing any source file under ``repro`` invalidates
  every entry at once (coarse, but never stale).

Trial functions handed to a parallel run must be picklable: module-level
functions or :func:`functools.partial` over them.  Lambdas and closures
still work on the ``jobs=1`` path.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.analysis.env import env_int, parse_count

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = [
    "ParallelRunner",
    "TrialCache",
    "TrialEnvelope",
    "resolve_jobs",
    "resolve_shards",
    "code_fingerprint",
    "config_fingerprint",
    "DEFAULT_CACHE_DIR",
]

#: Default cache root, relative to the current working directory (the repo
#: checkout for benchmark runs); see :class:`TrialCache`.
DEFAULT_CACHE_DIR = Path("benchmarks") / "results" / "cache"

#: In-flight futures per worker: enough to keep every worker busy without
#: materializing one future per trial for very large sweeps.
_DISPATCH_DEPTH = 4


def resolve_jobs(jobs: int | None = None, default: int | None = None) -> int:
    """Worker count: explicit ``jobs``, else ``REPRO_JOBS``, else ``default``.

    ``default=None`` means "all cores" (``os.cpu_count()``).  The resolved
    count must be >= 1; a zero/negative/non-integer request raises
    :class:`ValueError` naming the source (``jobs`` for the explicit
    argument, ``REPRO_JOBS`` for the environment) and the offending value.
    An empty/whitespace ``REPRO_JOBS`` counts as unset.
    """
    if jobs is not None:
        return parse_count(jobs, "jobs")
    resolved = env_int("REPRO_JOBS", default=None)
    if resolved is None:
        resolved = default if default is not None else (os.cpu_count() or 1)
    return resolved


def resolve_shards(
    shards: int | None = None,
    machines: int | None = None,
    default: int | None = None,
) -> int:
    """Shard count for a :class:`repro.simos.shard.ShardedFleet` run.

    Same precedence and strictness as :func:`resolve_jobs` — explicit
    ``shards``, else ``REPRO_SHARDS`` (empty counts as unset), else
    ``default`` (``None`` meaning all cores); errors name the source and
    the offending value.  The count is additionally clamped to
    ``machines`` when given: a shard with no machines would idle through
    every barrier round.
    """
    if shards is not None:
        resolved = parse_count(shards, "shards")
    else:
        resolved = env_int("REPRO_SHARDS", default=None)
        if resolved is None:
            resolved = default if default is not None else (os.cpu_count() or 1)
    if machines is not None:
        resolved = min(resolved, machines)
    return resolved


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hex digest over every source file of the installed ``repro`` package.

    Cache entries embed this fingerprint, so *any* source change invalidates
    the whole trial cache.  Hashing ~170 small files costs a few
    milliseconds, once per process.
    """
    import repro

    digest = hashlib.sha256()
    root = Path(repro.__file__).resolve().parent
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def _describe(obj: Any) -> Any:
    """JSON-encodable stand-in for arbitrary config values (stable order)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, enum.Enum):
        return obj.value
    if callable(obj):
        return f"{getattr(obj, '__module__', '?')}.{getattr(obj, '__qualname__', repr(obj))}"
    return repr(obj)


def config_fingerprint(config: Any) -> str:
    """Short stable digest of a scenario configuration.

    Accepts anything: dataclasses (e.g. ``MannersConfig``), dicts, enums,
    callables, or plain values.  Two configs fingerprint equal exactly when
    their canonical JSON descriptions match.
    """
    text = json.dumps(config, sort_keys=True, default=_describe)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class TrialEnvelope:
    """Picklable per-trial result shipped from a worker to the parent."""

    #: Position in the seed sequence (results are reassembled by index).
    index: int
    #: The seed this trial ran with (``seed_base + index``).
    seed: int
    #: The trial function's return value.
    value: Any
    #: Worker-local ``repro.obs`` counter totals for this trial (empty when
    #: the run is not telemetry-instrumented).
    counters: dict[str, float] = dataclasses.field(default_factory=dict)


def _execute_trial(
    trial: Callable[..., Any], index: int, seed: int, with_telemetry: bool
) -> TrialEnvelope:
    """Run one trial (in a worker or inline) and wrap it in an envelope.

    With telemetry, the trial is called as ``trial(seed, telemetry=...)``
    with a fresh worker-local handle whose counters are snapshotted into
    the envelope for additive merging in the parent.
    """
    if not with_telemetry:
        return TrialEnvelope(index=index, seed=seed, value=trial(seed))
    from repro.obs import MetricsRegistry, Telemetry

    telemetry = Telemetry(metrics=MetricsRegistry())
    value = trial(seed, telemetry=telemetry)
    counters = telemetry.metrics.snapshot()["counters"]
    return TrialEnvelope(index=index, seed=seed, value=value, counters=counters)


class TrialCache:
    """Content-keyed store of finished trial results.

    One JSON file per (benchmark, config, seed, code-version) tuple under
    ``root``.  Values must be JSON-serializable and JSON-round-trip-exact
    (numbers, strings, booleans, ``None``, and dicts/lists thereof) so a
    cache hit returns *the same* result the trial produced; a
    non-serializable value raises :class:`ValueError` at store time rather
    than silently corrupting sweeps.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR, enabled: bool = True) -> None:
        self.root = Path(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def key(self, name: str, config: Any, seed: int) -> str:
        """Cache key for one trial of ``name`` at ``seed`` under ``config``."""
        material = "\n".join(
            (name, config_fingerprint(config), str(seed), code_fingerprint())
        )
        return hashlib.sha256(material.encode()).hexdigest()[:32]

    def _path(self, name: str, key: str) -> Path:
        return self.root / name / f"{key}.json"

    def get(self, name: str, key: str) -> tuple[bool, Any]:
        """``(hit, value)`` for ``key``; unreadable entries count as misses."""
        if not self.enabled:
            return False, None
        path = self._path(name, key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, entry["value"]

    def put(self, name: str, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic write via rename)."""
        if not self.enabled:
            return
        try:
            text = json.dumps({"name": name, "key": key, "value": value})
        except TypeError as exc:
            raise ValueError(
                f"trial result for {name!r} is not JSON-serializable and "
                f"cannot be cached: {exc}"
            ) from exc
        path = self._path(name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, path)


class ParallelRunner:
    """Deterministic fan-out of ``trial(seed)`` calls over worker processes.

    ``jobs`` resolves as explicit argument > ``REPRO_JOBS`` > all cores.
    ``jobs=1`` runs every trial inline, in seed order, with no executor —
    the exact serial semantics of a plain loop.  Parallel runs assign the
    same seeds to the same indices and sort results by index, so the two
    modes return identical lists for deterministic trials.
    """

    def __init__(self, jobs: int | None = None, cache: TrialCache | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        #: Lazily created, *persistent* worker pool.  Spawning a process
        #: pool costs tens of milliseconds plus a worker warm-up per
        #: worker; a sweep that calls :meth:`run` once per sweep point
        #: (mode, configuration, ...) reuses one pool across all of them.
        #: Seed assignment and result ordering are per-:meth:`run` and do
        #: not depend on pool identity, so reuse cannot change results.
        self._pool: ProcessPoolExecutor | None = None

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        trial: Callable[..., Any],
        trials: int,
        seed_base: int = 1000,
        telemetry: "Telemetry | None" = None,
        cache_name: str | None = None,
        cache_config: Any = None,
    ) -> list[Any]:
        """Run ``trials`` seeds of ``trial``; return results in seed order.

        With ``telemetry``, the trial is invoked as
        ``trial(seed, telemetry=...)`` against a per-trial registry and the
        counter totals are merged (summed) into ``telemetry.metrics``.
        With a cache and a ``cache_name``, completed seeds are loaded
        instead of re-run and fresh results are stored back; cached seeds
        contribute no counters (they did not execute).
        """
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        indices = range(trials)
        results: list[Any] = [None] * trials

        pending: list[tuple[int, int]] = []  # (index, seed) still to execute
        keys: dict[int, str] = {}
        use_cache = self.cache is not None and cache_name is not None
        for i in indices:
            seed = seed_base + i
            if use_cache:
                key = self.cache.key(cache_name, cache_config, seed)
                keys[i] = key
                hit, value = self.cache.get(cache_name, key)
                if hit:
                    results[i] = value
                    continue
            pending.append((i, seed))

        with_telemetry = telemetry is not None
        for envelope in self._execute(pending, trial, with_telemetry):
            results[envelope.index] = envelope.value
            if with_telemetry:
                for name, total in envelope.counters.items():
                    telemetry.metrics.inc(name, total)
            if use_cache:
                self.cache.put(cache_name, keys[envelope.index], envelope.value)
        return results

    def _execute(
        self,
        pending: list[tuple[int, int]],
        trial: Callable[..., Any],
        with_telemetry: bool,
    ):
        """Yield envelopes for every pending (index, seed), any order."""
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for index, seed in pending:
                yield _execute_trial(trial, index, seed, with_telemetry)
            return
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        pool = self._pool
        workers = min(self.jobs, len(pending))
        queue = iter(pending)
        futures = set()

        def submit_next() -> None:
            item = next(queue, None)
            if item is not None:
                futures.add(
                    pool.submit(_execute_trial, trial, item[0], item[1], with_telemetry)
                )

        for _ in range(workers * _DISPATCH_DEPTH):
            submit_next()
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()
                submit_next()
