"""Terminal plotting for traces: the figures, in ASCII.

The paper's dynamic-behaviour figures (7, 8, 9, 10) are time series; these
helpers render such series directly in a terminal so the examples can
*show* the regulation dynamics without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["sparkline", "timeseries_plot"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None, hi: float | None = None) -> str:
    """One-line block-character rendering of a value series."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _BLOCKS[-1] * len(values)
    out = []
    for v in values:
        clamped = min(max(v, lo), hi)
        index = int((clamped - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[index])
    return "".join(out)


def timeseries_plot(
    series: Sequence[tuple[float, float]],
    width: int = 72,
    height: int = 12,
    title: str = "",
    y_label: str = "",
    x_label: str = "t",
) -> str:
    """Multi-row ASCII plot of an (x, y) series.

    The series is resampled to ``width`` columns (mean per column) and
    rendered as a dot matrix with y-axis extremes annotated.
    """
    if width < 8 or height < 3:
        raise ValueError("plot must be at least 8x3")
    if not series:
        return f"{title}\n(empty series)"
    xs = [x for x, _ in series]
    ys = [y for _, y in series]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    # Resample into columns.
    columns: list[list[float]] = [[] for _ in range(width)]
    span = max(x_hi - x_lo, 1e-12)
    for x, y in series:
        col = min(int((x - x_lo) / span * (width - 1)), width - 1)
        columns[col].append(y)
    col_values = [sum(c) / len(c) if c else None for c in columns]
    # Paint the grid.
    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(col_values):
        if value is None:
            continue
        row = int((value - y_lo) / (y_hi - y_lo) * (height - 1))
        row = height - 1 - min(max(row, 0), height - 1)
        grid[row][col] = "•"
    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * pad} +{'-' * width}"
    lines.append(axis)
    lines.append(
        f"{' ' * pad}  {f'{x_lo:.3g}':<{width // 2}}{f'{x_hi:.3g} {x_label}':>{width // 2}}"
    )
    return "\n".join(lines)
