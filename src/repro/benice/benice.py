"""BeNice: external regulation of unmodified applications (section 7.2).

"BeNice monitors an application's progress via Windows NT performance
counters ... BeNice suspends an application by suspending its threads.  To
obtain handles to the application's threads, BeNice uses the Windows
program debugging interface ... BeNice periodically suspends a process's
threads, polls its performance counters, calls the MS Manners testpoint
function, and resumes the threads."

The simulated BeNice is itself a process on the machine: a thread that
sleeps for the adaptive polling interval, suspends the target's threads
through the kernel's debug interface, reads the target's performance
counters, feeds them to a :class:`~repro.core.controller.ThreadRegulator`,
keeps the target suspended for any mandated delay, and resumes it.  The
brief suspend-poll-resume at every poll is what costs the target the ~1.5%
overhead visible in the paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Sequence

from repro.benice.polling import AdaptivePoller
from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.controller import ThreadRegulator
from repro.core.signtest import Judgment
from repro.obs import events as obs_events
from repro.simos.cpu import CpuPriority
from repro.simos.effects import Delay, Effect, UseCPU
from repro.simos.kernel import Kernel, SimThread
from repro.simos.perfcounters import PerfCounterRegistry
from repro.simos.trace import TestpointTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["BeNiceStats", "BeNice"]

#: CPU cost of one suspend-poll-resume cycle (debug-interface round trips).
_POLL_CPU = 0.002
#: Wall time the target's threads stay frozen during a poll, beyond the CPU
#: cost — handle acquisition and per-thread suspend/resume latency.
_POLL_FREEZE = 0.003


@dataclass
class BeNiceStats:
    """BeNice operating statistics."""

    polls: int = 0
    polls_without_progress: int = 0
    suspensions: int = 0
    total_suspension_time: float = 0.0
    final_interval: float = 0.0


class BeNice:
    """Externally regulate one unmodified simulated process."""

    def __init__(
        self,
        kernel: Kernel,
        registry: PerfCounterRegistry,
        target_process: str,
        counter_names: Sequence[str],
        target_threads: Sequence[SimThread],
        config: MannersConfig = DEFAULT_CONFIG,
        poller: AdaptivePoller | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        """Configure BeNice for one target.

        Args:
            kernel: The simulated machine (provides the debug interface).
            registry: The performance-counter namespace.
            target_process: Counter namespace of the monitored process.
            counter_names: Counters forming the progress metric set, in a
                fixed order (they become the regulator's metrics).
            target_threads: The process's threads, to suspend and resume.
            config: Regulation parameters.
            poller: Adaptive polling controller (default-configured if
                omitted).
        """
        if not counter_names:
            raise ValueError("BeNice needs at least one progress counter")
        self._kernel = kernel
        self._registry = registry
        self._process = target_process
        self._counters = tuple(counter_names)
        self._targets = tuple(target_threads)
        self._config = config
        self._poller = poller or AdaptivePoller(
            initial_interval=max(config.min_testpoint_interval, 0.3)
        )
        self._telemetry = (
            None if telemetry is None else telemetry.scoped(f"benice:{target_process}")
        )
        self.regulator = ThreadRegulator(config, telemetry=self._telemetry)
        self.stats = BeNiceStats()
        self.trace = TestpointTrace()
        self.thread: SimThread | None = None

    def spawn(self, start_after: float = 0.0) -> SimThread:
        """Start the BeNice monitor thread."""
        self.thread = self._kernel.spawn(
            f"benice:{self._process}",
            self._body(),
            priority=CpuPriority.NORMAL,
            process="benice",
            start_after=start_after,
        )
        return self.thread

    # -- monitor loop -----------------------------------------------------------------
    def _body(self) -> Generator[Effect, object, None]:
        last_values: tuple[float, ...] | None = None
        while any(t.alive for t in self._targets):
            yield Delay(self._poller.interval)
            # Freeze the target, poll, decide.
            for t in self._targets:
                self._kernel.suspend_thread(t)
            yield UseCPU(_POLL_CPU)
            yield Delay(_POLL_FREEZE)
            values = tuple(
                self._registry.read(self._process, name) for name in self._counters
            )
            changed = last_values is None or values != last_values
            last_values = values
            self.stats.polls += 1
            if not changed:
                self.stats.polls_without_progress += 1
            self._poller.record_poll(changed)
            decision = self.regulator.on_testpoint(self._kernel.now, 0, values)
            tel = self._telemetry
            if tel is not None:
                tel.metrics.inc("benice_polls")
                if not changed:
                    tel.metrics.inc("benice_idle_polls")
                tel.metrics.gauge("benice_poll_interval").set(self._poller.interval)
                tel.emit(
                    obs_events.BeNicePoll(
                        t=self._kernel.now,
                        src=tel.label,
                        interval=self._poller.interval,
                        changed=changed,
                        delay=decision.delay,
                    )
                )
            if decision.processed:
                self.trace.record(
                    self._kernel.now,
                    decision.duration,
                    decision.target_duration,
                    decision.judgment,
                    decision.delay,
                )
            if decision.delay > 0:
                # Poor progress: keep the target frozen for the backoff.
                self.stats.suspensions += 1
                self.stats.total_suspension_time += decision.delay
                yield Delay(decision.delay)
                if tel is not None:
                    tel.tick(self._kernel.now)
                    tel.emit(
                        obs_events.SuspensionEnded(
                            t=self._kernel.now, src=tel.label, slept=decision.delay
                        )
                    )
            for t in self._targets:
                self._kernel.resume_thread(t)
        self.stats.final_interval = self._poller.interval

    @property
    def judgments(self) -> tuple[Judgment, ...]:
        """Sequence of judgments from the trace (diagnostics)."""
        return tuple(
            r.judgment for r in self.trace.records if r.judgment is not None
        )
