"""BeNice: external regulation of unmodified applications.

The paper's second packaging of MS Manners (section 7.2): a separate
program that polls a target's performance counters, feeds them to the
regulation engine, and enforces suspensions through the OS debug
interface — no modification of the target required.
"""

from repro.benice.benice import BeNice, BeNiceStats
from repro.benice.polling import AdaptivePoller

__all__ = ["AdaptivePoller", "BeNice", "BeNiceStats"]
