"""Adaptive polling-interval control for BeNice (paper section 7.2).

"BeNice automatically adjusts the polling frequency to track the rate of
performance-counter updates.  If the fraction of polling intervals with no
change in progress exceeds a threshold, BeNice increases the polling
interval.  If this fraction falls below a threshold, BeNice decreases the
interval, subject to a lower limit."

:class:`AdaptivePoller` implements that controller over a sliding window of
recent polls.
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import ConfigError

__all__ = ["AdaptivePoller"]


class AdaptivePoller:
    """Sliding-window controller for the BeNice polling interval."""

    def __init__(
        self,
        initial_interval: float = 0.3,
        min_interval: float = 0.1,
        max_interval: float = 10.0,
        window: int = 16,
        raise_threshold: float = 0.5,
        lower_threshold: float = 0.125,
        factor: float = 2.0,
    ) -> None:
        """Configure the controller.

        Args:
            initial_interval: Starting poll interval, seconds.
            min_interval: The paper's "lower limit" on the interval.
            max_interval: Cap so a long-idle application is still observed.
            window: Number of recent polls considered.
            raise_threshold: No-change fraction above which the interval
                grows (polling faster than the app updates its counters is
                pure overhead).
            lower_threshold: No-change fraction below which the interval
                shrinks (every poll sees fresh progress, so finer-grained
                regulation is available for free).
            factor: Multiplicative step for interval changes.
        """
        if not 0 < min_interval <= initial_interval <= max_interval:
            raise ConfigError(
                "need 0 < min_interval <= initial_interval <= max_interval, got "
                f"{min_interval}, {initial_interval}, {max_interval}"
            )
        if window < 4:
            raise ConfigError(f"window must be >= 4, got {window}")
        if not 0.0 <= lower_threshold < raise_threshold <= 1.0:
            raise ConfigError(
                "need 0 <= lower_threshold < raise_threshold <= 1, got "
                f"{lower_threshold}, {raise_threshold}"
            )
        if factor <= 1.0:
            raise ConfigError(f"factor must be > 1, got {factor}")
        self._interval = initial_interval
        self._min = min_interval
        self._max = max_interval
        self._history: deque[bool] = deque(maxlen=window)
        self._raise = raise_threshold
        self._lower = lower_threshold
        self._factor = factor
        self.adjustments = 0

    @property
    def interval(self) -> float:
        """Current polling interval, in seconds."""
        return self._interval

    @property
    def no_change_fraction(self) -> float | None:
        """Fraction of the window's polls that saw no progress, or ``None``."""
        if not self._history:
            return None
        return sum(self._history) / len(self._history)

    def record_poll(self, progress_changed: bool) -> float:
        """Record one poll's outcome; return the (possibly updated) interval."""
        self._history.append(not progress_changed)
        if len(self._history) == self._history.maxlen:
            fraction = self.no_change_fraction
            assert fraction is not None
            if fraction > self._raise and self._interval < self._max:
                self._interval = min(self._interval * self._factor, self._max)
                self._history.clear()
                self.adjustments += 1
            elif fraction < self._lower and self._interval > self._min:
                self._interval = max(self._interval / self._factor, self._min)
                self._history.clear()
                self.adjustments += 1
        return self._interval
