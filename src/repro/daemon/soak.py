"""Fault-injected soak harness for the regulator daemon.

``repro daemon soak`` runs each named chaos scenario against a *live*
daemon — real Unix socket, real worker subprocesses, real kill signals —
under a seeded IPC fault plan, and then audits the telemetry trace: every
:class:`~repro.obs.events.FaultInjected` event must be followed by a
:class:`~repro.obs.events.RecoveryAction` drawn from that fault kind's
allowed set (:data:`~repro.daemon.chaos.RECOVERY_ACTIONS`) for the same
target.  A fault the daemon absorbed silently, or never recovered from,
fails the run.

Two harness shapes:

* **in-process scenarios** (``ipc-chaos``, ``peer-hang``,
  ``worker-crash``) run the daemon inside the harness's event loop (the
  workers are still real subprocesses), so the trace is captured in
  memory and audited directly, with a flight recorder dumping the event
  ring around every injection for post-mortem;
* **daemon-crash** runs the daemon as a subprocess, waits for the
  write-ahead journal to hold calibration state, SIGKILLs the daemon
  mid-run, reads the journal's digests *after* the kill (exactly what
  survived), restarts the daemon, and requires the restored digests it
  reports over control IPC to be bit-identical.

Determinism note: fault *schedules* are seeded and reproducible; the
wall-clock interleaving of a live daemon is not.  What the soak asserts
is therefore invariant under scheduling — fault/recovery pairing and
restore digests — never event counts or orderings.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.config import MannersConfig
from repro.core.errors import FaultError
from repro.daemon.chaos import RECOVERY_ACTIONS, SCENARIO_KINDS, ipc_plan
from repro.daemon.client import ControlClient
from repro.daemon.journal import StateJournal
from repro.daemon.server import RegulatorDaemon, WorkerSpec
from repro.obs.events import Event, FaultInjected, RecoveryAction
from repro.obs.flightrec import FlightRecorder
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry

__all__ = [
    "SoakRunResult",
    "SoakReport",
    "soak_config",
    "match_faults",
    "run_soak",
]

#: Worker fleet every soak run regulates: one of each canonical workload.
_FLEET = (("groveler", "g1"), ("compressor", "c1"))


def soak_config() -> MannersConfig:
    """A fast-converging configuration so short runs exercise regulation.

    The defaults are tuned for week-scale production tracking; a soak run
    needs bootstrap to finish and suspensions to appear within seconds.
    """
    return MannersConfig(
        bootstrap_testpoints=6,
        min_testpoint_interval=0.05,
        initial_suspension=0.25,
        max_suspension=2.0,
        probation_period=0.0,
        averaging_n=200,
        hung_threshold=10.0,
    )


@dataclass(slots=True)
class SoakRunResult:
    """Outcome of one (scenario, seed) soak run."""

    scenario: str
    seed: int
    duration: float
    #: Faults that actually took effect (FaultInjected events / kills).
    injected: int = 0
    #: Injected faults whose matching recovery appeared in the trace.
    matched: int = 0
    #: Human-readable descriptions of injected-but-unrecovered faults.
    unmatched: list[str] = field(default_factory=list)
    #: Planned faults that never found a frame to fire on.
    unfired: int = 0
    #: Total recovery actions in the trace.
    recoveries: int = 0
    #: daemon-crash only: per-app digest comparison.
    restore: dict[str, Any] | None = None
    #: Flight-recorder dump files written during the run.
    flight_dumps: list[str] = field(default_factory=list)
    ok: bool = False
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of this run, as written to the report file."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "duration": self.duration,
            "injected": self.injected,
            "matched": self.matched,
            "unmatched": list(self.unmatched),
            "unfired": self.unfired,
            "recoveries": self.recoveries,
            "restore": self.restore,
            "flight_dumps": list(self.flight_dumps),
            "ok": self.ok,
            "note": self.note,
        }


@dataclass(slots=True)
class SoakReport:
    """All runs of one ``repro daemon soak`` invocation."""

    runs: list[SoakRunResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.runs) and all(run.ok for run in self.runs)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of the whole report."""
        return {"ok": self.ok, "runs": [run.to_dict() for run in self.runs]}


def match_faults(
    events: Sequence[Event],
) -> tuple[list[FaultInjected], list[FaultInjected]]:
    """Pair every injected fault with an allowed recovery for its target.

    Returns ``(injected, unmatched)``.  Each recovery event satisfies at
    most one fault (two dropped messages need two retransmissions), and a
    recovery only counts if it happened at-or-after its fault and names
    the same target in its ``detail``.
    """
    faults = [
        e
        for e in events
        if isinstance(e, FaultInjected)
        and e.fault in RECOVERY_ACTIONS
        and e.fault != "daemon_kill"
    ]
    recoveries = [e for e in events if isinstance(e, RecoveryAction)]
    used: set[int] = set()
    unmatched: list[FaultInjected] = []
    for fault in faults:
        allowed = RECOVERY_ACTIONS[fault.fault]
        hit = None
        for i, recovery in enumerate(recoveries):
            if i in used:
                continue
            if recovery.t + 1e-9 < fault.t:
                continue
            if recovery.action not in allowed:
                continue
            if fault.target and recovery.detail != fault.target:
                continue
            hit = i
            break
        if hit is None:
            unmatched.append(fault)
        else:
            used.add(hit)
    return faults, unmatched


def run_soak(
    scenarios: Sequence[str],
    seeds: Sequence[int],
    duration: float,
    workdir: str | os.PathLike[str],
    grace: float = 12.0,
    say: Callable[[str], None] | None = None,
) -> SoakReport:
    """Run every (scenario, seed) combination; returns the full report."""
    report = SoakReport()
    base = Path(workdir)
    for scenario in scenarios:
        if scenario not in SCENARIO_KINDS:
            raise FaultError(
                f"unknown soak scenario {scenario!r}; "
                f"known: {', '.join(sorted(SCENARIO_KINDS))}"
            )
    for scenario in scenarios:
        for seed in seeds:
            rundir = base / f"{scenario}-s{seed}"
            rundir.mkdir(parents=True, exist_ok=True)
            if say is not None:
                say(f"soak: {scenario} seed={seed} duration={duration:g}s")
            if scenario == "daemon-crash":
                result = _run_daemon_crash(seed, duration, rundir, grace)
            else:
                result = asyncio.run(
                    _run_in_process(scenario, seed, duration, rundir, grace)
                )
            report.runs.append(result)
            if say is not None:
                status = "ok" if result.ok else "FAIL"
                say(
                    f"soak: {scenario} seed={seed}: {status} "
                    f"(injected={result.injected} matched={result.matched} "
                    f"unmatched={len(result.unmatched)})"
                )
    # Persist the machine-readable report next to the run directories so
    # a CI artifact upload of the workdir is self-describing.
    report_path = base / "soak-report.json"
    report_path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return report


# -- in-process scenarios (daemon in the harness loop, workers real) ----------
async def _run_in_process(
    scenario: str, seed: int, duration: float, rundir: Path, grace: float
) -> SoakRunResult:
    result = SoakRunResult(scenario=scenario, seed=seed, duration=duration)
    socket_path = str(rundir / "daemon.sock")
    state_dir = rundir / "state"
    dump_dir = rundir / "flightrec"
    plan = ipc_plan(scenario, seed, duration, targets=[name for _, name in _FLEET])
    sink = MemorySink()
    recorder = FlightRecorder(capacity=4096, dump_dir=dump_dir)
    telemetry = Telemetry(sink=sink, label="daemon", flight_recorder=recorder)
    daemon = RegulatorDaemon(
        socket_path,
        state_dir=str(state_dir),
        config=soak_config(),
        telemetry=telemetry,
        workers=[WorkerSpec(kind, name) for kind, name in _FLEET],
        chaos_plan=plan,
        heartbeat_interval=0.25,
        heartbeat_timeout=2.5,
        save_interval=max(duration, 30.0),
        journal_interval=0.25,
        fsync_journal=False,
        restart_backoff=0.25,
        restart_backoff_cap=2.0,
    )
    ready = asyncio.Event()
    run_task = asyncio.create_task(daemon.run(ready=ready))
    await ready.wait()
    await asyncio.sleep(duration)
    # Give in-flight faults time to fire and their recoveries to land
    # before auditing; stop early once the books balance.
    deadline = time.monotonic() + grace
    planned = len(plan)
    while time.monotonic() < deadline:
        injected, unmatched = match_faults(sink.events)
        if len(injected) >= planned and not unmatched:
            break
        await asyncio.sleep(0.25)
    daemon.request_drain("soak-complete")
    await run_task
    telemetry.close()
    injected, unmatched = match_faults(sink.events)
    result.injected = len(injected)
    result.matched = len(injected) - len(unmatched)
    result.unmatched = [
        f"{f.fault} against {f.target or '?'} at t={f.t:.3f} had no "
        f"recovery in {sorted(RECOVERY_ACTIONS[f.fault])}"
        for f in unmatched
    ]
    result.unfired = max(planned - len(injected), 0)
    result.recoveries = sum(1 for e in sink.events if isinstance(e, RecoveryAction))
    result.flight_dumps = sorted(
        str(p) for p in dump_dir.glob("*.jsonl")
    ) if dump_dir.is_dir() else []
    result.ok = not unmatched and (planned == 0 or len(injected) > 0)
    if planned and not injected:
        result.note = "no planned fault ever fired"
    elif result.unfired:
        result.note = f"{result.unfired} planned fault(s) never fired (run too short)"
    return result


# -- daemon-crash (daemon as a subprocess; the harness wields kill -9) --------
def _serve_command(socket_path: Path, state_dir: Path) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "--quiet",
        "daemon",
        "serve",
        "--socket",
        str(socket_path),
        "--state-dir",
        str(state_dir),
        "--workers",
        ",".join(f"{kind}:{name}" for kind, name in _FLEET),
        "--fast",
        "--journal-interval",
        "0.2",
        "--save-interval",
        "3600",
    ]


def _await_socket(socket_path: Path, timeout: float) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if socket_path.exists():
            probe = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            try:
                probe.settimeout(1.0)
                probe.connect(str(socket_path))
                return True
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.1)
    return False


def _poll_control(
    socket_path: Path,
    timeout: float,
    predicate: Callable[[ControlClient], bool],
) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        control = ControlClient(str(socket_path), connect_timeout=2.0, timeout=2.0)
        try:
            if predicate(control):
                return True
        except Exception:
            pass
        finally:
            control.close()
        time.sleep(0.3)
    return False


def _run_daemon_crash(
    seed: int, duration: float, rundir: Path, grace: float
) -> SoakRunResult:
    result = SoakRunResult(scenario="daemon-crash", seed=seed, duration=duration)
    socket_path = rundir / "daemon.sock"
    state_dir = rundir / "state"
    command = _serve_command(socket_path, state_dir)
    setup_timeout = max(duration, 20.0) + grace
    proc = subprocess.Popen(command)
    restarted: subprocess.Popen | None = None
    try:
        if not _await_socket(socket_path, setup_timeout):
            result.note = "daemon never opened its socket"
            return result

        def journaled(control: ControlClient) -> bool:
            status = control.request("status")
            counters = status.get("counters", {})
            return (
                counters.get("journal_appends", 0) >= len(_FLEET)
                and counters.get("testpoints", 0) >= 8
            )

        if not _poll_control(socket_path, setup_timeout, journaled):
            result.note = "daemon never journaled calibration state"
            return result
        # The injection: an unceremonious kill, no drain, no flush.
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10.0)
        result.injected = 1
        # Read the journal only now — its content *after* the kill is
        # exactly the durable state the restart must reproduce.
        expected = {
            app_id: record.digest
            for app_id, record in StateJournal(state_dir).latest_states().items()
        }
        if not expected:
            result.note = "journal held no valid records after the kill"
            return result
        restarted = subprocess.Popen(command)
        if not _await_socket(socket_path, setup_timeout):
            result.note = "restarted daemon never opened its socket"
            return result
        observed: dict[str, str] = {}

        def restored(control: ControlClient) -> bool:
            reply = control.request("digest")
            observed.clear()
            observed.update(reply.get("restored", {}))
            return set(observed) >= set(expected)

        recovered = _poll_control(socket_path, setup_timeout, restored)
        result.restore = {
            app_id: {
                "expected": digest,
                "restored": observed.get(app_id),
                "match": observed.get(app_id) == digest,
            }
            for app_id, digest in expected.items()
        }
        result.recoveries = 1 if recovered else 0
        all_match = recovered and all(
            entry["match"] for entry in result.restore.values()
        )
        if all_match:
            result.matched = 1
            result.ok = True
        else:
            result.unmatched = [
                f"daemon_kill: state for {app_id} not restored bit-identically "
                f"(expected {entry['expected'][:12]}, got "
                f"{str(entry['restored'])[:12]})"
                for app_id, entry in result.restore.items()
                if not entry["match"]
            ] or ["daemon_kill: restarted daemon never reported restored digests"]
        with ControlClient(str(socket_path), timeout=5.0) as control:
            control.request("stop")
        restarted.wait(timeout=15.0)
        restarted = None
    except Exception as exc:
        if not result.note:
            result.note = f"harness error: {exc}"
        result.ok = False
    finally:
        for p in (proc, restarted):
            if p is not None and p.poll() is None:
                p.kill()
                with contextlib.suppress(subprocess.TimeoutExpired, OSError):
                    p.wait(timeout=5.0)
    return result
