"""The supervised regulator daemon (ROADMAP item 5).

A deployable superintendent: :class:`~repro.daemon.server.RegulatorDaemon`
regulates real OS worker subprocesses over a local-socket JSON-line
protocol (:mod:`repro.daemon.protocol`), persists calibration crash-safely
through a write-ahead journal (:mod:`repro.daemon.journal`) between atomic
snapshots, and is soak-tested under seeded IPC fault injection
(:mod:`repro.daemon.chaos`, :mod:`repro.daemon.soak`) where every injected
fault must be answered by a matching recovery action in the telemetry
trace.  Workers embed :class:`~repro.daemon.client.DaemonClient`; the
canonical low-importance workloads live in :mod:`repro.daemon.worker`.
"""

from repro.daemon.chaos import RECOVERY_ACTIONS, SCENARIO_KINDS, ChaosState, ipc_plan
from repro.daemon.client import (
    ControlClient,
    DaemonClient,
    DaemonShutdown,
    DaemonUnavailable,
)
from repro.daemon.journal import JournalRecord, StateJournal, state_digest
from repro.daemon.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.daemon.server import RegulatorDaemon, WorkerSpec
from repro.daemon.soak import SoakReport, SoakRunResult, match_faults, run_soak, soak_config

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "StateJournal",
    "JournalRecord",
    "state_digest",
    "ChaosState",
    "RECOVERY_ACTIONS",
    "SCENARIO_KINDS",
    "ipc_plan",
    "RegulatorDaemon",
    "WorkerSpec",
    "DaemonClient",
    "ControlClient",
    "DaemonShutdown",
    "DaemonUnavailable",
    "SoakReport",
    "SoakRunResult",
    "match_faults",
    "run_soak",
    "soak_config",
]
