"""IPC-level fault injection for the regulator daemon.

The simulator's chaos harness (:mod:`repro.faults`) injects clock and
thread faults *inside* one process.  The daemon adds the failure domain a
real deployment actually has: the wire.  This module generates seeded
plans of IPC faults and holds the runtime state the daemon's frame
read/write paths consult to realize them:

* ``msg_drop`` — the next frame to/from the target worker vanishes;
* ``msg_delay`` — the next frame is held ``param`` seconds;
* ``msg_dup`` — the next outbound frame is sent twice;
* ``frame_truncate`` — the next outbound frame is cut mid-payload
  (a torn write: the worker sees one unparseable line);
* ``peer_hang`` — the daemon goes silent toward the target worker for
  ``param`` seconds (inbound frames are buffered, outbound held);
* ``worker_kill`` — the worker subprocess is SIGKILLed outright.

Every injection is emitted as a
:class:`~repro.obs.events.FaultInjected` event the moment it takes
effect, and every absorbed consequence as the matching
:class:`~repro.obs.events.RecoveryAction` — the pairing the soak harness
asserts over the trace (see :data:`RECOVERY_ACTIONS`).

Faults are injected *by the daemon, on itself*: determinism comes from
the seeded :class:`~repro.faults.plan.FaultPlan` schedule, and honesty
from the injection sitting below the protocol handlers — the recovery
paths exercised (retransmission, deduplication, bad-frame skipping,
reconnect, watchdog eviction, restart) are exactly the ones a hostile
network or a dying peer would exercise.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence

from repro.core.errors import FaultError
from repro.faults.plan import IPC_FAULTS, FaultPlan, FaultSpec

__all__ = [
    "RECOVERY_ACTIONS",
    "ipc_plan",
    "ArmedFault",
    "ChaosState",
    "SCENARIO_KINDS",
]

#: For each IPC fault kind, the set of recovery actions that prove the
#: daemon absorbed it.  The soak harness requires every injected fault to
#: be followed by one of its listed actions for the same target.
RECOVERY_ACTIONS: dict[str, frozenset[str]] = {
    "msg_drop": frozenset({"retransmit_absorbed", "resend_served"}),
    "msg_delay": frozenset({"delayed_delivery"}),
    "msg_dup": frozenset({"duplicate_discarded"}),
    "frame_truncate": frozenset(
        {"bad_frame_skipped", "retransmit_absorbed", "resend_served"}
    ),
    "peer_hang": frozenset(
        {"hang_recovered", "worker_evicted", "worker_restarted"}
    ),
    "worker_kill": frozenset({"worker_restarted", "slot_released"}),
    # daemon_kill is verified by the soak harness's restore-digest check,
    # not by trace matching (the killed daemon cannot write its own
    # post-mortem); listed so the vocabulary is complete.
    "daemon_kill": frozenset({"state_restored"}),
}

#: The fault mix each named soak scenario draws its plan from.
SCENARIO_KINDS: dict[str, tuple[str, ...]] = {
    "ipc-chaos": ("msg_drop", "msg_delay", "msg_dup", "frame_truncate"),
    "peer-hang": ("peer_hang",),
    "worker-crash": ("worker_kill",),
    # daemon-crash schedules no in-daemon faults; the harness supplies the
    # kill -9 and the restore check.
    "daemon-crash": (),
}


def ipc_plan(
    scenario: str,
    seed: int,
    duration: float,
    targets: Sequence[str],
    count: int | None = None,
) -> FaultPlan:
    """The seeded fault schedule for one soak scenario run.

    ``targets`` are the worker names the faults pick victims from.  The
    fault count scales with the run duration (one fault roughly every
    eight seconds, at least two) unless given explicitly.  The
    ``daemon-crash`` scenario returns an empty plan.
    """
    try:
        kinds = SCENARIO_KINDS[scenario]
    except KeyError:
        raise FaultError(
            f"unknown soak scenario {scenario!r}; "
            f"known: {', '.join(sorted(SCENARIO_KINDS))}"
        ) from None
    if not kinds:
        return FaultPlan()
    if count is None:
        count = max(2, int(duration / 8.0))
    return FaultPlan.generate(
        seed=seed, duration=duration, count=count, kinds=kinds, targets=targets
    )


class ArmedFault:
    """One scheduled fault waiting for its moment on a worker's wire."""

    __slots__ = ("kind", "target", "param", "fired")

    def __init__(self, kind: str, target: str, param: float = 0.0) -> None:
        if kind not in IPC_FAULTS:
            raise FaultError(f"not an IPC fault kind: {kind!r}")
        self.kind = kind
        self.target = target
        self.param = param
        #: Whether the injection has taken effect (event emitted).
        self.fired = False


class ChaosState:
    """Armed IPC faults, queued per worker, consumed by the wire hooks.

    The daemon arms faults from its chaos plan (or a control ``inject``
    frame) with :meth:`arm`; the connection read/write paths call
    :meth:`take` at each injection point to consume at most one armed
    fault of the kinds that point can realize.
    """

    __slots__ = ("_queues", "injected")

    def __init__(self) -> None:
        self._queues: dict[str, Deque[ArmedFault]] = {}
        #: Every fault ever armed, in arming order (monitoring).
        self.injected: list[ArmedFault] = []

    def arm(self, kind: str, target: str, param: float = 0.0) -> ArmedFault:
        """Queue one fault against ``target``'s connection."""
        fault = ArmedFault(kind, target, param)
        self._queues.setdefault(target, deque()).append(fault)
        self.injected.append(fault)
        return fault

    def arm_plan(self, plan: FaultPlan) -> list[tuple[float, FaultSpec]]:
        """Validate a plan's IPC specs; returns ``(at, spec)`` pairs.

        The daemon schedules each spec at its offset and calls
        :meth:`arm` when the timer fires (arming early would let one
        fault absorb another's trigger frame).
        """
        pairs = []
        for spec in plan:
            if spec.kind not in IPC_FAULTS:
                raise FaultError(
                    f"plan contains non-IPC fault {spec.kind!r}; "
                    "the daemon chaos engine only injects IPC faults"
                )
            pairs.append((spec.at, spec))
        return pairs

    def take(self, target: str, kinds: Sequence[str]) -> ArmedFault | None:
        """Consume the oldest armed fault for ``target`` of one of ``kinds``.

        Returns ``None`` when nothing matching is armed.  Faults of other
        kinds stay queued in order.
        """
        queue = self._queues.get(target)
        if not queue:
            return None
        for i, fault in enumerate(queue):
            if fault.kind in kinds:
                del queue[i]
                return fault
        return None

    def pending(self, target: str) -> tuple[ArmedFault, ...]:
        """The faults still queued against ``target``."""
        return tuple(self._queues.get(target, ()))
