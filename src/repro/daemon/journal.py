"""Crash-safe write-ahead journal for calibration state.

The daemon's durability story has two tiers.  The *snapshot* tier is the
atomic :class:`~repro.core.persistence.TargetStore` (write-to-temp, fsync,
rename) — bulletproof, but too expensive to run on every calibration
change.  The *journal* tier fills the gap between snapshots: an
append-only JSONL file where every record carries the full exported
regulator state for one application plus a CRC32 over its canonical
serialization.  Appends are flushed (and optionally fsynced) immediately,
so the window in which a ``kill -9`` loses calibration is one append
interval, not one snapshot interval.

Recovery after a crash replays the journal *leniently*: records are read
in order, each checksum-verified, and replay stops at the first damaged
record — by construction everything after a torn append is untrustworthy,
while everything before it is exactly what was written (the classic WAL
torn-tail rule).  The newest valid record per application wins.  A
quarantined copy of a damaged journal survives as ``<name>.corrupt`` for
post-mortem, mirroring the snapshot store's quarantine contract.

Each record also carries a SHA-256 ``digest`` of the canonical state
serialization.  The digest is what makes "bit-identical restore" a
checkable claim across a process boundary: the soak harness reads the
digest of the last journaled record, kills the daemon outright, restarts
it, and compares the digest the restarted daemon computes from its
restored state (see ``repro daemon soak``).
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.core.errors import PersistenceError

__all__ = ["StateJournal", "JournalRecord", "state_digest", "JOURNAL_NAME"]

#: The journal file's name inside a daemon state directory.
JOURNAL_NAME = "targets.journal.jsonl"

#: Appended to a damaged journal's name when it is quarantined.
_QUARANTINE_SUFFIX = ".corrupt"


def _canonical(state: Mapping[str, Any]) -> str:
    """The canonical serialization digests and checksums are computed over."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def state_digest(state: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a regulator state snapshot.

    Two states with equal digests serialize bit-identically; this is the
    equality the daemon's restore guarantee is stated in.
    """
    return hashlib.sha256(_canonical(state).encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One checksum-verified journal entry."""

    seq: int
    app_id: str
    state: dict[str, Any]
    digest: str


class StateJournal:
    """Append-only, checksum-framed calibration journal in one directory.

    Args:
        directory: The daemon state directory (shared with the snapshot
            :class:`~repro.core.persistence.TargetStore`).
        fsync: Whether every append is fsynced.  On for the daemon (the
            whole point is surviving ``kill -9``); tests may turn it off.
    """

    __slots__ = ("_dir", "_path", "_fsync", "_handle", "_seq", "appends", "truncated_tail")

    def __init__(self, directory: str | os.PathLike[str], fsync: bool = True) -> None:
        self._dir = Path(directory)
        self._path = self._dir / JOURNAL_NAME
        self._fsync = fsync
        self._handle = None
        self._seq = 0
        #: Records appended by this instance (monitoring counter).
        self.appends = 0
        #: Whether the last :meth:`replay` stopped at a damaged record.
        self.truncated_tail = False

    @property
    def path(self) -> Path:
        """The journal file."""
        return self._path

    # -- writing ---------------------------------------------------------------
    def append(self, app_id: str, state: Mapping[str, Any]) -> JournalRecord:
        """Durably append one state record; returns what was written.

        The record is flushed (and fsynced when enabled) before this
        returns: once :meth:`append` completes, the state survives any
        subsequent crash of the process.  Raises
        :class:`~repro.core.errors.PersistenceError` on write failure.
        """
        self._seq += 1
        record = {
            "seq": self._seq,
            "app_id": app_id,
            "state": dict(state),
            "digest": state_digest(state),
        }
        record["crc"] = self._crc(record)
        try:
            handle = self._open()
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        except OSError as exc:
            raise PersistenceError(f"cannot append to {self._path}: {exc}") from exc
        self.appends += 1
        return JournalRecord(
            seq=record["seq"],
            app_id=app_id,
            state=record["state"],
            digest=record["digest"],
        )

    def compact(self) -> None:
        """Truncate the journal (call right after a successful snapshot).

        Everything the journal held is now covered by the atomic snapshot
        store, so the records are dead weight; truncation bounds both the
        file and the replay time.
        """
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
        try:
            if self._path.exists():
                self._path.unlink()
        except OSError as exc:
            raise PersistenceError(f"cannot compact {self._path}: {exc}") from exc

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def __enter__(self) -> "StateJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading ---------------------------------------------------------------
    def replay(self) -> list[JournalRecord]:
        """Read every valid record, oldest first, stopping at a torn tail.

        A missing journal is an empty history.  A record that fails JSON
        parsing or checksum verification ends the replay (everything after
        it is untrustworthy); :attr:`truncated_tail` records that this
        happened and the damaged file is quarantined as ``*.corrupt`` so
        the evidence survives.  Never raises for damage — a daemon must
        restart on whatever valid prefix exists.
        """
        self.truncated_tail = False
        records = list(self._iter_valid())
        if self.truncated_tail:
            self._quarantine()
        if records:
            self._seq = max(self._seq, records[-1].seq)
        return records

    def latest_states(self) -> dict[str, JournalRecord]:
        """The newest valid record per application id."""
        latest: dict[str, JournalRecord] = {}
        for record in self.replay():
            latest[record.app_id] = record
        return latest

    # -- internals --------------------------------------------------------------
    def _open(self):
        if self._handle is None:
            self._dir.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "a", encoding="utf-8")
        return self._handle

    @staticmethod
    def _crc(record: Mapping[str, Any]) -> int:
        payload = {k: record[k] for k in ("seq", "app_id", "state", "digest")}
        return zlib.crc32(_canonical(payload).encode("utf-8"))

    def _iter_valid(self) -> Iterator[JournalRecord]:
        try:
            lines = self._path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return
        except (OSError, UnicodeDecodeError):
            self.truncated_tail = True
            return
        for line in lines:
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                self.truncated_tail = True
                return
            if not isinstance(data, dict):
                self.truncated_tail = True
                return
            try:
                seq = int(data["seq"])
                app_id = str(data["app_id"])
                state = data["state"]
                digest = str(data["digest"])
                crc = int(data["crc"])
            except (KeyError, TypeError, ValueError):
                self.truncated_tail = True
                return
            if not isinstance(state, dict) or self._crc(data) != crc:
                self.truncated_tail = True
                return
            if state_digest(state) != digest:
                self.truncated_tail = True
                return
            yield JournalRecord(seq=seq, app_id=app_id, state=state, digest=digest)

    def _quarantine(self) -> None:
        target = self._path.with_name(self._path.name + _QUARANTINE_SUFFIX)
        try:
            os.replace(self._path, target)
        except OSError:
            pass
