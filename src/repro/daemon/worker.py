"""Regulated worker subprocess: the daemon's low-importance client.

``python -m repro.daemon.worker`` is the process the daemon spawns and
supervises.  It runs one of the paper's two canonical low-importance
workloads in miniature — a *groveler* (checksumming scans over a data
block, MS Manners' original SIS groveler stand-in) or a *compressor*
(zlib over the same block) — and calls :meth:`DaemonClient.testpoint`
after every work unit with its cumulative progress counter, exactly the
embedding the paper prescribes for a real application.

The worker is deliberately thin: all regulation, persistence, and fault
recovery lives daemon-side or in the client.  What the worker owns is
its exit discipline — ``bye`` and exit 0 on a clean drain
(:class:`~repro.daemon.client.DaemonShutdown`), exit 3 when the daemon
is unreachable so the supervising daemon's restart backoff (or an
operator) can tell "worker finished" from "worker abandoned".
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import zlib
from typing import Callable

from repro.daemon.client import DaemonClient, DaemonShutdown, DaemonUnavailable

__all__ = ["make_workload", "run_worker", "main"]

#: Exit status when the daemon cannot be reached at all.
EXIT_UNAVAILABLE = 3


def make_workload(kind: str, unit_bytes: int) -> Callable[[int], int]:
    """Build one work-unit function: ``unit(i) -> bytes processed``.

    The block each unit processes is deterministic per worker kind, so a
    restarted worker does the same work — and the bytes counter it
    reports stays an honest progress metric.
    """
    block = zlib.compress(bytes(range(256)) * max(unit_bytes // 256, 1), level=1)
    block = (block * (unit_bytes // max(len(block), 1) + 1))[:unit_bytes]
    if kind == "groveler":

        def unit(i: int) -> int:
            digest = hashlib.sha256(block)
            digest.update(i.to_bytes(8, "little"))
            digest.hexdigest()
            return len(block)

        return unit
    if kind == "compressor":

        def unit(i: int) -> int:
            zlib.compress(block + i.to_bytes(8, "little"), level=6)
            return len(block)

        return unit
    raise ValueError(f"unknown worker kind {kind!r} (want groveler or compressor)")


def run_worker(
    socket_path: str,
    name: str,
    kind: str = "groveler",
    app_id: str | None = None,
    unit_bytes: int = 262144,
    max_units: int | None = None,
) -> int:
    """Run the work/testpoint loop until drain or ``max_units``; exit code."""
    unit = make_workload(kind, unit_bytes)
    client = DaemonClient(socket_path, name=name, app_id=app_id)
    try:
        client.connect()
    except DaemonUnavailable:
        return EXIT_UNAVAILABLE
    processed = 0
    done = 0
    try:
        while max_units is None or done < max_units:
            processed += unit(done)
            done += 1
            client.testpoint([float(processed)])
    except DaemonShutdown:
        return 0
    except DaemonUnavailable:
        return EXIT_UNAVAILABLE
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.daemon.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro.daemon.worker", description="regulated worker subprocess"
    )
    parser.add_argument("--socket", required=True, help="daemon socket path")
    parser.add_argument("--name", required=True, help="unique worker name")
    parser.add_argument(
        "--kind",
        default="groveler",
        choices=("groveler", "compressor"),
        help="workload to run (default: groveler)",
    )
    parser.add_argument(
        "--app-id", default=None, help="calibration identity (default: worker name)"
    )
    parser.add_argument(
        "--unit-bytes",
        type=int,
        default=262144,
        help="bytes processed per work unit (default: 262144)",
    )
    parser.add_argument(
        "--max-units",
        type=int,
        default=None,
        help="stop after this many units (default: run until drained)",
    )
    args = parser.parse_args(argv)
    return run_worker(
        socket_path=args.socket,
        name=args.name,
        kind=args.kind,
        app_id=args.app_id,
        unit_bytes=args.unit_bytes,
        max_units=args.max_units,
    )


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    sys.exit(main())
