"""Synchronous worker-side client for the regulator daemon.

:class:`DaemonClient` is what a regulated worker process embeds in place
of an in-process :class:`~repro.realtime.adapter.RealTimeRegulator`: it
connects to the daemon's socket, reports progress with
:meth:`testpoint`, and blocks until the daemon says proceed — the park
happens on the daemon side, so from the worker's perspective a
suspension is just a slow reply punctuated by ``wait`` frames.

All of the client's robustness is in :meth:`testpoint`'s receive loop,
which is built so that *any* single IPC failure converges back to a
correct decision:

* a reply that never arrives (dropped request, dropped reply, hung
  daemon) trips the per-message timeout and the request is
  **retransmitted with the same sequence number** — the daemon either
  processes it fresh or serves its cached decision, never both;
* a damaged line (torn frame) is counted and skipped, leaving the
  timeout to drive the retransmit;
* a duplicated reply (or the late original overtaken by a retransmit)
  carries a stale ``seq`` and is discarded;
* a dead connection is rebuilt with capped exponential backoff and the
  in-flight request retransmitted over the new connection.

The client keeps cumulative counters of these absorptions
(:attr:`stats`) and piggybacks them on every testpoint frame, which is
how client-side recoveries become :class:`~repro.obs.events.RecoveryAction`
events in the daemon's trace.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Sequence

from repro.core.errors import MannersError
from repro.daemon.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)

__all__ = ["DaemonClient", "ControlClient", "DaemonShutdown", "DaemonUnavailable"]


class DaemonShutdown(MannersError):
    """The daemon announced a drain; the worker should finish and exit."""


class DaemonUnavailable(MannersError):
    """The daemon could not be reached within the retry budget."""


class DaemonClient:
    """One worker's connection to the regulator daemon.

    Args:
        socket_path: The daemon's Unix socket.
        name: This worker's unique name (its supervisor thread id).
        app_id: Calibration identity (defaults to ``name``); workers that
            share an ``app_id`` share persisted targets across restarts.
        priority: Relative scheduling priority among this daemon's workers.
        message_timeout: Seconds to wait for any frame before
            retransmitting the in-flight request.
        max_retransmits: Retransmissions on one connection before the
            client assumes the connection itself is damaged and rebuilds it.
        reconnect_attempts: Connection builds to attempt before giving up
            with :class:`DaemonUnavailable`.
    """

    def __init__(
        self,
        socket_path: str,
        name: str,
        app_id: str | None = None,
        priority: int = 0,
        connect_timeout: float = 5.0,
        message_timeout: float = 2.0,
        max_retransmits: int = 3,
        reconnect_attempts: int = 10,
        reconnect_backoff: float = 0.2,
        reconnect_backoff_cap: float = 2.0,
    ) -> None:
        self.socket_path = socket_path
        self.name = name
        self.app_id = app_id if app_id is not None else name
        self.priority = priority
        self.connect_timeout = connect_timeout
        self.message_timeout = message_timeout
        self.max_retransmits = max_retransmits
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_backoff_cap = reconnect_backoff_cap
        #: Cumulative client-side recovery counters, piggybacked on every
        #: testpoint frame so the daemon can emit the matching events.
        self.stats: dict[str, int] = {"resends": 0, "dups": 0, "bad_frames": 0}
        self._sock: socket.socket | None = None
        self._buffer = bytearray()
        self._seq = 0

    # -- connection ------------------------------------------------------------
    @property
    def connected(self) -> bool:
        """Whether a handshaken connection is currently held."""
        return self._sock is not None

    def connect(self) -> None:
        """Connect and handshake; raises :class:`DaemonUnavailable`.

        Retries with capped exponential backoff, so a worker started
        moments before its daemon still comes up cleanly.
        """
        backoff = self.reconnect_backoff
        last_error: Exception | None = None
        for _ in range(max(self.reconnect_attempts, 1)):
            try:
                self._connect_once()
                return
            except DaemonShutdown:
                raise
            except (OSError, ProtocolError) as exc:
                last_error = exc
                self._drop_connection()
                time.sleep(backoff)
                backoff = min(backoff * 2.0, self.reconnect_backoff_cap)
        raise DaemonUnavailable(
            f"cannot reach daemon at {self.socket_path}: {last_error}"
        )

    def _connect_once(self) -> None:
        self._drop_connection()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        sock.connect(self.socket_path)
        self._sock = sock
        self._buffer = bytearray()
        self._send_frame(
            {
                "op": "hello",
                "proto": PROTOCOL_VERSION,
                "role": "worker",
                "name": self.name,
                "app_id": self.app_id,
                "priority": self.priority,
            }
        )
        reply = self._recv_frame(self.connect_timeout)
        if reply.get("op") == "reject":
            raise DaemonShutdown(
                f"daemon rejected {self.name!r}: {reply.get('reason', 'unknown')}"
            )
        if reply.get("op") != "welcome":
            raise ProtocolError(f"expected welcome, got {reply.get('op')!r}")

    def close(self) -> None:
        """Release cleanly (``bye``) and drop the connection."""
        if self._sock is not None:
            try:
                self._send_frame({"op": "bye", "seq": self._seq})
            except OSError:
                pass
        self._drop_connection()

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._buffer = bytearray()

    # -- the testpoint call ----------------------------------------------------
    def testpoint(self, metrics: Sequence[float], index: int = 0) -> dict[str, Any]:
        """Report progress; block until the daemon's decision arrives.

        Returns the decision frame (``processed``, ``delay``,
        ``judgment``...).  The block spans the daemon-side park — the
        mandated suspension plus the wait for the execution slot.

        Raises :class:`DaemonShutdown` when the daemon announces a drain
        and :class:`DaemonUnavailable` when it cannot be reached at all.
        """
        if self._sock is None:
            self.connect()
        self._seq += 1
        seq = self._seq
        frame = {
            "op": "testpoint",
            "seq": seq,
            "index": index,
            "metrics": [float(v) for v in metrics],
            "stats": dict(self.stats),
        }
        self._transmit(frame)
        retransmits = 0
        while True:
            try:
                reply = self._recv_frame(self.message_timeout)
            except socket.timeout:
                retransmits += 1
                if retransmits > self.max_retransmits:
                    # The connection itself is suspect; rebuild it.
                    self.connect()
                    retransmits = 0
                self.stats["resends"] += 1
                frame["stats"] = dict(self.stats)
                self._transmit(frame)
                continue
            except ProtocolError:
                # A torn or corrupted line: skip it; the timeout-driven
                # retransmit recovers whatever it was carrying.
                self.stats["bad_frames"] += 1
                continue
            except (OSError, ConnectionError):
                self.connect()
                self.stats["resends"] += 1
                frame["stats"] = dict(self.stats)
                self._transmit(frame)
                continue
            op = reply.get("op")
            if op == "decision":
                if reply.get("seq") == seq:
                    return reply
                # Stale or duplicated reply; ours is still coming.
                self.stats["dups"] += 1
                continue
            if op == "wait":
                continue  # still parked; the timeout restarts from here
            if op == "shutdown":
                self._drop_connection()
                raise DaemonShutdown("daemon is draining")
            if op == "pong":
                continue
            # Unexpected but well-formed frame: ignore it.

    def ping(self) -> bool:
        """Probe the daemon; ``True`` when it answers within the timeout."""
        if self._sock is None:
            self.connect()
        try:
            self._send_frame({"op": "ping", "seq": self._seq})
            while True:
                reply = self._recv_frame(self.message_timeout)
                if reply.get("op") == "shutdown":
                    self._drop_connection()
                    raise DaemonShutdown("daemon is draining")
                if reply.get("op") == "pong":
                    return True
        except (OSError, ProtocolError):
            return False

    def _transmit(self, frame: dict[str, Any]) -> None:
        try:
            self._send_frame(frame)
        except (OSError, ConnectionError):
            self.connect()
            self._send_frame(frame)

    # -- framing over the stream socket ----------------------------------------
    def _send_frame(self, frame: dict[str, Any]) -> None:
        if self._sock is None:
            raise OSError("not connected")
        self._sock.sendall(encode_frame(frame))

    def _recv_frame(self, timeout: float) -> dict[str, Any]:
        """Read one line within ``timeout``; decode it as a frame.

        Raises :class:`socket.timeout` when no complete line arrives,
        :class:`ProtocolError` when the line does not decode, and
        :class:`ConnectionError` at EOF.
        """
        if self._sock is None:
            raise OSError("not connected")
        deadline = time.monotonic() + timeout
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return decode_frame(line)
            if len(self._buffer) > MAX_FRAME_BYTES:
                del self._buffer[:]
                raise ProtocolError("unterminated frame exceeded the size bound")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout("timed out waiting for a frame")
            self._sock.settimeout(remaining)
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self._buffer.extend(chunk)

    def __enter__(self) -> "DaemonClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ControlClient:
    """Request/response client for the daemon's control protocol.

    Used by ``repro daemon status``/``stop`` and the soak harness.  One
    frame out, one reply back; no retransmission machinery — control
    callers handle a dead daemon themselves (that state is often exactly
    what they are probing for).
    """

    def __init__(
        self, socket_path: str, connect_timeout: float = 5.0, timeout: float = 5.0
    ) -> None:
        self.socket_path = socket_path
        self.connect_timeout = connect_timeout
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buffer = bytearray()
        self._seq = 0

    def connect(self) -> None:
        """Connect and handshake in the ``control`` role."""
        self.close()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        sock.connect(self.socket_path)
        self._sock = sock
        self._buffer = bytearray()
        sock.sendall(
            encode_frame(
                {"op": "hello", "proto": PROTOCOL_VERSION, "role": "control"}
            )
        )
        reply = self._recv(self.connect_timeout)
        if reply.get("op") != "welcome":
            raise ProtocolError(f"expected welcome, got {reply.get('op')!r}")

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one control frame; return the daemon's reply frame."""
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        self._seq += 1
        self._sock.sendall(encode_frame({"op": op, "seq": self._seq, **fields}))
        return self._recv(self.timeout)

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._buffer = bytearray()

    def _recv(self, timeout: float) -> dict[str, Any]:
        assert self._sock is not None
        deadline = time.monotonic() + timeout
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return decode_frame(line)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout("timed out waiting for a control reply")
            self._sock.settimeout(remaining)
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the control connection")
            self._buffer.extend(chunk)

    def __enter__(self) -> "ControlClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
