"""The supervised regulator daemon: an asyncio IPC superintendent.

:class:`RegulatorDaemon` promotes the in-process realtime adapter to a
long-running service (ROADMAP item 5, the paper's §4.5 superintendent as
something you can actually deploy): real OS worker subprocesses connect
over a local Unix socket, report progress through the JSON-line protocol
of :mod:`repro.daemon.protocol`, and are time-multiplexed and suspended
by the same pure :class:`~repro.core.supervisor.Supervisor` that drives
the simulator — the daemon only supplies the wire, the clock, and the
failure handling.

Robustness is the design center; every mechanism pairs a failure with a
recovery the telemetry trace can prove happened:

* **liveness** — every worker frame refreshes ``last_seen``; a worker
  that owes the daemon a testpoint and goes silent past the heartbeat
  timeout is evicted (``peer_unresponsive`` → ``worker_evicted``), its
  execution slot released so siblings keep regulating;
* **crash recovery** — a worker whose connection drops while registered
  is unregistered and its slot freed (``worker_lost`` →
  ``slot_released``); daemon-spawned workers are respawned with capped
  exponential backoff (``worker_exit`` → ``worker_restarted``);
* **idempotent IPC** — retransmitted testpoints (the client's answer to
  a dropped or truncated frame) are served from the per-session decision
  cache (``resend_served`` / ``retransmit_absorbed``), duplicated
  replies are discarded client-side and acknowledged server-side
  (``duplicate_discarded``);
* **crash-safe calibration** — targets journal through
  :class:`~repro.daemon.journal.StateJournal` (fsynced write-ahead
  records) between atomic :class:`~repro.core.persistence.TargetStore`
  snapshots, so a ``kill -9`` loses at most one journal interval and a
  restart restores state bit-identically (``state_restored``, digests
  exposed over the control protocol);
* **graceful drain** — SIGTERM/SIGINT snapshot every regulator, compact
  the journal, notify workers (``shutdown`` frames), and only then exit
  (``drain_flush``);
* **observability isolation** — telemetry flows through
  :class:`~repro.obs.telemetry.Telemetry`'s failure-absorbing emit path
  and a :class:`~repro.obs.flightrec.FlightRecorder` auto-dumps the
  event ring on every injected fault; a broken sink never blocks a
  regulation decision.

Chaos (:mod:`repro.daemon.chaos`) is wired into the same read/write
paths the real faults would hit, so the soak harness exercises exactly
the recovery machinery listed above.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import sys
import time
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro import __version__
from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.errors import MetricError, PersistenceError
from repro.core.persistence import TargetStore
from repro.core.supervisor import Supervisor
from repro.daemon.chaos import ChaosState
from repro.daemon.journal import StateJournal, state_digest
from repro.daemon.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    require_fields,
)
from repro.faults.plan import FaultPlan
from repro.obs import events as obs_events
from repro.realtime.deadlines import DeadlineQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["WorkerSpec", "RegulatorDaemon"]

#: How long a connecting peer gets to complete its handshake.
_HANDSHAKE_TIMEOUT = 10.0

#: Outbound frame ops the chaos wire hooks may damage (never handshake
#: or shutdown frames — those faults are modelled as connection loss).
_CHAOS_SENDABLE = ("decision", "wait", "pong")


class WorkerSpec:
    """One worker subprocess the daemon spawns and supervises."""

    __slots__ = ("kind", "name", "app_id", "unit_bytes")

    def __init__(
        self, kind: str, name: str, app_id: str | None = None, unit_bytes: int = 262144
    ) -> None:
        self.kind = kind
        self.name = name
        self.app_id = app_id if app_id is not None else name
        self.unit_bytes = unit_bytes

    @classmethod
    def parse(cls, text: str) -> list["WorkerSpec"]:
        """Parse a CLI spec like ``compressor:w1,groveler:w2``."""
        specs = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            kind, _, name = part.partition(":")
            if not name:
                raise ValueError(f"worker spec {part!r} is not KIND:NAME")
            specs.append(cls(kind=kind, name=name))
        return specs


class _Session:
    """Daemon-side state for one connected worker."""

    __slots__ = (
        "name",
        "app_id",
        "writer",
        "last_seen",
        "last_seq",
        "last_decision",
        "parked",
        "seated",
        "hang_until",
        "dropped_seqs",
        "client_stats",
        "registered",
        "testpoints",
        "closed",
    )

    def __init__(self, name: str, app_id: str, writer: asyncio.StreamWriter) -> None:
        self.name = name
        self.app_id = app_id
        self.writer = writer
        self.last_seen = 0.0
        self.last_seq = 0
        self.last_decision: dict[str, Any] | None = None
        self.parked = False
        self.seated = asyncio.Event()
        self.hang_until = 0.0
        self.dropped_seqs: set[int] = set()
        self.client_stats = {"resends": 0, "dups": 0, "bad_frames": 0}
        self.registered = False
        self.testpoints = 0
        self.closed = False


class RegulatorDaemon:
    """Supervised IPC regulation service over a local Unix socket."""

    def __init__(
        self,
        socket_path: str,
        state_dir: str | None = None,
        config: MannersConfig = DEFAULT_CONFIG,
        telemetry: "Telemetry | None" = None,
        workers: Sequence[WorkerSpec] = (),
        chaos_plan: FaultPlan | None = None,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 5.0,
        save_interval: float = 30.0,
        journal_interval: float = 1.0,
        fsync_journal: bool = True,
        restart_backoff: float = 0.25,
        restart_backoff_cap: float = 5.0,
        engine_core: str | None = None,
    ) -> None:
        self.socket_path = socket_path
        self._config = config
        self._telemetry = telemetry
        self._supervisor = Supervisor(
            config, process_id="daemon", telemetry=telemetry
        )
        self._store = (
            TargetStore(state_dir, strict=False, telemetry=telemetry)
            if state_dir is not None
            else None
        )
        self._journal = (
            StateJournal(state_dir, fsync=fsync_journal)
            if state_dir is not None
            else None
        )
        self._worker_specs = list(workers)
        self._chaos_plan = chaos_plan
        self.chaos = ChaosState()
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.save_interval = save_interval
        self.journal_interval = journal_interval
        self._restart_backoff = restart_backoff
        self._restart_backoff_cap = restart_backoff_cap
        #: Which event core orders the daemon's periodic deadlines
        #: (``None`` consults ``REPRO_ENGINE``, wheel by default) — the
        #: deployable path runs the same core as the simulator.
        self.engine_core = engine_core

        self._sessions: dict[str, _Session] = {}
        self._worker_procs: dict[str, asyncio.subprocess.Process] = {}
        self._journal_digests: dict[str, str] = {}
        self._restored_states: dict[str, Mapping[str, Any]] = {}
        #: Digest of each application's state as restored at registration
        #: (the bit-identical-restore claim, queryable over control IPC).
        self.restored_digests: dict[str, str] = {}
        self.counters: dict[str, int] = {
            "testpoints": 0,
            "decisions": 0,
            "suspensions": 0,
            "evictions": 0,
            "worker_restarts": 0,
            "journal_appends": 0,
            "snapshots": 0,
            "faults_injected": 0,
            "recoveries": 0,
            "protocol_errors": 0,
        }
        self._started_at = 0.0
        self._stopping = False
        self._drain_reason: str | None = None
        self._drained = asyncio.Event()
        self._kick = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []

    # -- time ------------------------------------------------------------------
    @staticmethod
    def _now() -> float:
        return time.monotonic()

    # -- lifecycle -------------------------------------------------------------
    async def run(
        self,
        duration: float | None = None,
        ready: asyncio.Event | None = None,
        install_signals: bool = False,
    ) -> None:
        """Serve until drained (signal, control ``stop``, or ``duration``).

        ``ready`` is set once the socket is listening (tests and the soak
        harness use it to sequence worker startup).  ``install_signals``
        arms SIGTERM/SIGINT drain handlers (main-thread only).
        """
        self._started_at = self._now()
        self._restore_journal()
        # A kill -9 leaves the previous incarnation's socket file behind;
        # binding must not fail because the daemon died ungracefully.
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        self._server = await asyncio.start_unix_server(
            self._on_connection, path=self.socket_path
        )
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(
                        signum, self.request_drain, signal.Signals(signum).name
                    )
        self._tasks = [
            asyncio.create_task(self._scheduler_loop()),
            asyncio.create_task(self._liveness_loop()),
        ]
        if self._store is not None:
            self._tasks.append(asyncio.create_task(self._persistence_loop()))
        if self._chaos_plan is not None and len(self._chaos_plan):
            self._tasks.append(asyncio.create_task(self._chaos_loop()))
        for spec in self._worker_specs:
            self._tasks.append(asyncio.create_task(self._supervise_worker(spec)))
        if duration is not None:
            self._tasks.append(asyncio.create_task(self._deadline(duration)))
        if ready is not None:
            ready.set()
        await self._drained.wait()
        await self._shutdown()

    def request_drain(self, reason: str = "requested") -> None:
        """Begin a graceful drain (idempotent; safe from signal handlers)."""
        if self._stopping:
            return
        self._stopping = True
        self._drain_reason = reason
        self._drained.set()
        # Unpark everyone so their handlers can finish and observe the drain.
        for session in self._sessions.values():
            session.seated.set()

    async def _deadline(self, duration: float) -> None:
        await asyncio.sleep(duration)
        self.request_drain("duration")

    async def _shutdown(self) -> None:
        # Stop accepting new peers first.
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        # Tell workers to finish; they exit and their supervision tasks see
        # the drain flag and do not respawn them.
        for session in list(self._sessions.values()):
            with contextlib.suppress(Exception):
                session.writer.write(encode_frame({"op": "shutdown"}))
                await session.writer.drain()
        # Flush calibration: snapshot every known state, then drop the
        # journal (its records are now covered by the atomic snapshots).
        self._persist_all(final=True)
        self._emit_recovery("drain_flush", detail=self._drain_reason or "")
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        for proc in self._worker_procs.values():
            if proc.returncode is None:
                with contextlib.suppress(ProcessLookupError):
                    proc.terminate()
        # Reap before the loop closes, or the subprocess transports leak
        # "event loop is closed" warnings from their exit callbacks.
        for proc in self._worker_procs.values():
            if proc.returncode is None:
                try:
                    await asyncio.wait_for(proc.wait(), timeout=3.0)
                except (asyncio.TimeoutError, Exception):
                    with contextlib.suppress(ProcessLookupError):
                        proc.kill()
                    with contextlib.suppress(Exception):
                        await proc.wait()
        for session in list(self._sessions.values()):
            with contextlib.suppress(Exception):
                session.writer.close()
        if self._journal is not None:
            self._journal.close()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        tel = self._telemetry
        if tel is not None:
            tel.flush()

    # -- startup restore -------------------------------------------------------
    def _restore_journal(self) -> None:
        """Replay the write-ahead journal into the restore cache."""
        if self._journal is None:
            return
        latest = self._journal.latest_states()
        if self._journal.truncated_tail:
            self._emit_anomaly(
                "journal_torn", detail=str(self._journal.path)
            )
            self._emit_recovery("journal_truncated", detail=str(self._journal.path))
        for app_id, record in latest.items():
            self._restored_states[app_id] = record.state
            self._journal_digests[app_id] = record.digest

    def _restore_state_for(self, app_id: str) -> Mapping[str, Any] | None:
        """The persisted state for one application: journal over snapshot."""
        state = self._restored_states.get(app_id)
        if state is not None:
            return state
        if self._store is None:
            return None
        try:
            state = self._store.load(app_id)
        except PersistenceError as exc:
            self._emit_anomaly("corrupt_target", detail=str(exc))
            self._emit_recovery("rebootstrap", detail=app_id)
            return None
        if state is not None:
            self._restored_states[app_id] = state
        return state

    # -- connection handling ---------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await asyncio.wait_for(reader.readline(), _HANDSHAKE_TIMEOUT)
            hello = decode_frame(line.rstrip(b"\n"))
            if hello.get("op") != "hello":
                raise ProtocolError(f"expected hello, got {hello.get('op')!r}")
            proto = hello.get("proto")
            if proto != PROTOCOL_VERSION:
                self._emit_anomaly("protocol_mismatch", detail=f"peer proto {proto!r}")
                writer.write(
                    encode_frame(
                        {
                            "op": "reject",
                            "reason": f"protocol version {proto!r} unsupported "
                            f"(daemon speaks {PROTOCOL_VERSION})",
                        }
                    )
                )
                await writer.drain()
                return
        except (
            asyncio.TimeoutError,
            ProtocolError,
            ConnectionError,
            asyncio.IncompleteReadError,
        ) as exc:
            self.counters["protocol_errors"] += 1
            self._emit_anomaly("protocol_error", detail=str(exc))
            with contextlib.suppress(Exception):
                writer.close()
            return
        role = hello.get("role", "worker")
        if role == "control":
            await self._control_loop(reader, writer)
            return
        await self._worker_loop(hello, reader, writer)

    async def _worker_loop(
        self,
        hello: Mapping[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            require_fields(hello, "name")
        except ProtocolError as exc:
            self._emit_anomaly("protocol_error", detail=str(exc))
            writer.close()
            return
        name = str(hello["name"])
        app_id = str(hello.get("app_id") or name)
        priority = int(hello.get("priority", 0))
        # A reconnecting worker (its answer to a damaged connection)
        # displaces its old session rather than being refused.
        old = self._sessions.get(name)
        if old is not None:
            self._emit_recovery("reconnect_rebound", detail=name)
            self._cleanup_session(old, expected=True)
        session = _Session(name, app_id, writer)
        session.last_seen = self._now()
        self._sessions[name] = session
        regulator = self._supervisor.register_thread(name, priority=priority)
        session.registered = True
        persisted = self._restore_state_for(app_id)
        if persisted is not None:
            regulator.import_state(persisted)
            digest = state_digest(regulator.export_state())
            if app_id not in self.restored_digests:
                self.restored_digests[app_id] = digest
                self._emit_recovery("state_restored", detail=app_id)
                expected = self._journal_digests.get(app_id)
                if expected is not None and expected != digest:
                    self._emit_anomaly(
                        "restore_mismatch",
                        detail=f"{app_id}: journal {expected[:12]} != restored {digest[:12]}",
                    )
        writer.write(
            encode_frame(
                {"op": "welcome", "proto": PROTOCOL_VERSION, "server": __version__}
            )
        )
        await writer.drain()
        expected_exit = False
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                session.last_seen = self._now()
                try:
                    frame = decode_frame(line.rstrip(b"\n"))
                except ProtocolError as exc:
                    # Inbound damage: count it and wait for the retransmit.
                    self.counters["protocol_errors"] += 1
                    self._emit_anomaly("bad_frame", detail=f"{name}: {exc}")
                    continue
                await self._maybe_hang(session)
                op = frame.get("op")
                if op == "testpoint":
                    await self._on_testpoint(session, frame)
                elif op == "ping":
                    await self._send(session, {"op": "pong", "seq": frame.get("seq", 0)})
                elif op == "bye":
                    expected_exit = True
                    break
                else:
                    self._emit_anomaly(
                        "protocol_error", detail=f"{name}: unexpected {op!r}"
                    )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if self._sessions.get(name) is session:
                self._cleanup_session(session, expected=expected_exit or self._stopping)

    def _cleanup_session(self, session: _Session, expected: bool) -> None:
        """Unregister a departed worker and free its execution slot."""
        if session.closed:
            return
        session.closed = True
        session.seated.set()
        if self._sessions.get(session.name) is session:
            del self._sessions[session.name]
        if session.registered:
            # Persist what the departed worker learned before dropping it.
            self._journal_session(session)
            with contextlib.suppress(Exception):
                self._supervisor.unregister_thread(session.name)
            session.registered = False
            if not expected:
                self._emit_anomaly("worker_lost", detail=session.name)
                self._emit_recovery("slot_released", detail=session.name)
        with contextlib.suppress(Exception):
            session.writer.close()
        self._kick.set()

    # -- the testpoint path ----------------------------------------------------
    async def _on_testpoint(self, session: _Session, frame: Mapping[str, Any]) -> None:
        try:
            require_fields(frame, "seq", "metrics")
            seq = int(frame["seq"])
            metrics = [float(v) for v in frame["metrics"]]
            index = int(frame.get("index", 0))
        except (ProtocolError, TypeError, ValueError) as exc:
            self.counters["protocol_errors"] += 1
            self._emit_anomaly("bad_frame", detail=f"{session.name}: {exc}")
            return
        self._absorb_client_stats(session, frame.get("stats"))
        if seq in session.dropped_seqs:
            # The retransmit of a frame our chaos hook swallowed.
            session.dropped_seqs.discard(seq)
            self._emit_recovery("retransmit_absorbed", detail=session.name)
        if seq <= session.last_seq:
            # Retransmit of an already-served testpoint: serve the cached
            # decision again rather than double-counting progress.
            if seq == session.last_seq and session.last_decision is not None:
                self._emit_recovery("resend_served", detail=session.name)
                await self._send(session, session.last_decision)
            return
        fault = self.chaos.take(session.name, ("msg_drop", "msg_delay"))
        delayed = False
        if fault is not None:
            if fault.kind == "msg_drop":
                self._emit_fault(fault.kind, session.name, fault.param)
                session.dropped_seqs.add(seq)
                return
            self._emit_fault(fault.kind, session.name, fault.param)
            await asyncio.sleep(fault.param)
            delayed = True
        now = self._now()
        try:
            decision = self._supervisor.on_testpoint(now, session.name, index, metrics)
        except MetricError as exc:
            self._emit_anomaly("metric_error", detail=f"{session.name}: {exc}")
            await self._send(session, {"op": "decision", "seq": seq, "processed": False,
                                       "delay": 0.0, "error": str(exc)})
            return
        self.counters["testpoints"] += 1
        session.testpoints += 1
        if decision.processed:
            if decision.delay > 0.0:
                self.counters["suspensions"] += 1
            await self._park(session)
            if session.closed or self._stopping:
                return
            resumed = self._now()
            self._supervisor.regulator(session.name).mark_resumed(resumed)
            tel = self._telemetry
            if tel is not None and decision.delay > 0.0:
                tel.tick(resumed)
                tel.emit(
                    obs_events.SuspensionEnded(
                        t=resumed, src=session.name, slept=resumed - now
                    )
                )
        reply = {
            "op": "decision",
            "seq": seq,
            "processed": decision.processed,
            "delay": decision.delay,
            "judgment": decision.judgment.value if decision.judgment else None,
            "bootstrap": decision.bootstrap,
            "off_protocol": decision.off_protocol,
        }
        session.last_seq = seq
        session.last_decision = reply
        self.counters["decisions"] += 1
        await self._send(session, reply)
        if delayed:
            self._emit_recovery("delayed_delivery", detail=session.name)

    async def _park(self, session: _Session) -> None:
        """Hold the testpoint reply until the worker is seated again.

        The supervisor's eligibility gate covers both the mandated
        suspension and the wait for the execution slot.  While parked the
        worker receives ``wait`` frames each heartbeat interval so its
        short per-message timeout never mistakes a long suspension for a
        dead daemon.
        """
        session.parked = True
        session.seated.clear()
        self._kick.set()
        try:
            while not self._stopping and not session.closed:
                try:
                    await asyncio.wait_for(
                        session.seated.wait(), timeout=self.heartbeat_interval
                    )
                    return
                except asyncio.TimeoutError:
                    await self._send(session, {"op": "wait", "seq": session.last_seq + 1})
        finally:
            session.parked = False

    def _absorb_client_stats(self, session: _Session, stats: Any) -> None:
        """Fold the client's piggybacked recovery counters into the trace.

        The client deduplicates replies and skips damaged frames on its
        side of the wire; the cumulative counters it reports are the
        daemon's only evidence, so increments are what emit the matching
        recovery events.
        """
        if not isinstance(stats, Mapping):
            return
        previous = session.client_stats
        for key, action in (
            ("dups", "duplicate_discarded"),
            ("bad_frames", "bad_frame_skipped"),
        ):
            try:
                value = int(stats.get(key, 0))
            except (TypeError, ValueError):
                continue
            if value > previous.get(key, 0):
                self._emit_recovery(action, detail=session.name)
            previous[key] = max(previous.get(key, 0), value)
        with contextlib.suppress(TypeError, ValueError):
            previous["resends"] = max(
                previous.get("resends", 0), int(stats.get("resends", 0))
            )

    # -- outbound frames + chaos wire hooks ------------------------------------
    async def _maybe_hang(self, session: _Session) -> None:
        """Realize an armed ``peer_hang``: go silent toward this worker."""
        fault = self.chaos.take(session.name, ("peer_hang",))
        if fault is None:
            return
        self._emit_fault(fault.kind, session.name, fault.param)
        session.hang_until = self._now() + fault.param
        await asyncio.sleep(fault.param)
        session.hang_until = 0.0
        self._emit_recovery("hang_recovered", detail=session.name)

    async def _send(self, session: _Session, frame: Mapping[str, Any]) -> None:
        """Write one frame to a worker, applying outbound chaos."""
        if session.closed:
            return
        try:
            data = encode_frame(frame)
        except ProtocolError as exc:  # pragma: no cover - daemon-built frames
            self._emit_anomaly("protocol_error", detail=str(exc))
            return
        if frame.get("op") in _CHAOS_SENDABLE:
            fault = self.chaos.take(session.name, ("msg_dup", "frame_truncate"))
            if fault is not None:
                self._emit_fault(fault.kind, session.name, fault.param)
                if fault.kind == "msg_dup":
                    data = data + data
                else:  # frame_truncate: a torn write, newline included so
                    # the worker sees exactly one unparseable line.
                    data = data[: max(len(data) // 2, 1)] + b"\n"
        try:
            session.writer.write(data)
            await session.writer.drain()
        except (ConnectionError, RuntimeError):
            self._cleanup_session(session, expected=False)

    # -- background loops ------------------------------------------------------
    async def _scheduler_loop(self) -> None:
        """Seat parked workers: the daemon's poll/check_hung pump."""
        while not self._stopping:
            now = self._now()
            evicted = self._supervisor.check_hung(now)
            if evicted is not None:
                self.counters["evictions"] += 1
            owner = self._supervisor.poll(now)
            if owner is not None:
                session = self._sessions.get(owner)
                if session is not None and session.parked:
                    session.seated.set()
            wake = self._supervisor.next_poll_time(now)
            timeout = 0.05
            if wake is not None:
                timeout = min(max(wake - now, 0.005), 0.2)
            self._kick.clear()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._kick.wait(), timeout)

    async def _liveness_loop(self) -> None:
        """Evict workers that owe a testpoint and have gone silent."""
        deadlines = DeadlineQueue(self.engine_core)

        def sweep() -> None:
            self._liveness_sweep()
            deadlines.schedule(self.heartbeat_interval, sweep)

        deadlines.schedule(self.heartbeat_interval, sweep)
        while not self._stopping:
            wait = deadlines.next_wait()
            await asyncio.sleep(
                wait if wait is not None else self.heartbeat_interval
            )
            deadlines.poll()

    def _liveness_sweep(self) -> None:
        now = self._now()
        for session in list(self._sessions.values()):
            if session.parked or session.closed:
                continue  # parked workers owe us nothing; we owe them
            if now < session.hang_until + self.heartbeat_timeout:
                continue  # self-inflicted silence (peer_hang chaos)
            if now - session.last_seen > self.heartbeat_timeout:
                self.counters["evictions"] += 1
                self._emit_anomaly(
                    "peer_unresponsive",
                    value=now - session.last_seen,
                    detail=session.name,
                )
                self._emit_recovery("worker_evicted", detail=session.name)
                self._cleanup_session(session, expected=True)

    async def _persistence_loop(self) -> None:
        """Journal changed calibration; snapshot + compact on the interval.

        Both cadences — the fast journal sweep and the slow snapshot —
        are deadlines on one :class:`DeadlineQueue`, so the engine core
        selected by ``REPRO_ENGINE`` orders them and the snapshot no
        longer piggybacks on journal-sweep arithmetic.
        """
        deadlines = DeadlineQueue(self.engine_core)

        def journal_sweep() -> None:
            for session in list(self._sessions.values()):
                self._journal_session(session)
            deadlines.schedule(self.journal_interval, journal_sweep)

        def snapshot() -> None:
            self._persist_all()
            deadlines.schedule(self.save_interval, snapshot)

        deadlines.schedule(self.journal_interval, journal_sweep)
        deadlines.schedule(self.save_interval, snapshot)
        while not self._stopping:
            wait = deadlines.next_wait()
            await asyncio.sleep(wait if wait is not None else self.journal_interval)
            deadlines.poll()

    def _journal_session(self, session: _Session) -> None:
        if self._journal is None or not session.registered:
            return
        try:
            state = self._supervisor.regulator(session.name).export_state()
        except Exception:
            return
        digest = state_digest(state)
        if self._journal_digests.get(session.app_id) == digest:
            return
        try:
            self._journal.append(session.app_id, state)
        except PersistenceError as exc:
            # Journal failure degrades durability, never regulation.
            self._emit_anomaly("save_failure", detail=str(exc))
            return
        self._journal_digests[session.app_id] = digest
        self._restored_states[session.app_id] = state
        self.counters["journal_appends"] += 1

    def _persist_all(self, final: bool = False) -> None:
        """Snapshot every known application state; compact on full success."""
        if self._store is None:
            return
        states: dict[str, Mapping[str, Any]] = dict(self._restored_states)
        for session in self._sessions.values():
            if not session.registered:
                continue
            try:
                states[session.app_id] = self._supervisor.regulator(
                    session.name
                ).export_state()
            except Exception:
                continue
        all_saved = True
        for app_id, state in states.items():
            try:
                self._store.save(app_id, state)
                self.counters["snapshots"] += 1
                self._journal_digests[app_id] = state_digest(state)
                self._restored_states[app_id] = state
            except PersistenceError as exc:
                all_saved = False
                self._emit_anomaly("save_failure", detail=f"{app_id}: {exc}")
                self._emit_recovery("save_skipped", detail=app_id)
        if all_saved and self._journal is not None:
            with contextlib.suppress(PersistenceError):
                self._journal.compact()
        if final and self._journal is not None and not all_saved:
            # Keep the journal: it still holds the states the snapshot
            # tier failed to take.
            pass

    async def _chaos_loop(self) -> None:
        """Arm each planned fault at its scheduled offset."""
        pairs = self.chaos.arm_plan(self._chaos_plan)
        start = self._now()
        for at, spec in pairs:
            delay = start + at - self._now()
            if delay > 0:
                await asyncio.sleep(delay)
            if self._stopping:
                return
            if spec.kind == "worker_kill":
                self._kill_worker(spec.target, spec.param)
            elif spec.kind == "daemon_kill":
                continue  # the soak harness owns the daemon's process
            else:
                self.chaos.arm(spec.kind, spec.target, spec.param)

    def _kill_worker(self, name: str, param: float = 0.0) -> None:
        proc = self._worker_procs.get(name)
        if proc is None or proc.returncode is not None:
            return
        self._emit_fault("worker_kill", name, param)
        with contextlib.suppress(ProcessLookupError):
            proc.kill()

    async def _supervise_worker(self, spec: WorkerSpec) -> None:
        """Spawn one worker subprocess; respawn with capped backoff."""
        backoff = self._restart_backoff
        while not self._stopping:
            started = self._now()
            try:
                proc = await asyncio.create_subprocess_exec(
                    sys.executable,
                    "-m",
                    "repro.daemon.worker",
                    "--socket",
                    self.socket_path,
                    "--name",
                    spec.name,
                    "--kind",
                    spec.kind,
                    "--app-id",
                    spec.app_id,
                    "--unit-bytes",
                    str(spec.unit_bytes),
                )
            except OSError as exc:
                self._emit_anomaly("worker_spawn_failed", detail=f"{spec.name}: {exc}")
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2.0, self._restart_backoff_cap)
                continue
            self._worker_procs[spec.name] = proc
            returncode = await proc.wait()
            if self._stopping:
                return
            self._emit_anomaly(
                "worker_exit", value=float(returncode), detail=spec.name
            )
            if self._now() - started > 5.0:
                backoff = self._restart_backoff  # it ran; reset the backoff
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2.0, self._restart_backoff_cap)
            if self._stopping:
                return
            self.counters["worker_restarts"] += 1
            self._emit_recovery("worker_restarted", detail=spec.name)

    # -- control protocol ------------------------------------------------------
    async def _control_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(
            encode_frame(
                {"op": "welcome", "proto": PROTOCOL_VERSION, "server": __version__}
            )
        )
        await writer.drain()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    frame = decode_frame(line.rstrip(b"\n"))
                except ProtocolError as exc:
                    writer.write(encode_frame({"op": "error", "reason": str(exc)}))
                    await writer.drain()
                    continue
                reply = self._control_reply(frame)
                writer.write(encode_frame(reply))
                await writer.drain()
                if frame.get("op") == "stop":
                    self.request_drain("control")
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    def _control_reply(self, frame: Mapping[str, Any]) -> dict[str, Any]:
        op = frame.get("op")
        seq = frame.get("seq", 0)
        if op == "status":
            now = self._now()
            return {
                "op": "ok",
                "seq": seq,
                "uptime": now - self._started_at,
                "counters": dict(self.counters),
                "workers": {
                    name: {
                        "app_id": s.app_id,
                        "parked": s.parked,
                        "testpoints": s.testpoints,
                        "silent_for": now - s.last_seen,
                    }
                    for name, s in self._sessions.items()
                },
            }
        if op == "digest":
            current: dict[str, str] = {}
            for session in self._sessions.values():
                if not session.registered:
                    continue
                try:
                    current[session.app_id] = state_digest(
                        self._supervisor.regulator(session.name).export_state()
                    )
                except Exception:
                    continue
            return {
                "op": "ok",
                "seq": seq,
                "restored": dict(self.restored_digests),
                "journal": dict(self._journal_digests),
                "current": current,
            }
        if op == "save":
            self._persist_all()
            return {"op": "ok", "seq": seq, "snapshots": self.counters["snapshots"]}
        if op == "inject":
            kind = frame.get("kind")
            target = str(frame.get("target", ""))
            param = float(frame.get("param", 0.0))
            try:
                if kind == "worker_kill":
                    self._kill_worker(target, param)
                else:
                    self.chaos.arm(str(kind), target, param)
            except Exception as exc:
                return {"op": "error", "seq": seq, "reason": str(exc)}
            return {"op": "ok", "seq": seq}
        if op == "stop":
            return {"op": "ok", "seq": seq, "draining": True}
        return {"op": "error", "seq": seq, "reason": f"unknown control op {op!r}"}

    # -- telemetry helpers -----------------------------------------------------
    def _emit_fault(self, kind: str, target: str, param: float = 0.0) -> None:
        self.counters["faults_injected"] += 1
        tel = self._telemetry
        if tel is not None:
            now = self._now()
            tel.tick(now)
            tel.emit(
                obs_events.FaultInjected(
                    t=now, src="daemon", fault=kind, target=target, param=param
                )
            )
            tel.flush()

    def _emit_anomaly(self, anomaly: str, value: float = 0.0, detail: str = "") -> None:
        tel = self._telemetry
        if tel is not None:
            now = self._now()
            tel.tick(now)
            tel.emit(
                obs_events.AnomalyDetected(
                    t=now, src="daemon", anomaly=anomaly, value=value, detail=detail
                )
            )

    def _emit_recovery(self, action: str, detail: str = "") -> None:
        self.counters["recoveries"] += 1
        tel = self._telemetry
        if tel is not None:
            now = self._now()
            tel.tick(now)
            tel.emit(
                obs_events.RecoveryAction(
                    t=now, src="daemon", action=action, detail=detail
                )
            )
            tel.flush()
