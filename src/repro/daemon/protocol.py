"""JSON-line IPC protocol between the regulator daemon and its workers.

The wire format is deliberately primitive — one UTF-8 JSON object per
``\\n``-terminated line over a local stream socket — because primitive
formats have primitive failure modes: a torn write is a line that does not
parse, a dead peer is EOF, and nothing needs length prefixes or state to
resynchronize (the next newline is always a frame boundary).  Everything
else robustness needs sits on top:

* a **versioned handshake** — the first frame each way is
  ``hello``/``welcome`` carrying :data:`PROTOCOL_VERSION`; a daemon
  refuses (``reject``) rather than half-understands a mismatched peer;
* **sequence numbers** — every worker request carries a monotone ``seq``
  echoed by the reply, so retransmitted requests are idempotent and
  duplicated or stale replies are discardable;
* **liveness frames** — a parked worker (waiting out a suspension or its
  turn at the execution slot) receives periodic ``wait`` frames, so "the
  answer is taking long" is distinguishable from "the daemon is gone"
  with a short per-message timeout;
* **bounded frames** — a line longer than :data:`MAX_FRAME_BYTES` is a
  protocol violation, not an allocation.

Frame vocabulary (the ``op`` key):

=============  =========  ====================================================
op             direction  meaning
=============  =========  ====================================================
``hello``      w → d      handshake: protocol version, role, name, app_id
``welcome``    d → w      handshake accepted; carries the server version
``reject``     d → w      handshake refused (version/role/name conflict)
``testpoint``  w → d      progress report; blocks until ``decision``
``decision``   d → w      the testpoint's verdict; the worker may proceed
``wait``       d → w      still parked; resets the worker's message timeout
``ping``       w → d      idle liveness probe
``pong``       d → w      liveness reply
``bye``        w → d      clean release before worker exit
``shutdown``   d → w      daemon is draining; finish up and exit
``status``     c → d      control: operating counters snapshot
``digest``     c → d      control: restored/current calibration digests
``save``       c → d      control: force a snapshot + journal compaction
``inject``     c → d      control: arm one chaos fault (soak harness)
``stop``       c → d      control: request a graceful drain
``ok``/``error``  d → c   control reply envelope
=============  =========  ====================================================

(w = worker, d = daemon, c = control client.)
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.errors import MannersError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "require_fields",
]

#: Bumped whenever a frame is removed or changes meaning.  Additive changes
#: (a new op, a new optional field) keep the version: both ends ignore
#: unknown keys.
PROTOCOL_VERSION = 1

#: Upper bound on one serialized frame.  Far above any legitimate frame
#: (a testpoint is ~200 bytes) and far below anything that could hurt.
MAX_FRAME_BYTES = 1 << 20

#: Every op either end may legitimately send.
KNOWN_OPS = frozenset(
    {
        "hello",
        "welcome",
        "reject",
        "testpoint",
        "decision",
        "wait",
        "ping",
        "pong",
        "bye",
        "shutdown",
        "status",
        "digest",
        "save",
        "inject",
        "stop",
        "ok",
        "error",
    }
)


class ProtocolError(MannersError):
    """A frame violated the wire protocol (bad JSON, size, or shape).

    Both ends treat this as *peer damage*, never as a crash: the daemon
    drops damaged frames (the worker's retransmit recovers), and the
    worker counts and skips them (reported back as ``bad_frames`` so the
    daemon can emit the matching recovery event).
    """


def encode_frame(message: Mapping[str, Any]) -> bytes:
    """Serialize one frame to its newline-terminated wire form.

    Raises :class:`ProtocolError` when the message has no ``op``, is not
    JSON-serializable, or exceeds :data:`MAX_FRAME_BYTES`.
    """
    if "op" not in message:
        raise ProtocolError(f"frame has no op: {message!r}")
    try:
        line = json.dumps(message, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable frame: {exc}") from exc
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    return data


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises :class:`ProtocolError` for oversized, non-UTF-8, non-JSON,
    non-object, or op-less lines — every way a truncated or corrupted
    frame can manifest.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame is not an object: {message!r}")
    op = message.get("op")
    if not isinstance(op, str) or op not in KNOWN_OPS:
        raise ProtocolError(f"unknown frame op {op!r}")
    return message


def require_fields(message: Mapping[str, Any], *names: str) -> None:
    """Assert that ``message`` carries every named field.

    Raises :class:`ProtocolError` naming the first missing field; callers
    use it to validate a decoded frame before trusting its shape.
    """
    for name in names:
        if name not in message:
            raise ProtocolError(
                f"{message.get('op', '?')} frame is missing {name!r}"
            )
