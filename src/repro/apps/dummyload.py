"""Dummy load generators (paper sections 9.5 and 9.6).

The thread-isolation experiment (Figure 9) uses "dummy applications to
generate intensive disk and CPU loads", switched on and off on a schedule;
the calibration experiment (Figure 10) uses "a time-varying, bursty disk
load" whose mean varies sinusoidally (see
:func:`repro.simos.workload.bursty_schedule`).

Both are provided here as schedule-driven simulated processes:

* :class:`DiskHog` — saturates one disk with random 64 KB reads during
  each busy interval;
* :class:`CpuHog` — consumes the CPU at normal priority during each busy
  interval.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.simos.cpu import CpuPriority
from repro.simos.effects import Delay, DiskRead, Effect, UseCPU
from repro.simos.kernel import Kernel, SimThread
from repro.simos.workload import Burst

__all__ = ["DiskHog", "CpuHog"]


class DiskHog:
    """Random-read disk load following a busy/idle schedule."""

    def __init__(
        self,
        kernel: Kernel,
        disk: str,
        schedule: list[Burst],
        request_bytes: int = 65536,
        block_span: int = 500_000,
        process: str | None = None,
        seed: int = 23,
    ) -> None:
        self._kernel = kernel
        self._disk = disk
        self._schedule = schedule
        self._request_bytes = request_bytes
        self._span = block_span
        self._process = process or f"diskhog:{disk}"
        self._rng = random.Random(seed)
        self.thread: SimThread | None = None
        self.requests_issued = 0

    def spawn(self) -> SimThread:
        """Start replaying the schedule."""
        self.thread = self._kernel.spawn(
            self._process,
            self._body(),
            priority=CpuPriority.NORMAL,
            process=self._process,
        )
        return self.thread

    def _body(self) -> Generator[Effect, object, None]:
        for burst in self._schedule:
            now = self._kernel.now
            if now < burst.start:
                yield Delay(burst.start - now)
            while self._kernel.now < burst.end:
                block = self._rng.randrange(self._span)
                yield DiskRead(self._disk, block, self._request_bytes)
                self.requests_issued += 1


class CpuHog:
    """CPU-saturating load following a busy/idle schedule."""

    def __init__(
        self,
        kernel: Kernel,
        schedule: list[Burst],
        slice_seconds: float = 0.05,
        priority: CpuPriority = CpuPriority.NORMAL,
        process: str = "cpuhog",
        duty: float = 1.0,
    ) -> None:
        """``duty`` < 1 leaves breathing room each slice, approximating the
        priority boosting real schedulers give starved threads: a fully
        saturating normal-priority load would freeze low-priority threads
        outright, whereas the paper's observation is that their *progress
        rate* collapses and MS Manners suspends them."""
        if not 0.0 < duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {duty}")
        self._kernel = kernel
        self._schedule = schedule
        self._slice = slice_seconds
        self._priority = priority
        self._process = process
        self._duty = duty
        self.thread: SimThread | None = None
        self.cpu_consumed = 0.0

    def spawn(self) -> SimThread:
        """Start replaying the schedule."""
        self.thread = self._kernel.spawn(
            self._process,
            self._body(),
            priority=self._priority,
            process=self._process,
        )
        return self.thread

    def _body(self) -> Generator[Effect, object, None]:
        for burst in self._schedule:
            now = self._kernel.now
            if now < burst.start:
                yield Delay(burst.start - now)
            while self._kernel.now < burst.end:
                yield UseCPU(self._slice)
                self.cpu_consumed += self._slice
                if self._duty < 1.0:
                    yield Delay(self._slice * (1.0 - self._duty) / self._duty)
