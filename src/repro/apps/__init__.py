"""The paper's applications, rebuilt on the simulated OS.

Low-importance applications (regulated, or externally regulable via
performance counters):

* :class:`~repro.apps.defragmenter.Defragmenter` — section 8's disk
  defragmenter (metrics: blocks moved, move operations);
* :class:`~repro.apps.groveler.Groveler` — section 8's SIS Groveler
  (metrics: read operations, bytes read; unregulated journal thread);
* the section-5 exemplars: :class:`~repro.apps.indexer.ContentIndexer`
  (concurrent metrics), :class:`~repro.apps.archiver.Archiver` (phased
  metrics), :class:`~repro.apps.compressor.Compressor` (single metric),
  :class:`~repro.apps.scanner.VirusScanner`.

High-importance applications (the contention victims):

* :class:`~repro.apps.database.DatabaseServer` — SQL-Server stand-in
  running a TPC-C-style bulk load;
* :class:`~repro.apps.installer.Installer` — Office-Setup stand-in
  installing from a CD device.

Synthetic loads: :class:`~repro.apps.dummyload.DiskHog` and
:class:`~repro.apps.dummyload.CpuHog` replay busy/idle schedules for the
isolation and calibration experiments.
"""

from repro.apps.archiver import Archiver, ArchiverStats
from repro.apps.backup import BackupAgent, BackupStats
from repro.apps.base import AppResult, RegulationMode
from repro.apps.compressor import Compressor, CompressorStats
from repro.apps.database import DatabaseServer, LoadWorkload
from repro.apps.defragmenter import Defragmenter
from repro.apps.dummyload import CpuHog, DiskHog
from repro.apps.groveler import Groveler, GrovelerStats
from repro.apps.indexer import ContentIndexer, IndexerStats
from repro.apps.installer import Installer, InstallWorkload
from repro.apps.scanner import ScannerStats, VirusScanner

__all__ = [
    "AppResult",
    "Archiver",
    "ArchiverStats",
    "BackupAgent",
    "BackupStats",
    "Compressor",
    "CompressorStats",
    "ContentIndexer",
    "CpuHog",
    "DatabaseServer",
    "Defragmenter",
    "DiskHog",
    "Groveler",
    "GrovelerStats",
    "IndexerStats",
    "InstallWorkload",
    "Installer",
    "LoadWorkload",
    "RegulationMode",
    "ScannerStats",
    "VirusScanner",
]
