"""The disk defragmenter (paper section 8).

"The disk defragmenter progressively refines the disk layout by a series of
passes, each of which examines the layout and rearranges the blocks of one
or more files to improve their physical locality on the disk.  After each
relocation operation, the defragmenter calls the MS Manners testpoint
function with two non-orthogonal measures of progress: the count of file
blocks moved and the count of move operations.  The defragmenter creates a
separate execution thread for each disk partition."

This implementation performs one pass per volume (the experiments configure
it "to halt after one pass through the file system"): it walks files in id
order, and for each fragmented file reads every extent, rewrites the blocks
into a fresh contiguous allocation, commits the relocation, and — when
regulated through the library — testpoints with ``(blocks moved, move
operations)``.  When unregulated it publishes the same two numbers as
performance counters, which is what lets BeNice regulate the *unmodified*
defragmenter in the paper's Figure 3/5 "BeNice" columns.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import AppResult
from repro.simos.cpu import CpuPriority
from repro.simos.effects import DiskRead, DiskWrite, Effect, UseCPU
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel, SimThread
from repro.simos.perfcounters import PerfCounterRegistry
from repro.simos.sim_manners import MannersTestpoint, SimManners

__all__ = ["Defragmenter"]

#: CPU cost of updating filesystem metadata per relocation, in seconds.
_RELOCATE_CPU = 0.002


class Defragmenter:
    """One-pass disk defragmenter, one thread per volume."""

    def __init__(
        self,
        kernel: Kernel,
        volumes: list[Volume],
        manners: SimManners | None = None,
        registry: PerfCounterRegistry | None = None,
        process: str = "defrag",
        cpu_priority: CpuPriority = CpuPriority.NORMAL,
        chunk_bytes: int = 65536,
    ) -> None:
        """Configure a defragmenter.

        Args:
            kernel: The simulated machine.
            volumes: Partitions to defragment (one thread each).
            manners: When given, threads are regulated through the MS
                Manners library (testpoint after every relocation).
            registry: When given, progress is published as performance
                counters ``blocks_moved`` and ``move_ops`` (per volume),
                the interface BeNice polls.
            process: Process name (groups threads under one supervisor).
            cpu_priority: CPU priority class (the "CPU priority" columns
                run with :attr:`CpuPriority.LOW`).
            chunk_bytes: I/O transfer size for relocations.
        """
        self._kernel = kernel
        self._volumes = volumes
        self._manners = manners
        self._registry = registry
        self._process = process
        self._cpu_priority = cpu_priority
        self._chunk = chunk_bytes
        self.results: dict[str, AppResult] = {}
        self.threads: dict[str, SimThread] = {}

    def spawn(self, start_after: float = 0.0) -> list[SimThread]:
        """Create one defragmentation thread per volume."""
        spawned = []
        for volume in self._volumes:
            name = f"{self._process}:{volume.name}"
            result = AppResult(name=name, totals={"blocks_moved": 0, "move_ops": 0})
            self.results[volume.name] = result
            thread = self._kernel.spawn(
                name,
                self._pass_body(volume, result),
                priority=self._cpu_priority,
                process=self._process,
                start_after=start_after,
            )
            self.threads[volume.name] = thread
            if self._manners is not None:
                self._manners.regulate(thread)
            spawned.append(thread)
        return spawned

    # -- thread body ----------------------------------------------------------------
    def _pass_body(
        self, volume: Volume, result: AppResult
    ) -> Generator[Effect, object, None]:
        counters = None
        if self._registry is not None:
            counters = (
                self._registry.publish(self._process, f"{volume.name}.blocks_moved"),
                self._registry.publish(self._process, f"{volume.name}.move_ops"),
            )
        result.started_at = self._kernel.now
        blocks_moved = 0
        move_ops = 0
        for f in list(volume.files()):
            plan = volume.relocation_plan(f.file_id, self._chunk)
            if plan is None:
                continue
            reads, writes, new_extents = plan
            for block, nbytes in reads:
                yield DiskRead(volume.disk, block, nbytes)
            for block, nbytes in writes:
                yield DiskWrite(volume.disk, block, nbytes)
            yield UseCPU(_RELOCATE_CPU)
            volume.commit_relocation(f.file_id, new_extents, self._kernel.now)
            blocks_moved += f.blocks
            move_ops += 1
            if counters is not None:
                counters[0].set(blocks_moved)
                counters[1].set(move_ops)
            if self._manners is not None:
                yield MannersTestpoint((float(blocks_moved), float(move_ops)))
        result.finished_at = self._kernel.now
        result.totals["blocks_moved"] = blocks_moved
        result.totals["move_ops"] = move_ops
