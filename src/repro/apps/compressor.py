"""File compressor: the paper's single-metric exemplar (section 5).

"A file compressor might indicate the quantity of data it compresses.
This would account for resources consumed reading data, writing data, and
compressing data."

The compressor reads each file, charges CPU proportional to the input
bytes, writes the (smaller) output, and testpoints with a single cumulative
metric: bytes compressed.  It exercises the
:class:`~repro.core.calibration.SingleMetricCalibrator` path (exponential
averaging of the rate, Eq. 4) end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.apps.base import AppResult, read_file_effects
from repro.simos.cpu import CpuPriority
from repro.simos.effects import DiskWrite, Effect, UseCPU
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel, SimThread
from repro.simos.sim_manners import MannersTestpoint, SimManners

__all__ = ["CompressorStats", "Compressor"]

#: CPU seconds per input byte (≈ 20 MB/s compression on era hardware).
_COMPRESS_CPU_PER_BYTE = 1.0 / 20_000_000.0
#: Output size as a fraction of input.
_RATIO = 0.55
#: Output write chunk, in bytes.
_CHUNK = 65536


@dataclass
class CompressorStats:
    """Compression progress totals."""

    bytes_compressed: int = 0
    files_compressed: int = 0


class Compressor:
    """Compress every file on a volume, one pass."""

    def __init__(
        self,
        kernel: Kernel,
        volume: Volume,
        manners: SimManners | None = None,
        process: str = "compressor",
    ) -> None:
        self._kernel = kernel
        self._volume = volume
        self._manners = manners
        self._process = process
        self.stats = CompressorStats()
        self.result = AppResult(name=process)
        self.thread: SimThread | None = None
        self._out_extent = volume.allocate(max(64, volume.free_blocks // 4))[0]

    def spawn(self, start_after: float = 0.0) -> SimThread:
        """Start one compression pass."""
        self.thread = self._kernel.spawn(
            f"{self._process}:main",
            self._body(),
            priority=CpuPriority.LOW,
            process=self._process,
            start_after=start_after,
        )
        if self._manners is not None:
            self._manners.regulate(self.thread)
        return self.thread

    def _body(self) -> Generator[Effect, object, None]:
        self.result.started_at = self._kernel.now
        volume = self._volume
        cursor = 0
        for f in list(volume.files()):
            if f.sis_link is not None:
                continue
            ops, nbytes = yield from read_file_effects(volume, f.file_id, _CHUNK)
            yield UseCPU(nbytes * _COMPRESS_CPU_PER_BYTE)
            out_remaining = int(nbytes * _RATIO)
            while out_remaining > 0:
                chunk = min(_CHUNK, out_remaining)
                block = self._out_extent.start + cursor
                yield DiskWrite(volume.disk, volume.to_disk_block(block), chunk)
                cursor = (cursor + max(1, chunk // volume.block_size)) % max(
                    self._out_extent.count - 16, 1
                )
                out_remaining -= chunk
            self.stats.bytes_compressed += nbytes
            self.stats.files_compressed += 1
            if self._manners is not None:
                yield MannersTestpoint((float(self.stats.bytes_compressed),))
        self.result.finished_at = self._kernel.now
        self.result.totals.update(
            {
                "bytes_compressed": self.stats.bytes_compressed,
                "files_compressed": self.stats.files_compressed,
            }
        )
