"""File archive utility: the paper's phased-metrics exemplar.

Section 5 motivates why a file archiver needs *coverage* across metrics:
"It is not sufficient to regulate based on count of files scanned, because
this rate will drop when scanning old files, since time will be consumed
archiving them.  Similarly, it is not sufficient to regulate based on count
of files archived..."

The archiver alternates between two execution phases and reports a
different metric set from each (section 4.4's phased mechanism):

* **scan phase** (metric set 0): files scanned — checking each file's
  mtime against the cutoff;
* **archive phase** (metric set 1): files archived and bytes archived —
  reading the old file and writing it to the archive area.

The sign test combines per-phase comparisons into a single judgment, so
regulation works even though each archive phase contains few testpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.apps.base import AppResult, read_file_effects
from repro.simos.cpu import CpuPriority
from repro.simos.effects import DiskWrite, Effect, UseCPU
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel, SimThread
from repro.simos.sim_manners import MannersTestpoint, SimManners

__all__ = ["ArchiverStats", "Archiver"]

#: Metric-set indices for the two phases.
SCAN_METRICS = 0
ARCHIVE_METRICS = 1

#: CPU seconds to examine one directory entry.
_STAT_CPU = 0.0002
#: Archive write chunk, in bytes.
_ARCHIVE_CHUNK = 65536


@dataclass
class ArchiverStats:
    """Archiving progress totals."""

    files_scanned: int = 0
    files_archived: int = 0
    bytes_archived: int = 0


class Archiver:
    """Archive files older than a cutoff into an archive region."""

    def __init__(
        self,
        kernel: Kernel,
        volume: Volume,
        age_cutoff: float,
        manners: SimManners | None = None,
        process: str = "archiver",
    ) -> None:
        """``age_cutoff``: archive files whose mtime is earlier than this."""
        self._kernel = kernel
        self._volume = volume
        self._cutoff = age_cutoff
        self._manners = manners
        self._process = process
        self.stats = ArchiverStats()
        self.result = AppResult(name=process)
        self.thread: SimThread | None = None
        self._archive_extent = volume.allocate(max(64, volume.free_blocks // 4))[0]

    def spawn(self, start_after: float = 0.0) -> SimThread:
        """Start one archiving pass."""
        self.thread = self._kernel.spawn(
            f"{self._process}:main",
            self._body(),
            priority=CpuPriority.LOW,
            process=self._process,
            start_after=start_after,
        )
        if self._manners is not None:
            self._manners.regulate(self.thread)
        return self.thread

    def _body(self) -> Generator[Effect, object, None]:
        self.result.started_at = self._kernel.now
        volume = self._volume
        cursor = 0
        for f in list(volume.files()):
            # --- scan phase: examine the entry ------------------------------
            yield UseCPU(_STAT_CPU)
            self.stats.files_scanned += 1
            if self._manners is not None:
                yield MannersTestpoint((float(self.stats.files_scanned),), index=SCAN_METRICS)
            if f.mtime >= self._cutoff or f.sis_link is not None:
                continue
            # --- archive phase: copy the old file out ------------------------
            ops, nbytes = yield from read_file_effects(volume, f.file_id, _ARCHIVE_CHUNK)
            remaining = nbytes
            while remaining > 0:
                chunk = min(_ARCHIVE_CHUNK, remaining)
                block = self._archive_extent.start + cursor
                yield DiskWrite(volume.disk, volume.to_disk_block(block), chunk)
                cursor = (cursor + max(1, chunk // volume.block_size)) % max(
                    self._archive_extent.count - 16, 1
                )
                remaining -= chunk
            self.stats.files_archived += 1
            self.stats.bytes_archived += nbytes
            if self._manners is not None:
                yield MannersTestpoint(
                    (float(self.stats.files_archived), float(self.stats.bytes_archived)),
                    index=ARCHIVE_METRICS,
                )
        self.result.finished_at = self._kernel.now
        self.result.totals.update(
            {
                "files_scanned": self.stats.files_scanned,
                "files_archived": self.stats.files_archived,
                "bytes_archived": self.stats.bytes_archived,
            }
        )
