"""The high-importance database server (stand-in for Microsoft SQL Server).

The paper's first experiment drives SQL Server with "the initial load-up
sequence from the TPC-C database benchmark" — a bulk-load workload: mostly
sequential table writes with index reads, log appends, and per-row CPU.
That resource signature (disk-bound with a steady CPU component) is what
made CPU priority useless for the defragmenter and progress-based
regulation necessary.

:class:`DatabaseServer` is a continuously running process (mirroring the
paper's observation that "a database-server application might run
continuously but only require resources when given a workload"): it spawns
at simulation start, idles, executes a fixed bulk-load workload when one is
scheduled, records the completion time, and returns to idle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.apps.base import AppResult
from repro.simos.cpu import CpuPriority
from repro.simos.effects import Delay, DiskRead, DiskWrite, Effect, UseCPU
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel, SimThread

__all__ = ["LoadWorkload", "DatabaseServer"]


@dataclass(frozen=True)
class LoadWorkload:
    """Shape of one TPC-C-style initial load.

    Defaults are tuned so the load takes roughly 300 simulated seconds on
    an idle machine — the paper's uncontended median for the database
    workload (Figure 3).
    """

    #: Number of load batches (think: table pages streamed in).
    batches: int = 2400
    #: Data written per batch, in bytes (sequential table extent).
    data_bytes: int = 65536
    #: Index page read per batch, in bytes (random read).
    index_read_bytes: int = 8192
    #: Log append per batch, in bytes (sequential small write).
    log_bytes: int = 8192
    #: CPU per batch, in seconds (row parsing, page formatting).
    cpu_seconds: float = 0.004


class DatabaseServer:
    """A long-running database process with schedulable bulk loads."""

    def __init__(
        self,
        kernel: Kernel,
        volume: Volume,
        workload: LoadWorkload | None = None,
        process: str = "sqlserver",
        seed: int = 7,
    ) -> None:
        self._kernel = kernel
        self._volume = volume
        self._workload = workload or LoadWorkload()
        self._process = process
        self._rng = random.Random(seed)
        #: One result per scheduled load, in schedule order.
        self.results: list[AppResult] = []
        self.thread: SimThread | None = None
        # Pre-allocate the on-disk regions the load touches: a data area,
        # an index area, and a log area, all inside the volume.
        w = self._workload
        data_blocks = max(
            1, w.batches * w.data_bytes // volume.block_size
        )
        self._data = volume.allocate(min(data_blocks, volume.free_blocks // 2))[0]
        index_blocks = max(64, volume.free_blocks // 8)
        self._index = volume.allocate(index_blocks)[0]
        self._log = volume.allocate(max(64, volume.free_blocks // 16))[0]

    def spawn_resident(self, lifetime: float) -> SimThread:
        """Spawn the long-lived server process itself (no workload).

        A database server "might run continuously but only require
        resources when given a workload" (section 2) — this thread is that
        continuously running process: present in the system queue for
        ``lifetime`` seconds while consuming almost nothing.
        """

        def body() -> Generator[Effect, object, None]:
            end = self._kernel.now + lifetime
            while self._kernel.now < end:
                # A housekeeping heartbeat: present, but nearly free.
                yield UseCPU(0.0001)
                yield Delay(min(1.0, max(end - self._kernel.now, 0.001)))

        return self._kernel.spawn(
            f"{self._process}:resident",
            body(),
            priority=CpuPriority.NORMAL,
            process=self._process,
        )

    def spawn_load(self, start_after: float) -> SimThread:
        """Schedule one bulk load to begin after ``start_after`` seconds."""
        result = AppResult(name=f"{self._process}:load{len(self.results)}")
        self.results.append(result)
        self.thread = self._kernel.spawn(
            f"{self._process}:loader",
            self._load_body(result, start_after),
            priority=CpuPriority.NORMAL,
            process=self._process,
        )
        return self.thread

    # -- thread body ------------------------------------------------------------
    def _load_body(
        self, result: AppResult, start_after: float
    ) -> Generator[Effect, object, None]:
        if start_after > 0:
            yield Delay(start_after)
        result.started_at = self._kernel.now
        w = self._workload
        volume = self._volume
        data_cursor = 0
        log_cursor = 0
        data_span = self._data.count
        log_span = self._log.count
        blocks_per_batch = max(1, w.data_bytes // volume.block_size)
        for batch in range(w.batches):
            # Random index page read.
            index_block = self._index.start + self._rng.randrange(self._index.count)
            yield DiskRead(volume.disk, volume.to_disk_block(index_block), w.index_read_bytes)
            # CPU to format the batch.
            yield UseCPU(w.cpu_seconds)
            # Sequential data write (wraps around its region).
            block = self._data.start + data_cursor
            yield DiskWrite(volume.disk, volume.to_disk_block(block), w.data_bytes)
            data_cursor = (data_cursor + blocks_per_batch) % max(
                data_span - blocks_per_batch, 1
            )
            # Log append.
            log_block = self._log.start + log_cursor
            yield DiskWrite(volume.disk, volume.to_disk_block(log_block), w.log_bytes)
            log_cursor = (log_cursor + 1) % log_span
        result.finished_at = self._kernel.now
        result.totals["batches"] = w.batches
        result.totals["bytes_written"] = w.batches * (w.data_bytes + w.log_bytes)
