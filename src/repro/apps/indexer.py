"""Content indexer: the paper's multi-concurrent-metric exemplar.

Section 4.4's worked example: "consider a content indexer that scans data
at a target rate of 750 kB/sec and adds indices to its database at a target
rate of 120 indices/sec" — two progress dimensions that advance
*concurrently* and are correlated over the long term (scanning precedes
indexing) but anti-correlated over the short term (time spent indexing is
time not spent scanning).  The ridge-regression calibrator (section 6.3)
must apportion the inter-testpoint duration between the two.

The simulated indexer reads files in chunks (bytes-scanned metric); each
chunk yields a data-dependent number of index terms, each costing CPU and
an occasional database write (indices-added metric).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.apps.base import AppResult
from repro.simos.cpu import CpuPriority
from repro.simos.effects import DiskRead, DiskWrite, Effect, UseCPU
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel, SimThread
from repro.simos.sim_manners import MannersTestpoint, SimManners

__all__ = ["IndexerStats", "ContentIndexer"]

#: CPU seconds to tokenize one byte of content.
_SCAN_CPU_PER_BYTE = 1.0 / 80_000_000.0
#: CPU seconds to insert one index entry.
_INDEX_CPU = 0.002
#: One database page write per this many index insertions.
_INDEX_WRITES_EVERY = 16
#: Index database page size, in bytes.
_INDEX_PAGE_BYTES = 8192


@dataclass
class IndexerStats:
    """Indexing progress totals."""

    bytes_scanned: int = 0
    indices_added: int = 0
    files_indexed: int = 0


class ContentIndexer:
    """Scan files and add index entries, reporting both metrics."""

    def __init__(
        self,
        kernel: Kernel,
        volume: Volume,
        manners: SimManners | None = None,
        process: str = "indexer",
        mean_terms_per_kb: float = 0.16,
        seed: int = 31,
    ) -> None:
        self._kernel = kernel
        self._volume = volume
        self._manners = manners
        self._process = process
        self._terms_per_kb = mean_terms_per_kb
        self._rng = random.Random(seed)
        self.stats = IndexerStats()
        self.result = AppResult(name=process)
        self.thread: SimThread | None = None
        # A region of the volume standing in for the index database.
        self._db_extent = volume.allocate(max(64, volume.free_blocks // 10))[0]

    def spawn(self, start_after: float = 0.0) -> SimThread:
        """Start one indexing pass over the volume's files."""
        self.thread = self._kernel.spawn(
            f"{self._process}:main",
            self._body(),
            priority=CpuPriority.LOW,
            process=self._process,
            start_after=start_after,
        )
        if self._manners is not None:
            self._manners.regulate(self.thread)
        return self.thread

    def _body(self) -> Generator[Effect, object, None]:
        self.result.started_at = self._kernel.now
        volume = self._volume
        db_cursor = 0
        pending_writes = 0
        for f in list(volume.files()):
            if f.sis_link is not None:
                continue
            for block, nbytes in volume.read_plan(f.file_id):
                yield DiskRead(volume.disk, block, nbytes)
                yield UseCPU(nbytes * _SCAN_CPU_PER_BYTE)
                self.stats.bytes_scanned += nbytes
                terms = self._draw_terms(nbytes)
                for _ in range(terms):
                    yield UseCPU(_INDEX_CPU)
                    self.stats.indices_added += 1
                    pending_writes += 1
                    if pending_writes >= _INDEX_WRITES_EVERY:
                        pending_writes = 0
                        page = self._db_extent.start + db_cursor
                        yield DiskWrite(
                            volume.disk, volume.to_disk_block(page), _INDEX_PAGE_BYTES
                        )
                        db_cursor = (db_cursor + 2) % max(self._db_extent.count - 2, 1)
                if self._manners is not None:
                    yield MannersTestpoint(
                        (float(self.stats.bytes_scanned), float(self.stats.indices_added))
                    )
            self.stats.files_indexed += 1
        self.result.finished_at = self._kernel.now
        self.result.totals.update(
            {
                "bytes_scanned": self.stats.bytes_scanned,
                "indices_added": self.stats.indices_added,
                "files_indexed": self.stats.files_indexed,
            }
        )

    def _draw_terms(self, nbytes: int) -> int:
        """Data-dependent index-term count for a chunk (Poisson-ish)."""
        mean = self._terms_per_kb * nbytes / 1024.0
        # Geometric approximation keeps the variance high, as real content
        # would (some chunks are term-dense, most are not).
        terms = 0
        while self._rng.random() < mean / (1.0 + mean) and terms < 50:
            terms += 1
        return terms
