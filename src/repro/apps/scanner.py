"""Virus scanner: another section-5 exemplar.

"A virus scanner might indicate the count of files and the quantity of
data it scans." — two concurrent metrics, like the Groveler's, but with a
different cost profile: per-file overhead (opening, signature-table setup)
is large relative to per-byte scanning, so the regression must assign
meaningful cost to *both* metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.apps.base import AppResult, read_file_effects
from repro.simos.cpu import CpuPriority
from repro.simos.effects import Effect, UseCPU
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel, SimThread
from repro.simos.sim_manners import MannersTestpoint, SimManners

__all__ = ["ScannerStats", "VirusScanner"]

#: CPU seconds of per-file overhead (open, header parse, table reset).
_PER_FILE_CPU = 0.004
#: CPU seconds per scanned byte (pattern matching).
_SCAN_CPU_PER_BYTE = 1.0 / 50_000_000.0


@dataclass
class ScannerStats:
    """Scanning progress totals."""

    files_scanned: int = 0
    bytes_scanned: int = 0


class VirusScanner:
    """Scan every file on a volume, one pass."""

    def __init__(
        self,
        kernel: Kernel,
        volume: Volume,
        manners: SimManners | None = None,
        process: str = "scanner",
    ) -> None:
        self._kernel = kernel
        self._volume = volume
        self._manners = manners
        self._process = process
        self.stats = ScannerStats()
        self.result = AppResult(name=process)
        self.thread: SimThread | None = None

    def spawn(self, start_after: float = 0.0) -> SimThread:
        """Start one scanning pass."""
        self.thread = self._kernel.spawn(
            f"{self._process}:main",
            self._body(),
            priority=CpuPriority.LOW,
            process=self._process,
            start_after=start_after,
        )
        if self._manners is not None:
            self._manners.regulate(self.thread)
        return self.thread

    def _body(self) -> Generator[Effect, object, None]:
        self.result.started_at = self._kernel.now
        for f in list(self._volume.files()):
            if f.sis_link is not None:
                continue
            yield UseCPU(_PER_FILE_CPU)
            ops, nbytes = yield from read_file_effects(self._volume, f.file_id)
            yield UseCPU(nbytes * _SCAN_CPU_PER_BYTE)
            self.stats.files_scanned += 1
            self.stats.bytes_scanned += nbytes
            if self._manners is not None:
                yield MannersTestpoint(
                    (float(self.stats.files_scanned), float(self.stats.bytes_scanned))
                )
        self.result.finished_at = self._kernel.now
        self.result.totals.update(
            {
                "files_scanned": self.stats.files_scanned,
                "bytes_scanned": self.stats.bytes_scanned,
            }
        )
