"""The high-importance installer (stand-in for Office 97 Professional Setup).

The paper's second experiment installs Office 97 from CD onto the server
disk while the Groveler runs — "a typical operation performed on a Remote
Install Server".  The resource signature: long sequential reads from a slow
CD-ROM, per-file decompression on the CPU, and bursts of writes to the
target volume.  The CD and the target disk share the SCSI controller, just
as on the paper's test machine.

Tuned so a complete installation takes roughly 250 simulated seconds on an
idle machine — the paper's uncontended median (Figure 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.apps.base import AppResult
from repro.simos.cpu import CpuPriority
from repro.simos.effects import Delay, DiskRead, DiskWrite, Effect, UseCPU
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel, SimThread

__all__ = ["InstallWorkload", "Installer"]


@dataclass(frozen=True)
class InstallWorkload:
    """Shape of one installation.

    Defaults approximate a ~220 MB Office-scale install: read compressed
    cabinets from CD at ~1.8 MB/s, decompress, write ~1.4x the bytes out.
    """

    #: Number of files installed.
    files: int = 900
    #: Mean compressed size per file on CD, in bytes.
    mean_file_bytes: int = 220_000
    #: CD read chunk, in bytes.
    cd_chunk: int = 65536
    #: Expansion factor from compressed to installed bytes.
    expansion: float = 1.4
    #: CPU seconds to decompress one byte.
    cpu_per_byte: float = 1.0 / 30_000_000.0


class Installer:
    """Install a fixed payload from the CD device onto a volume."""

    def __init__(
        self,
        kernel: Kernel,
        cd_disk: str,
        target: Volume,
        workload: InstallWorkload | None = None,
        process: str = "setup",
        seed: int = 11,
    ) -> None:
        self._kernel = kernel
        self._cd = cd_disk
        self._target = target
        self._workload = workload or InstallWorkload()
        self._process = process
        self._rng = random.Random(seed)
        self.result = AppResult(name=process)
        self.thread: SimThread | None = None

    def spawn(self, start_after: float = 0.0) -> SimThread:
        """Start the installation after ``start_after`` seconds."""
        self.thread = self._kernel.spawn(
            f"{self._process}:install",
            self._body(start_after),
            priority=CpuPriority.NORMAL,
            process=self._process,
        )
        return self.thread

    # -- thread body -------------------------------------------------------------
    def _body(self, start_after: float) -> Generator[Effect, object, None]:
        if start_after > 0:
            yield Delay(start_after)
        self.result.started_at = self._kernel.now
        w = self._workload
        cd_cursor = 0
        bytes_installed = 0
        for i in range(w.files):
            compressed = max(
                w.cd_chunk, int(self._rng.expovariate(1.0 / w.mean_file_bytes))
            )
            # Sequential CD read of the compressed file.
            remaining = compressed
            while remaining > 0:
                chunk = min(w.cd_chunk, remaining)
                yield DiskRead(self._cd, cd_cursor % 300_000, chunk)
                cd_cursor += max(1, chunk // 2048)
                remaining -= chunk
            # Decompress.
            yield UseCPU(compressed * w.cpu_per_byte)
            # Write the installed file to the target volume.
            installed = int(compressed * w.expansion)
            f = self._target.create_file(
                f"office/file{i:05d}", installed, when=self._kernel.now
            )
            for extent in f.extents:
                offset = 0
                while offset < extent.count:
                    run = min(16, extent.count - offset)
                    yield DiskWrite(
                        self._target.disk,
                        self._target.to_disk_block(extent.start + offset),
                        run * self._target.block_size,
                    )
                    offset += run
            bytes_installed += installed
        self.result.finished_at = self._kernel.now
        self.result.totals["files"] = w.files
        self.result.totals["bytes_installed"] = bytes_installed
