"""The SIS Groveler (paper section 8).

"The Groveler maintains a database of information about all files on the
disk, including a signature of the file contents.  Periodically, it scans
the file system change journal ... For any new or modified files, the
Groveler reads the file contents, computes a new signature, searches its
database for matching files, and merges any duplicates it finds.

For each disk partition, the Groveler creates two threads, a lightweight
thread for scanning the file system change journal, and a main thread for
reading and comparing file contents.  The former thread is not regulated,
in order to prevent the change journal from overflowing.  The latter thread
periodically testpoints with two non-orthogonal progress measures: the
count of read operations performed and the volume of data read.  The
Groveler tells MS Manners to give highest priority to the thread working on
the disk with the least free space."

All of that is reproduced here.  The signature is computed by charging CPU
proportional to the bytes hashed; actual equality is decided by the
filesystem's content identity (two files are duplicates iff their
``content_id`` matches), which is what a collision-free signature
establishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.apps.base import AppResult, read_file_effects
from repro.simos.cpu import CpuPriority
from repro.simos.effects import Delay, DiskWrite, Effect, UseCPU
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel, SimThread
from repro.simos.perfcounters import PerfCounterRegistry
from repro.simos.sim_manners import MannersTestpoint, SimManners

__all__ = ["GrovelerStats", "Groveler"]

#: CPU seconds to hash one byte of content (≈ 40 MB/s hashing on the era's
#: hardware).
_HASH_CPU_PER_BYTE = 1.0 / 40_000_000.0
#: CPU seconds per signature database lookup.
_DB_LOOKUP_CPU = 0.0005
#: Bytes written to record a SIS link when a duplicate is merged.
_LINK_WRITE_BYTES = 4096
#: How often the journal-scan thread wakes, in seconds.
_SCAN_INTERVAL = 1.0
#: Idle scan cycles after which the groveler considers its workload done.
_IDLE_SCANS_TO_FINISH = 3


@dataclass
class GrovelerStats:
    """Per-volume groveling progress."""

    read_ops: int = 0
    bytes_read: int = 0
    files_groveled: int = 0
    duplicates_merged: int = 0
    blocks_reclaimed: int = 0


class Groveler:
    """Duplicate-file finder: one scan thread + one main thread per volume."""

    def __init__(
        self,
        kernel: Kernel,
        volumes: list[Volume],
        manners: SimManners | None = None,
        registry: PerfCounterRegistry | None = None,
        process: str = "groveler",
        cpu_priority: CpuPriority = CpuPriority.LOW,
        run_until_idle: bool = True,
    ) -> None:
        """Configure the Groveler.

        ``cpu_priority`` defaults to LOW because the paper notes "the
        Groveler's CPU priority is set low, so it is very responsive to CPU
        load" (section 9.5) — its disk progress is what MS Manners
        regulates.  ``run_until_idle`` makes the main thread exit after the
        journal stays empty (fixed-workload experiments); otherwise it
        grovels forever, as the real service does.
        """
        self._kernel = kernel
        self._volumes = volumes
        self._manners = manners
        self._registry = registry
        self._process = process
        self._cpu_priority = cpu_priority
        self._run_until_idle = run_until_idle
        self.stats: dict[str, GrovelerStats] = {v.name: GrovelerStats() for v in volumes}
        self.results: dict[str, AppResult] = {}
        self.main_threads: dict[str, SimThread] = {}
        self.scan_threads: dict[str, SimThread] = {}
        #: Signature database: content_id -> keeper file_id, per volume.
        self._signature_db: dict[str, dict[int, int]] = {v.name: {} for v in volumes}

    def spawn(self, start_after: float = 0.0) -> list[SimThread]:
        """Create the per-volume thread pairs.

        Thread priorities follow the paper's policy: the main thread on the
        volume with the least free space gets the highest MS Manners
        priority.
        """
        # Rank volumes: fullest (least free) first => highest priority.
        order = sorted(self._volumes, key=lambda v: v.free_blocks)
        priority_of = {v.name: len(order) - i for i, v in enumerate(order)}
        spawned: list[SimThread] = []
        for volume in self._volumes:
            queue: list[int] = []
            result = AppResult(name=f"{self._process}:{volume.name}")
            self.results[volume.name] = result
            scan = self._kernel.spawn(
                f"{self._process}:{volume.name}:scan",
                self._scan_body(volume, queue),
                priority=self._cpu_priority,
                process=self._process,
                start_after=start_after,
            )
            main = self._kernel.spawn(
                f"{self._process}:{volume.name}:main",
                self._main_body(volume, queue, result),
                priority=self._cpu_priority,
                process=self._process,
                start_after=start_after,
            )
            self.scan_threads[volume.name] = scan
            self.main_threads[volume.name] = main
            if self._manners is not None:
                # Only the main thread is regulated (journal must not
                # overflow); priority favours the fullest disk.
                self._manners.regulate(main, priority=priority_of[volume.name])
            spawned.extend((scan, main))
        return spawned

    # -- journal-scan thread (unregulated) --------------------------------------------
    def _scan_body(
        self, volume: Volume, queue: list[int]
    ) -> Generator[Effect, object, None]:
        last_usn = 0
        while True:
            records = volume.journal_since(last_usn)
            if records:
                last_usn = records[-1].usn
                pending = set(queue)
                for record in records:
                    if record.reason in ("create", "modify") and record.file_id not in pending:
                        queue.append(record.file_id)
                        pending.add(record.file_id)
                # Journal parsing is cheap but not free.
                yield UseCPU(0.0001 * len(records))
            if self._finished(volume):
                return
            yield Delay(_SCAN_INTERVAL)

    def _finished(self, volume: Volume) -> bool:
        result = self.results[volume.name]
        return result.finished_at is not None

    # -- main groveling thread (regulated) ------------------------------------------------
    def _main_body(
        self, volume: Volume, queue: list[int], result: AppResult
    ) -> Generator[Effect, object, None]:
        result.started_at = self._kernel.now
        stats = self.stats[volume.name]
        db = self._signature_db[volume.name]
        counters = None
        if self._registry is not None:
            counters = (
                self._registry.publish(self._process, f"{volume.name}.read_ops"),
                self._registry.publish(self._process, f"{volume.name}.bytes_read"),
            )
        idle_scans = 0
        while True:
            if not queue:
                idle_scans += 1
                if self._run_until_idle and idle_scans >= _IDLE_SCANS_TO_FINISH:
                    break
                yield Delay(_SCAN_INTERVAL)
                continue
            idle_scans = 0
            file_id = queue.pop(0)
            try:
                f = volume.file(file_id)
            except Exception:
                continue  # Deleted before we got to it.
            if f.sis_link is not None:
                continue
            ops, nbytes = yield from read_file_effects(volume, file_id)
            stats.read_ops += ops
            stats.bytes_read += nbytes
            yield UseCPU(nbytes * _HASH_CPU_PER_BYTE + _DB_LOOKUP_CPU)
            stats.files_groveled += 1
            keeper = db.get(f.content_id)
            if keeper is None or keeper == file_id:
                db[f.content_id] = file_id
            else:
                # Duplicate found: merge into the common-store file.  The
                # link (reparse point) is written where the duplicate's
                # metadata lives — right where the head just finished
                # reading — so merge cost stays small relative to the
                # regulated read metrics (the paper's groveler regulates on
                # read ops and bytes read only; section 5's coverage
                # requirement would be violated by expensive uncovered
                # merge work).
                link_block = volume.to_disk_block(f.extents[0].start)
                reclaimed = volume.merge_duplicate(file_id, keeper, self._kernel.now)
                if reclaimed:
                    yield DiskWrite(volume.disk, link_block, _LINK_WRITE_BYTES)
                    stats.duplicates_merged += 1
                    stats.blocks_reclaimed += reclaimed
            if counters is not None:
                counters[0].set(stats.read_ops)
                counters[1].set(stats.bytes_read)
            if self._manners is not None:
                yield MannersTestpoint((float(stats.read_ops), float(stats.bytes_read)))
        result.finished_at = self._kernel.now
        result.totals.update(
            {
                "read_ops": stats.read_ops,
                "bytes_read": stats.bytes_read,
                "files_groveled": stats.files_groveled,
                "duplicates_merged": stats.duplicates_merged,
            }
        )
