"""Shared plumbing for simulated applications.

All applications in :mod:`repro.apps` follow one shape: a Python class that
owns configuration and results, whose :meth:`spawn` method creates kernel
threads from generator bodies.  Regulated variants yield
:class:`~repro.simos.sim_manners.MannersTestpoint` effects; unmodified
variants publish performance counters instead (so BeNice can regulate them
externally); both variants share the same I/O logic.

This module provides the common helpers: effect generators for file I/O,
a result record, and the regulation-mode enum used by every experiment
configuration (the columns of the paper's Figures 3-6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, Iterable

from repro.simos.effects import DiskRead, DiskWrite, Effect
from repro.simos.filesystem import Volume

__all__ = ["RegulationMode", "AppResult", "read_file_effects", "write_ops_effects"]


class RegulationMode(enum.Enum):
    """How a low-importance application is run in an experiment.

    The values correspond to the columns of the paper's Figures 3-6.
    """

    #: The application is not started at all (the control measurement).
    NOT_RUNNING = "not running"
    #: Runs at normal priority with no regulation.
    UNREGULATED = "unregulated"
    #: Runs with low CPU priority only (the classic, insufficient fix).
    CPU_PRIORITY = "CPU priority"
    #: Regulated through the MS Manners library (testpoint calls).
    MS_MANNERS = "MS Manners"
    #: Unmodified binary regulated externally by BeNice via perf counters.
    BENICE = "BeNice"


@dataclass
class AppResult:
    """Start/finish bookkeeping shared by all applications."""

    name: str
    started_at: float | None = None
    finished_at: float | None = None
    #: Application-specific progress totals (bytes read, ops, ...).
    totals: dict[str, float] = field(default_factory=dict)

    @property
    def elapsed(self) -> float | None:
        """Run time in seconds, or ``None`` if unfinished."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


def read_file_effects(
    volume: Volume, file_id: int, chunk_bytes: int = 65536
) -> Generator[Effect, None, tuple[int, int]]:
    """Yield the DiskRead effects to read a whole file.

    Returns ``(operations, bytes_read)`` so callers can update their
    progress counters.  Usage inside a thread body::

        ops, nbytes = yield from read_file_effects(volume, f.file_id)
    """
    ops = 0
    total = 0
    for block, nbytes in volume.read_plan(file_id, chunk_bytes):
        yield DiskRead(volume.disk, block, nbytes)
        ops += 1
        total += nbytes
    return ops, total


def write_ops_effects(
    volume: Volume, ops: Iterable[tuple[int, int]]
) -> Generator[Effect, None, tuple[int, int]]:
    """Yield DiskWrite effects for pre-planned ``(disk block, nbytes)`` ops."""
    count = 0
    total = 0
    for block, nbytes in ops:
        yield DiskWrite(volume.disk, block, nbytes)
        count += 1
        total += nbytes
    return count, total
