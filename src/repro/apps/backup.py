"""Backup system: the section-5 exemplar with disk *and* network cost.

"A backup system might indicate the quantity of data it uploads.  This
would account for both disk and network resources."

The backup agent reads each file from disk and streams it over a network
link, testpointing with a single cumulative metric: bytes uploaded.  One
metric covers both resources because every uploaded byte was also read.

This is also the natural vehicle for the section-3 external-resource
limitation: congestion on the *remote* side of the link slows the upload
rate exactly like local contention would, and MS Manners — which is
resource-independent by design — suspends the backup even though the local
machine is idle.  The test suite demonstrates both the normal operation
and that limitation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.apps.base import AppResult
from repro.simos.cpu import CpuPriority
from repro.simos.effects import DiskRead, Effect, UseCPU
from repro.simos.filesystem import Volume
from repro.simos.kernel import Kernel, SimThread
from repro.simos.network import NetSend
from repro.simos.sim_manners import MannersTestpoint, SimManners

__all__ = ["BackupStats", "BackupAgent"]

#: CPU seconds per uploaded byte (checksumming, protocol framing).
_CPU_PER_BYTE = 1.0 / 100_000_000.0
#: Upload chunk, in bytes.
_CHUNK = 65536


@dataclass
class BackupStats:
    """Backup progress totals."""

    files_backed_up: int = 0
    bytes_uploaded: int = 0


class BackupAgent:
    """Upload every file of a volume over a network link, one pass."""

    def __init__(
        self,
        kernel: Kernel,
        volume: Volume,
        link: str,
        manners: SimManners | None = None,
        process: str = "backup",
    ) -> None:
        self._kernel = kernel
        self._volume = volume
        self._link = link
        self._manners = manners
        self._process = process
        self.stats = BackupStats()
        self.result = AppResult(name=process)
        self.thread: SimThread | None = None

    def spawn(self, start_after: float = 0.0) -> SimThread:
        """Start one backup pass."""
        self.thread = self._kernel.spawn(
            f"{self._process}:main",
            self._body(),
            priority=CpuPriority.LOW,
            process=self._process,
            start_after=start_after,
        )
        if self._manners is not None:
            self._manners.regulate(self.thread)
        return self.thread

    def _body(self) -> Generator[Effect, object, None]:
        self.result.started_at = self._kernel.now
        volume = self._volume
        for f in list(volume.files()):
            if f.sis_link is not None:
                continue
            for block, nbytes in volume.read_plan(f.file_id, _CHUNK):
                yield DiskRead(volume.disk, block, nbytes)
                yield UseCPU(nbytes * _CPU_PER_BYTE)
                yield NetSend(self._link, nbytes)
                self.stats.bytes_uploaded += nbytes
                if self._manners is not None:
                    yield MannersTestpoint((float(self.stats.bytes_uploaded),))
            self.stats.files_backed_up += 1
        self.result.finished_at = self._kernel.now
        self.result.totals.update(
            {
                "files_backed_up": self.stats.files_backed_up,
                "bytes_uploaded": self.stats.bytes_uploaded,
            }
        )
