"""The paper's experiments as reusable scenario functions (section 9).

Each function runs one *trial* of one experiment configuration and returns
the measured quantities; the benchmark harness repeats trials over seeds
and aggregates box plots, and the test suite runs scaled-down trials.  The
``scale`` parameter multiplies workload sizes (1.0 = paper-scale run times:
~300 s database load, ~410 s defragmenter pass, ~250 s installation).

Experimental protocol, following section 9.1-9.2:

* the low-importance application starts at t = 0; the high-importance
  workload is applied 30 seconds later;
* target progress rates are established on an idle system (the bootstrap
  completes within the 30-second head start) and the probation period is
  zeroed — "We zeroed the probation period, so that normal regulated
  operation would immediately commence";
* the calibration experiment (:func:`calibration_trial`) instead starts
  with no prior calibration, a live probation period, and a worst-case
  start inside a load burst.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.apps.base import RegulationMode
from repro.apps.database import DatabaseServer, LoadWorkload
from repro.apps.defragmenter import Defragmenter
from repro.apps.dummyload import CpuHog, DiskHog
from repro.apps.groveler import Groveler
from repro.apps.installer import Installer, InstallWorkload
from repro.benice.benice import BeNice
from repro.core.config import MannersConfig
from repro.simos.cpu import CpuPriority
from repro.simos.disk import CDROM_PARAMS
from repro.simos.filesystem import Volume, populate_volume
from repro.simos.kernel import Kernel
from repro.simos.perfcounters import PerfCounterRegistry
from repro.simos.sim_manners import SimManners
from repro.simos.trace import DutyTrace
from repro.simos.workload import Burst, bursty_schedule, busy_fraction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Sequence

    from repro.obs.telemetry import Telemetry

__all__ = [
    "EXPERIMENT_CONFIG",
    "MEASURED_SCENARIOS",
    "TrialResult",
    "defrag_database_trial",
    "groveler_setup_trial",
    "defrag_idle_trial",
    "thread_isolation_trial",
    "calibration_trial",
    "measured_trial",
    "mode_sweep",
    "CalibrationResult",
    "IsolationResult",
]

#: Regulation parameters for the contention experiments: the paper's
#: alpha/beta/averaging values, probation zeroed per the protocol.
EXPERIMENT_CONFIG = MannersConfig(
    alpha=0.05,
    beta=0.2,
    # The paper uses n = 10,000 at a few-hundred-ms testpoint cadence over
    # multi-hour services (smoothing constant 20-30 min, tracking constant
    # ~7 days).  Our fixed workloads run for minutes, so the window is
    # scaled to keep the same *ratio* of time constant to run length;
    # repro.core defaults keep the paper's 10,000.
    averaging_n=400,
    probation_period=0.0,
    bootstrap_testpoints=32,
    min_testpoint_interval=0.1,
    initial_suspension=1.0,
    max_suspension=256.0,
)

#: How long after the LI application the HI workload starts (section 9.2).
HI_START_DELAY = 30.0


@dataclass
class TrialResult:
    """Measurements from one contention-experiment trial."""

    mode: RegulationMode
    #: High-importance workload run time (None when it did not run).
    hi_time: float | None = None
    #: Low-importance application run time (None when not running).
    li_time: float | None = None
    #: Extra detail for the trace figures.
    extras: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Machine construction
# ---------------------------------------------------------------------------

def _build_kernel(seed: int, with_cd: bool = False) -> Kernel:
    """The paper's test machine: two disks (+ optional CD) on one bus."""
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    kernel.add_disk("D")
    if with_cd:
        kernel.add_disk("CD", params=CDROM_PARAMS)
    return kernel


def _fragmented_volume(
    kernel: Kernel,
    seed: int,
    name: str = "C",
    disk: str = "C",
    total_blocks: int = 700_000,
    file_count: int = 3200,
    duplicate_fraction: float = 0.0,
) -> Volume:
    """A volume populated with an aged (fragmented) directory tree."""
    volume = Volume(name, disk, total_blocks=total_blocks)
    rng = random.Random(seed * 7919 + 13)
    populate_volume(
        volume,
        rng,
        file_count=file_count,
        size_range=(32 * 1024, 480 * 1024),
        fragment_range=(2, 10),
        duplicate_fraction=duplicate_fraction,
    )
    return volume


# ---------------------------------------------------------------------------
# Figures 3, 5, 6, 7, 8: defragmenter vs database workload
# ---------------------------------------------------------------------------

def defrag_database_trial(
    mode: RegulationMode,
    seed: int,
    scale: float = 1.0,
    with_traces: bool = False,
    run_database: bool = True,
    config: MannersConfig = EXPERIMENT_CONFIG,
    telemetry: "Telemetry | None" = None,
) -> TrialResult:
    """One trial of the defragmenter / SQL-Server experiment.

    The defragmenter starts at t = 0 on the shared disk; the database bulk
    load is applied at t = 30 (``run_database=False`` gives the
    idle-system runs of Figure 5).  Returns the database load time
    (``hi_time``) and the defragmenter pass time (``li_time``).  With
    ``telemetry``, the regulation stack (MS Manners or BeNice) emits its
    structured event trace through it.
    """
    kernel = _build_kernel(seed)
    registry = PerfCounterRegistry()
    volume = _fragmented_volume(
        kernel, seed, file_count=max(16, int(3200 * scale))
    )
    result = TrialResult(mode=mode)

    database: DatabaseServer | None = None
    if run_database:
        workload = LoadWorkload(batches=max(20, int(7000 * scale)))
        database = DatabaseServer(kernel, volume, workload=workload, seed=seed + 1)
        database.spawn_load(start_after=HI_START_DELAY)

    manners: SimManners | None = None
    defrag: Defragmenter | None = None
    benice: BeNice | None = None
    if mode is not RegulationMode.NOT_RUNNING:
        cpu_priority = (
            CpuPriority.LOW if mode is RegulationMode.CPU_PRIORITY else CpuPriority.NORMAL
        )
        if mode is RegulationMode.MS_MANNERS:
            manners = SimManners(kernel, config, telemetry=telemetry)
        defrag = Defragmenter(
            kernel,
            [volume],
            manners=manners,
            registry=registry,
            cpu_priority=cpu_priority,
        )
        threads = defrag.spawn()
        if mode is RegulationMode.BENICE:
            benice = BeNice(
                kernel,
                registry,
                target_process="defrag",
                counter_names=("C.blocks_moved", "C.move_ops"),
                target_threads=threads,
                config=config,
                telemetry=telemetry,
            )
            benice.spawn()

    duty: DutyTrace | None = None
    if with_traces and defrag is not None:
        duty = DutyTrace(kernel)
        duty.watch(defrag.threads["C"])

    horizon = max(4000.0, 6000.0 * scale + 600.0)
    kernel.run(until=horizon)

    if database is not None:
        result.hi_time = database.results[0].elapsed
    if defrag is not None:
        result.li_time = defrag.results["C"].elapsed
        result.extras["move_ops"] = defrag.results["C"].totals["move_ops"]
    if duty is not None and defrag is not None:
        result.extras["duty"] = duty
        result.extras["defrag_thread"] = defrag.threads["C"]
    if manners is not None and defrag is not None:
        result.extras["testpoints"] = manners.traces[defrag.threads["C"]]
    if benice is not None:
        result.extras["benice_stats"] = benice.stats
        result.extras["testpoints"] = benice.trace
    if database is not None:
        result.extras["hi_window"] = (
            database.results[0].started_at,
            database.results[0].finished_at,
        )
    result.extras["events_fired"] = kernel.engine.events_fired
    return result


def defrag_idle_trial(
    mode: RegulationMode, seed: int, scale: float = 1.0
) -> TrialResult:
    """Figure 5: the defragmenter alone on an otherwise-idle system."""
    return defrag_database_trial(mode, seed, scale=scale, run_database=False)


# ---------------------------------------------------------------------------
# Figure 4: Groveler vs installer
# ---------------------------------------------------------------------------

def groveler_setup_trial(
    mode: RegulationMode,
    seed: int,
    scale: float = 1.0,
    config: MannersConfig = EXPERIMENT_CONFIG,
) -> TrialResult:
    """One trial of the Groveler / Office-Setup experiment.

    The Groveler scans a volume holding two identical directory trees (its
    fixed workload, per section 9.1); 30 seconds later the installer begins
    a full installation from the CD onto the same disk.
    """
    kernel = _build_kernel(seed, with_cd=True)
    registry = PerfCounterRegistry()
    volume = Volume("ris", "C", total_blocks=700_000)
    rng = random.Random(seed * 6151 + 5)
    tree_files = max(8, int(1100 * scale))
    originals = populate_volume(
        volume,
        rng,
        file_count=tree_files,
        size_range=(48 * 1024, 320 * 1024),
        fragment_range=(1, 3),
        path_prefix="images/tree1",
    )
    # The identical second tree: same sizes, same content identities.
    for i, original in enumerate(originals):
        volume.create_file(
            f"images/tree2/file{i:05d}",
            original.size,
            when=0.0,
            content_id=original.content_id,
            fragments=min(3, max(1, original.fragments)),
            spread_seed=rng.randrange(1 << 30),
        )

    result = TrialResult(mode=mode)

    installer = Installer(
        kernel,
        cd_disk="CD",
        target=volume,
        workload=InstallWorkload(files=max(10, int(1300 * scale))),
        seed=seed + 3,
    )
    installer.spawn(start_after=HI_START_DELAY)

    manners: SimManners | None = None
    groveler: Groveler | None = None
    if mode is not RegulationMode.NOT_RUNNING:
        if mode is RegulationMode.MS_MANNERS:
            manners = SimManners(kernel, config)
        groveler = Groveler(
            kernel,
            [volume],
            manners=manners,
            registry=registry,
            cpu_priority=CpuPriority.LOW
            if mode is RegulationMode.CPU_PRIORITY
            else CpuPriority.NORMAL,
        )
        groveler.spawn()

    horizon = max(4000.0, 6000.0 * scale + 600.0)
    kernel.run(until=horizon)

    result.hi_time = installer.result.elapsed
    if groveler is not None:
        result.li_time = groveler.results["ris"].elapsed
        result.extras["groveler_stats"] = groveler.stats["ris"]
    result.extras["events_fired"] = kernel.engine.events_fired
    return result


# ---------------------------------------------------------------------------
# Parallel-harness entry points
# ---------------------------------------------------------------------------

#: Scenarios runnable through :func:`measured_trial` — the contention
#: experiments whose per-trial output reduces to plain measurements.
MEASURED_SCENARIOS = {
    "defrag_database": defrag_database_trial,
    "defrag_idle": defrag_idle_trial,
    "groveler_setup": groveler_setup_trial,
}


def measured_trial(
    scenario: str, mode_value: str, seed: int, scale: float = 1.0
) -> dict:
    """One trial of a named scenario, reduced to JSON-safe measurements.

    This is the picklable unit the parallel trial engine fans out: a
    module-level function taking plain arguments (the mode as its enum
    *value*) and returning a flat dict of numbers — safe to ship across a
    process boundary and to store in the content-keyed trial cache.
    Returns ``hi_time``/``li_time`` (possibly ``None``), ``move_ops`` when
    the scenario reports it, and the simulator's ``events_fired``.
    """
    try:
        trial = MEASURED_SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {sorted(MEASURED_SCENARIOS)}"
        ) from None
    result = trial(RegulationMode(mode_value), seed, scale=scale)
    measurements: dict = {
        "hi_time": result.hi_time,
        "li_time": result.li_time,
        "events_fired": result.extras.get("events_fired", 0),
    }
    if "move_ops" in result.extras:
        measurements["move_ops"] = result.extras["move_ops"]
    return measurements


def mode_sweep(
    scenario: str,
    modes: "Sequence[RegulationMode]",
    metric: str,
    trials: int | None = None,
    seed_base: int = 1000,
    scale: float = 1.0,
    jobs: int | None = None,
    cache=None,
) -> dict[str, list[float]]:
    """Per-mode samples of ``metric`` (``hi_time``/``li_time``/...) for a scenario.

    The shape every contention figure needs: ``{mode value: [sample, ...]}``
    ready for :func:`repro.analysis.runner.aggregate`.  Trials fan out over
    the parallel runner (``jobs``/``REPRO_JOBS``) and, given a
    :class:`~repro.analysis.parallel.TrialCache`, completed (scenario,
    mode, seed, scale, code-version) trials are loaded rather than re-run.
    """
    from functools import partial

    from repro.analysis.parallel import ParallelRunner, resolve_jobs
    from repro.analysis.runner import run_trials

    # One runner — and therefore at most one worker pool — for the whole
    # sweep: each mode reuses the warm pool instead of paying pool spin-up
    # per sweep point.  Seeds and result order are assigned per run_trials
    # call exactly as before, so samples (and digests) are unchanged.
    samples: dict[str, list[float]] = {}
    with ParallelRunner(jobs=resolve_jobs(jobs, default=1), cache=cache) as runner:
        for mode in modes:
            results = run_trials(
                partial(measured_trial, scenario, mode.value, scale=scale),
                trials=trials,
                seed_base=seed_base,
                runner=runner,
                cache_name=f"{scenario}:{mode.value}",
                cache_config={"scenario": scenario, "mode": mode.value, "scale": scale},
            )
            samples[mode.value] = [r[metric] for r in results]
    return samples


# ---------------------------------------------------------------------------
# Figure 9: time-multiplex isolation of Groveler threads
# ---------------------------------------------------------------------------

@dataclass
class IsolationResult:
    """Duty traces and overlap metrics from the isolation experiment."""

    duty: DutyTrace
    threads: dict
    schedules: dict
    duration: float
    #: Fraction of grovel-thread executing time that overlapped the other
    #: grovel thread's executing time (should be ~0 under isolation).
    mutual_overlap: float = 0.0


def thread_isolation_trial(
    seed: int,
    duration: float = 600.0,
    isolation: bool = True,
    config: MannersConfig = EXPERIMENT_CONFIG,
) -> IsolationResult:
    """Figure 9: two Groveler threads on disks C and D, dummy loads on each.

    Disk C's volume has less free space, so its thread gets the higher MS
    Manners priority.  Dummy disk loads alternate per disk and a dummy CPU
    load runs periodically.  ``isolation=False`` runs each grovel thread in
    a *separate* process with its own superintendent (defeating machine-wide
    time-multiplex isolation) for the ablation.
    """
    kernel = _build_kernel(seed)
    rng = random.Random(seed)
    # C: fuller volume (less free space) => higher priority thread.
    vol_c = Volume("C", "C", total_blocks=400_000)
    vol_d = Volume("D", "D", total_blocks=700_000)
    populate_volume(vol_c, rng, file_count=900, size_range=(64 * 1024, 256 * 1024),
                    fragment_range=(1, 2), duplicate_fraction=0.4, path_prefix="c")
    populate_volume(vol_d, rng, file_count=900, size_range=(64 * 1024, 256 * 1024),
                    fragment_range=(1, 2), duplicate_fraction=0.4, path_prefix="d")

    # Alternating dummy loads, as in Figure 9: C busy, then D busy, then
    # CPU busy, then both disks.
    phase = duration / 6.0
    sched_c = [Burst(1 * phase, 2 * phase), Burst(4 * phase, 5 * phase)]
    sched_d = [Burst(2 * phase, 3 * phase), Burst(4 * phase, 5 * phase)]
    sched_cpu = [Burst(3 * phase, 4 * phase)]
    DiskHog(kernel, "C", sched_c, seed=seed + 11).spawn()
    DiskHog(kernel, "D", sched_d, seed=seed + 12).spawn()
    # duty < 1 approximates NT's anti-starvation boosting: the groveler's
    # low-priority threads still trickle forward, so their progress *rate*
    # collapses (and MS Manners suspends them) rather than freezing solid.
    CpuHog(kernel, sched_cpu, duty=0.9).spawn()

    # Continuous churn: file modifications arrive faster than the groveler
    # can re-grovel them, so both work queues stay non-empty for the whole
    # run — the fixed-workload condition of the paper's Figure 9.  (Churn
    # is metadata-only; it costs the disks nothing itself.)
    def churn(volume: Volume, churn_seed: int):
        from repro.simos.effects import Delay as _Delay

        churn_rng = random.Random(churn_seed)
        while True:
            yield _Delay(2.0)
            files = [f for f in volume.files() if f.sis_link is None]
            if not files:
                continue
            for f in churn_rng.sample(files, k=min(80, len(files))):
                volume.modify_file(f.file_id, kernel.now)

    kernel.spawn("churn:C", churn(vol_c, seed + 21), process="churn")
    kernel.spawn("churn:D", churn(vol_d, seed + 22), process="churn")

    duty = DutyTrace(kernel)
    threads: dict = {}

    if isolation:
        manners = SimManners(kernel, config)
        groveler = Groveler(
            kernel, [vol_c, vol_d], manners=manners, run_until_idle=False
        )
        groveler.spawn()
        threads["grovelC"] = groveler.main_threads["C"]
        threads["grovelD"] = groveler.main_threads["D"]
    else:
        # Ablation: the two Grovelers run as separate processes with *no*
        # machine-wide superintendent, so nothing prevents them from
        # running (and contending) concurrently.
        manners = SimManners(kernel, config, machine_wide=False)
        g_c = Groveler(kernel, [vol_c], manners=manners, process="grovelerC",
                       run_until_idle=False)
        g_d = Groveler(kernel, [vol_d], manners=manners, process="grovelerD",
                       run_until_idle=False)
        g_c.spawn()
        g_d.spawn()
        threads["grovelC"] = g_c.main_threads["C"]
        threads["grovelD"] = g_d.main_threads["D"]

    duty.watch(threads["grovelC"])
    duty.watch(threads["grovelD"])
    kernel.run(until=duration)

    overlap = _mutual_overlap(duty, threads["grovelC"], threads["grovelD"], duration)
    return IsolationResult(
        duty=duty,
        threads=threads,
        schedules={"diskC": sched_c, "diskD": sched_d, "cpu": sched_cpu},
        duration=duration,
        mutual_overlap=overlap,
    )


def _mutual_overlap(duty: DutyTrace, a, b, duration: float) -> float:
    """Fraction of a's executing time during which b was also executing."""
    bins = 1000
    width = duration / bins
    a_series = duty.binned(a, 0.0, duration, width)
    b_series = duty.binned(b, 0.0, duration, width)
    both = sum(
        min(fa, fb) * width for (_, fa), (_, fb) in zip(a_series, b_series)
    )
    a_total = sum(fa * width for _, fa in a_series)
    return both / a_total if a_total > 0 else 0.0


# ---------------------------------------------------------------------------
# Figure 10: automatic target calibration under a bursty diurnal load
# ---------------------------------------------------------------------------

@dataclass
class CalibrationResult:
    """Outcome of the calibration experiment."""

    #: (hour, mean target duration in seconds) samples.
    target_trajectory: list
    #: Defragmenter activity fraction per hour.
    activity: list
    #: Fraction of LI execution that occurred while the dummy load was idle.
    execution_in_idle: float
    #: Mean target duration over the final quarter of the run.
    final_target: float | None
    #: Mean target duration over the first hour.
    initial_target: float | None
    schedule_busy_fraction: float


def calibration_trial(
    seed: int,
    hours: float = 48.0,
    probation_hours: float = 24.0,
    diurnal_hours: float = 24.0,
    scale: float = 1.0,
) -> CalibrationResult:
    """Figure 10: calibrate from scratch against a bursty sinusoidal load.

    The defragmenter starts with no prior calibration, *during* a load
    burst (the worst case), with a live probation period.  The mean target
    duration between testpoints is sampled per hour, reproducing the
    paper's calibrating-target trajectory.
    """
    total = hours * 3600.0
    kernel = _build_kernel(seed)
    rng = random.Random(seed * 104729 + 17)
    volume = Volume("C", "C", total_blocks=700_000)
    populate_volume(
        volume,
        rng,
        file_count=max(64, int(3200 * scale)),
        size_range=(32 * 1024, 480 * 1024),
        fragment_range=(2, 10),
    )

    schedule = bursty_schedule(
        total,
        seed=seed + 29,
        burst_range=(10.0, 900.0),
        diurnal_period=diurnal_hours * 3600.0,
        base_duty=0.5,
        diurnal_amplitude=0.4,
        start_busy=True,
    )
    # Worst case per the paper: "we started the defragmenter during a
    # continuous burst of disk activity, so the calibrator initially
    # computes a target rate that is far too low."  Guarantee the opening
    # burst lasts well past bootstrap.
    opening = max(schedule[0].duration, 0.05 * total)
    merged = [Burst(0.0, opening)]
    for burst in schedule:
        if burst.end <= opening:
            continue
        merged.append(Burst(max(burst.start, opening), burst.end))
    schedule = merged
    DiskHog(kernel, "C", schedule, seed=seed + 31).spawn()

    config = EXPERIMENT_CONFIG.with_overrides(
        probation_period=probation_hours * 3600.0,
        probation_duty=0.25,
        bootstrap_testpoints=32,
        # Figure 10 is precisely about *slow* tracking from a bad start:
        # use a long averaging window (the paper's n = 10,000 is the
        # uncompressed equivalent).
        averaging_n=5_000,
    )
    manners = SimManners(kernel, config)
    defrag = _ContinuousDefrag(kernel, volume, manners, rng)
    thread = defrag.spawn()
    duty = DutyTrace(kernel)
    duty.watch(thread)

    kernel.run(until=total)

    trace = manners.traces[thread]
    trajectory = []
    activity = []
    for h in range(int(hours)):
        lo, hi = h * 3600.0, (h + 1) * 3600.0
        mean_target = trace.mean_target_duration(lo, hi)
        if mean_target is not None:
            trajectory.append((h, mean_target))
        activity.append((h, duty.duty_fraction(thread, lo, hi)))

    # How much of the LI execution happened while the dummy was idle?
    fine = duty.binned(thread, 0.0, total, 10.0)
    exec_idle = 0.0
    exec_total = 0.0
    for t, frac in fine:
        exec_total += frac
        if busy_fraction(schedule, t, t + 10.0) < 0.5:
            exec_idle += frac
    first_hour = trace.mean_target_duration(0.0, opening)
    tail = trace.mean_target_duration(total * 0.75, total)
    return CalibrationResult(
        target_trajectory=trajectory,
        activity=activity,
        execution_in_idle=exec_idle / exec_total if exec_total > 0 else 0.0,
        final_target=tail,
        initial_target=first_hour,
        schedule_busy_fraction=busy_fraction(schedule, 0.0, total),
    )


class _ContinuousDefrag:
    """A defragmenter that never runs out of work (calibration experiment).

    After finishing a pass it re-fragments a slice of the volume (new and
    rewritten files appearing, as on a live server) and starts over, so the
    48-hour calibration run always has relocations to perform.
    """

    def __init__(self, kernel: Kernel, volume: Volume, manners: SimManners, rng: random.Random) -> None:
        self._kernel = kernel
        self._volume = volume
        self._manners = manners
        self._rng = rng

    def spawn(self):
        thread = self._kernel.spawn(
            "defrag:C", self._body(), priority=CpuPriority.NORMAL, process="defrag"
        )
        self._manners.regulate(thread)
        return thread

    def _body(self):
        from repro.simos.effects import DiskRead, DiskWrite, UseCPU
        from repro.simos.sim_manners import MannersTestpoint

        volume = self._volume
        blocks_moved = 0
        move_ops = 0
        while True:
            moved_this_pass = 0
            for f in list(volume.files()):
                plan = volume.relocation_plan(f.file_id)
                if plan is None:
                    continue
                reads, writes, new_extents = plan
                for block, nbytes in reads:
                    yield DiskRead(volume.disk, block, nbytes)
                for block, nbytes in writes:
                    yield DiskWrite(volume.disk, block, nbytes)
                yield UseCPU(0.002)
                volume.commit_relocation(f.file_id, new_extents, self._kernel.now)
                blocks_moved += f.blocks
                move_ops += 1
                moved_this_pass += 1
                yield MannersTestpoint((float(blocks_moved), float(move_ops)))
            # Re-fragment a third of the files (simulated churn), so the
            # next pass has work.  Metadata-only: the churn itself is not
            # the measured workload.
            files = list(volume.files())
            self._rng.shuffle(files)
            for f in files[: max(1, len(files) // 3)]:
                if f.sis_link is not None or f.fragments != 1:
                    continue
                size = f.size
                path = f.path
                volume.delete_file(f.file_id, self._kernel.now)
                volume.create_file(
                    path,
                    size,
                    when=self._kernel.now,
                    fragments=self._rng.randint(2, 10),
                    spread_seed=self._rng.randrange(1 << 30),
                )
            if moved_this_pass == 0:
                # Safety valve: nothing to do (should not happen with churn).
                yield UseCPU(0.01)
