"""Design-choice ablation trials (sections 4.1-4.2), spec-runnable.

These used to live inline in ``benchmarks/bench_ablation_*.py``; they are
library code now so the declarative experiment platform
(:mod:`repro.experiments.spec`) can fan them out, cache them, and diff
them against baselines like any other scenario.  Each function is one
*trial*: module-level, picklable, JSON-safe return value.

* :func:`backoff_ablation_trial` — exponential suspension backoff vs a
  constant suspension time (section 4.1: "the exponential increase makes
  the low-importance process adjust to the time scale of other processes'
  execution patterns"); constant suspension probes the contended disk over
  and over, exponential pays suspension overshoot instead (Figure 7).
* :func:`comparator_ablation_trial` — the statistical sign-test comparator
  vs direct per-sample judging (section 4.2: direct comparison "may
  frequently make incorrect progress-rate judgments"); on an idle machine
  every suspension is inappropriate, so the direct comparator's erratic
  judgments are directly countable.

The historical bench runs used fixed kernel seeds (9 for backoff, 5 for
the comparator); the registered specs pin ``seed_base`` to those values
with a single trial, so spec-driven results are bit-identical to the
pre-platform outputs.
"""

from __future__ import annotations

from repro.core.comparator import DirectComparator
from repro.core.config import MannersConfig
from repro.core.signtest import Judgment
from repro.simos.effects import Delay, DiskRead, UseCPU
from repro.simos.kernel import Kernel
from repro.simos.sim_manners import MannersTestpoint, SimManners

__all__ = [
    "ABLATION_CONFIG",
    "backoff_ablation_trial",
    "comparator_ablation_trial",
]

#: Shared regulation parameters for both ablations: the contention
#: experiments' values with probation zeroed (section 9.2 protocol).
ABLATION_CONFIG = MannersConfig(
    bootstrap_testpoints=20,
    probation_period=0.0,
    averaging_n=400,
    min_testpoint_interval=0.1,
    initial_suspension=1.0,
    max_suspension=256.0,
)

#: When the high-importance burst starts (backoff ablation).
BACKOFF_HI_START = 30.0
#: High-importance items: ~100 s of exclusive disk use.
BACKOFF_HI_ITEMS = 3000


def _li_reader(kernel: Kernel, results: dict) -> object:
    done = 0.0
    for i in range(200_000):
        yield DiskRead("C", (i * 37) % 500_000, 65536)
        done += 1.0
        yield MannersTestpoint((done,))
        if done >= 6000:
            break
    results["li_done"] = kernel.now


def _hi_burst(kernel: Kernel, results: dict) -> object:
    yield Delay(BACKOFF_HI_START)
    for i in range(BACKOFF_HI_ITEMS):
        yield DiskRead("C", (i * 53 + 7) % 500_000, 65536)
        yield UseCPU(0.001)
    results["hi_done"] = kernel.now


def backoff_ablation_trial(
    seed: int, scale: float = 1.0, backoff: str = "exponential"
) -> dict:
    """One backoff-ablation trial: ``backoff`` is exponential or constant.

    Constant suspension is modeled by capping the suspension time at its
    initial value.  ``scale`` is accepted for harness uniformity but has
    no effect (the workload is fixed).  Returns JSON-safe measurements:
    the HI burst's run time, the LI finish time, the number of LI probes
    during the HI window, and the suspension overshoot past its end.
    """
    if backoff not in ("exponential", "constant"):
        raise ValueError(
            f"backoff must be 'exponential' or 'constant', got {backoff!r}"
        )
    config = ABLATION_CONFIG
    if backoff == "constant":
        config = config.with_overrides(max_suspension=config.initial_suspension)
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    manners = SimManners(kernel, config)
    results: dict[str, float] = {}
    thread = kernel.spawn("li", _li_reader(kernel, results), process="li")
    manners.regulate(thread)
    kernel.spawn("hi", _hi_burst(kernel, results), process="hi")
    kernel.run(until=4000.0)
    trace = manners.traces[thread]
    hi_end = results.get("hi_done", float("nan"))
    # Probes during the HI window: processed testpoints between start+10
    # and the HI completion.
    probes = sum(
        1 for r in trace.records if BACKOFF_HI_START + 10.0 <= r.when <= hi_end
    )
    overshoot = 0.0
    for r in trace.records:
        if r.when > hi_end:
            overshoot = r.when - hi_end
            break
    return {
        "hi_time": hi_end - BACKOFF_HI_START,
        "li_done": results.get("li_done"),
        "probes_during_hi": probes,
        "overshoot": overshoot,
    }


def _comparator_reader(n: int) -> object:
    done = 0.0
    for i in range(n):
        yield DiskRead("C", (i * 37) % 500_000, 65536)
        done += 1.0
        yield MannersTestpoint((done,))


def comparator_ablation_trial(
    seed: int, scale: float = 1.0, comparator: str = "statistical"
) -> dict:
    """One comparator-ablation trial on an idle machine.

    ``comparator`` is ``statistical`` (the paper's sign test) or
    ``direct`` (judge every sample against the target immediately).
    ``scale`` is accepted for harness uniformity but has no effect.
    Returns JSON-safe measurements: finish time, poor-judgment and judged
    counts, total suspension, and whether the workload finished.
    """
    if comparator not in ("statistical", "direct"):
        raise ValueError(
            f"comparator must be 'statistical' or 'direct', got {comparator!r}"
        )
    kernel = Kernel(seed=seed)
    kernel.add_disk("C")
    manners = SimManners(kernel, ABLATION_CONFIG)
    thread = kernel.spawn("li", _comparator_reader(4000), process="li")
    chosen = DirectComparator() if comparator == "direct" else None
    regulator = manners.regulate(thread, comparator=chosen)
    kernel.run(until=3600.0)
    trace = manners.traces[thread]
    poors = sum(1 for r in trace.records if r.judgment is Judgment.POOR)
    processed = sum(1 for r in trace.records if r.judgment is not None)
    return {
        "finish_time": kernel.now if thread.alive else trace.records[-1].when,
        "poor_judgments": poors,
        "judged": processed,
        "total_suspension": regulator.stats.total_suspension,
        "finished": not thread.alive,
    }
