"""Declarative experiment platform: specs, cross products, one runner.

ROADMAP item 4: figure benches were hand-rolled per script — each one
wired its own sweep loops, seeds, caching, and report text.  This module
replaces that with a declarative registry in the style of the mplc
Experiment/Scenario framework: an :class:`ExperimentSpec` *names* a
scenario, its crossed independent variables (workload x strategy x seed x
scale), the metrics to collect, and the committed baseline to diff
against; :func:`run_experiment` fans the full cross product out through
the existing :class:`~repro.analysis.parallel.ParallelRunner` and
:class:`~repro.analysis.parallel.TrialCache` and returns one JSON-safe
report.  A new scenario or strategy comparison is ~20 lines of spec, not
a new benchmark file.

Determinism contract (the same one ``run_trials`` honours):

* **Cell enumeration** is the itertools product of the variables in
  declaration order — stable across runs, machines, and worker counts.
* **Seed derivation** is per cell, before dispatch.  ``seeds="paired"``
  (default) gives every cell the identical seed sequence
  ``seed_base + i`` — the paper's paired-comparison protocol, and exactly
  what the hand-rolled sweeps did.  ``seeds="derived"`` gives each cell
  its own seed base from a stable digest of ``(seed_base, scenario, cell
  parameters)`` — independent of enumeration order, so adding or
  reordering variables never shifts another cell's seeds.
* **Results** come back in seed order regardless of ``jobs``, so the
  report's ``results_digest`` is bit-identical between serial and
  parallel runs (CI asserts this on the ``smoke`` spec).

Reports carry per-cell samples, summary stats, and — when the spec names
a ``baseline`` — regression deltas against the committed
``benchmarks/results/BENCH_<baseline>.json`` via
:func:`repro.analysis.bench.compare_reports`, in the spirit of
MobileUPReg's user-perceived-regression reports.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.analysis.env import check_scale, env_scale, parse_count
from repro.analysis.parallel import (
    ParallelRunner,
    TrialCache,
    code_fingerprint,
    resolve_jobs,
)
from repro.analysis.runner import trial_count
from repro.experiments.ablations import (
    backoff_ablation_trial,
    comparator_ablation_trial,
)
from repro.experiments.scenarios import measured_trial

__all__ = [
    "EXPERIMENTS",
    "SCENARIOS",
    "ExperimentSpec",
    "register",
    "register_scenario",
    "get_experiment",
    "enumerate_cells",
    "cell_label",
    "cell_seed_base",
    "run_experiment",
    "run_experiments",
    "samples_by_cell",
    "baseline_deltas",
    "write_experiment_report",
    "load_experiment_report",
    "spec_cell_trial",
]

#: Default location of the committed ``BENCH_*.json`` baselines.
DEFAULT_BASELINE_DIR = Path("benchmarks") / "results"


# ---------------------------------------------------------------------------
# Scenario registry: name -> trial(seed, scale=..., **cell params) -> dict
# ---------------------------------------------------------------------------

def _measured(scenario: str, seed: int, scale: float = 1.0, mode: str = "unregulated") -> dict:
    """Adapter: a measured contention scenario as a spec scenario."""
    return measured_trial(scenario, mode, seed, scale=scale)


#: Spec-runnable scenarios.  Each value is a callable
#: ``fn(seed, scale=..., **params) -> dict`` of JSON-safe measurements;
#: the cell's variable assignments arrive as keyword arguments.
SCENARIOS: dict[str, Callable[..., dict]] = {
    "defrag_database": partial(_measured, "defrag_database"),
    "defrag_idle": partial(_measured, "defrag_idle"),
    "groveler_setup": partial(_measured, "groveler_setup"),
    "ablation_backoff": backoff_ablation_trial,
    "ablation_comparator": comparator_ablation_trial,
}


def register_scenario(name: str, fn: Callable[..., dict]) -> None:
    """Add a spec-runnable scenario (``fn(seed, scale=..., **params)``).

    Parallel runs resolve the scenario *by name* inside each worker, so
    ``fn`` itself need not be picklable — but it must be registered before
    the workers fork (module import time is the safe place).
    """
    if name in SCENARIOS:
        raise ValueError(f"scenario {name!r} is already registered")
    SCENARIOS[name] = fn


def spec_cell_trial(
    scenario: str,
    params_items: tuple[tuple[str, Any], ...],
    scale: float,
    seed: int,
) -> dict:
    """One trial of one cell — the picklable unit the runner fans out.

    Module-level on purpose: a ``functools.partial`` over this function
    (scenario name + frozen cell parameters + scale) crosses the process
    boundary; the scenario callable is looked up in :data:`SCENARIOS`
    on the worker side.
    """
    try:
        fn = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return fn(seed, scale=scale, **dict(params_items))


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: scenario x crossed variables x metrics.

    ``variables`` maps each independent-variable name to its ordered
    levels; the cross product (in declaration order) defines the cells.
    Values must be JSON-safe scalars — they are passed to the scenario as
    keyword arguments, embedded in cache keys, and written to the report.
    """

    name: str
    #: Key into :data:`SCENARIOS`.
    scenario: str
    #: Independent variables: ``{name: (level, level, ...)}``.
    variables: Mapping[str, tuple]
    #: Metric keys to collect from each trial's result dict.
    metrics: tuple[str, ...]
    #: First seed; trial ``i`` of a cell runs at ``cell seed base + i``.
    seed_base: int = 1000
    #: Pinned trial count (e.g. single-run ablations).  ``None`` defers to
    #: ``REPRO_TRIALS`` and then :attr:`default_trials`.
    trials: int | None = None
    #: Trials when neither an override nor ``REPRO_TRIALS`` is given.
    default_trials: int = 5
    #: Fraction of the resolved trial count this spec actually runs
    #: (e.g. 0.5 for an expensive control arm), floored at
    #: :attr:`min_trials`.
    trials_factor: float = 1.0
    min_trials: int = 1
    #: Pinned workload scale; ``None`` defers to ``REPRO_SCALE`` then 1.0.
    scale: float | None = None
    #: Seed derivation: ``"paired"`` (every cell sees the same seed
    #: sequence) or ``"derived"`` (per-cell digest-derived seed bases).
    seeds: str = "paired"
    #: Name of the committed ``BENCH_<baseline>.json`` to diff against.
    baseline: str | None = None
    #: One-line description for ``repro exp list``.
    summary: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "variables",
            tuple((str(k), tuple(v)) for k, v in dict(self.variables).items()),
        )
        object.__setattr__(self, "metrics", tuple(self.metrics))
        if self.seeds not in ("paired", "derived"):
            raise ValueError(
                f"seeds must be 'paired' or 'derived', got {self.seeds!r}"
            )
        if not self.variables:
            raise ValueError(f"spec {self.name!r} declares no variables")
        for var, levels in self.variables:
            if not levels:
                raise ValueError(
                    f"spec {self.name!r} variable {var!r} has no levels"
                )
        if self.scale is not None:
            check_scale(self.scale, source=f"spec {self.name!r} scale")
        if not (
            math.isfinite(self.trials_factor) and 0.0 < self.trials_factor <= 1.0
        ):
            raise ValueError(
                f"spec {self.name!r} trials_factor must be in (0, 1], "
                f"got {self.trials_factor!r}"
            )

    @property
    def cell_count(self) -> int:
        count = 1
        for _, levels in self.variables:
            count *= len(levels)
        return count

    def resolve_trials(self, trials: int | None = None) -> int:
        """Trials per cell: explicit > pinned > ``REPRO_TRIALS`` > default.

        The resolved count is then scaled by :attr:`trials_factor` and
        floored at :attr:`min_trials` (the Figure 6 control arm runs half
        the trials of its measured arms, exactly as the hand-rolled bench
        did).
        """
        if trials is not None:
            n = parse_count(trials, "trials")
        elif self.trials is not None:
            n = self.trials
        else:
            n = trial_count(default=self.default_trials)
        if self.trials_factor != 1.0:
            n = max(self.min_trials, int(n * self.trials_factor))
        return max(self.min_trials, n)

    def resolve_scale(self, scale: float | None = None) -> float:
        """Workload scale: explicit > pinned > ``REPRO_SCALE`` > 1.0."""
        if scale is not None:
            return check_scale(scale)
        if self.scale is not None:
            return self.scale
        return env_scale()


#: The registered experiments ``repro exp`` can list and run.
EXPERIMENTS: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register ``spec`` under its name; duplicate names are an error."""
    if spec.name in EXPERIMENTS:
        raise ValueError(f"experiment {spec.name!r} is already registered")
    if spec.scenario not in SCENARIOS:
        raise ValueError(
            f"experiment {spec.name!r} names unknown scenario "
            f"{spec.scenario!r}; choose from {sorted(SCENARIOS)}"
        )
    EXPERIMENTS[spec.name] = spec
    return spec


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered spec by name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None


# ---------------------------------------------------------------------------
# Cells and seeds
# ---------------------------------------------------------------------------

def enumerate_cells(spec: ExperimentSpec) -> list[dict]:
    """The spec's cells: cross product in variable declaration order.

    The last-declared variable varies fastest (itertools.product order),
    and the enumeration is a pure function of the spec — no environment,
    no randomness — so reports enumerate identically everywhere.
    """
    cells: list[dict] = [{}]
    for var, levels in spec.variables:
        cells = [{**cell, var: level} for cell in cells for level in levels]
    return cells


def cell_label(params: Mapping[str, Any]) -> str:
    """Canonical human/cache label for a cell: ``k=v`` in sorted key order."""
    return ",".join(f"{k}={params[k]}" for k in sorted(params))


def cell_seed_base(spec: ExperimentSpec, params: Mapping[str, Any]) -> int:
    """The first seed for a cell's trial sequence.

    ``paired`` returns ``spec.seed_base`` for every cell — all cells see
    the identical seed sequence.  ``derived`` digests ``(seed_base,
    scenario, sorted cell parameters)`` into a 31-bit seed base: a stable
    function of the cell's *own* coordinates only, so the seeds of a cell
    never depend on what other cells exist or in what order they
    enumerate.
    """
    if spec.seeds == "paired":
        return spec.seed_base
    material = json.dumps(
        {
            "seed_base": spec.seed_base,
            "scenario": spec.scenario,
            "params": {str(k): params[k] for k in sorted(params)},
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def _cell_cache_name(spec: ExperimentSpec, params: Mapping[str, Any]) -> str:
    """Trial-cache namespace for one cell.

    Single-variable ``mode`` cells use the historical
    ``<scenario>:<mode>`` namespace so spec runs share cache entries with
    the hand-rolled sweeps they replaced; everything else gets the
    canonical label form.
    """
    if set(params) == {"mode"}:
        return f"{spec.scenario}:{params['mode']}"
    return f"{spec.scenario}:{cell_label(params)}"


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def _stats(samples: Iterable[Any]) -> dict | None:
    """JSON-safe summary of a metric's numeric samples (None-tolerant)."""
    values = [
        float(v)
        for v in samples
        if isinstance(v, (int, float)) and not isinstance(v, bool)
        and math.isfinite(float(v))
    ]
    if not values:
        return None
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
    return {
        "n": n,
        "mean": sum(ordered) / n,
        "median": median,
        "min": ordered[0],
        "max": ordered[-1],
    }


def _results_digest(cells: list[dict]) -> str:
    """Order-sensitive digest over cell parameters + samples."""
    material = json.dumps(
        [{"params": c["params"], "samples": c["samples"]} for c in cells],
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def run_experiment(
    spec: ExperimentSpec,
    trials: int | None = None,
    jobs: int | None = None,
    scale: float | None = None,
    cache: TrialCache | None = None,
    runner: ParallelRunner | None = None,
) -> dict:
    """Run every cell of ``spec``; return the JSON-safe report.

    Each cell fans its trials out through one shared
    :class:`~repro.analysis.parallel.ParallelRunner` (the passed
    ``runner``, or a fresh one honouring ``jobs``/``REPRO_JOBS``,
    defaulting to serial).  With a cache, completed (cell, seed,
    code-version) trials are loaded instead of re-run; the report counts
    ``trials_executed`` vs ``trials_cached`` so a fully warm second run
    is visibly zero-execution.
    """
    n = spec.resolve_trials(trials)
    resolved_scale = spec.resolve_scale(scale)
    cells = enumerate_cells(spec)

    own_runner = runner is None
    if own_runner:
        runner = ParallelRunner(jobs=resolve_jobs(jobs, default=1), cache=cache)
    active_cache = runner.cache
    hits_before = active_cache.hits if active_cache is not None else 0

    cell_reports: list[dict] = []
    events_total = 0
    start = time.perf_counter()
    try:
        for params in cells:
            seed_base = cell_seed_base(spec, params)
            trial = partial(
                spec_cell_trial,
                spec.scenario,
                tuple(sorted(params.items())),
                resolved_scale,
            )
            results = runner.run(
                trial,
                trials=n,
                seed_base=seed_base,
                cache_name=_cell_cache_name(spec, params),
                cache_config={
                    "scenario": spec.scenario,
                    **{str(k): params[k] for k in sorted(params)},
                    "scale": resolved_scale,
                },
            )
            samples = {
                metric: [r.get(metric) for r in results]
                for metric in spec.metrics
            }
            events_total += sum(int(r.get("events_fired", 0)) for r in results)
            cell_reports.append(
                {
                    "params": dict(params),
                    "label": cell_label(params),
                    "seed_base": seed_base,
                    "trials": n,
                    "samples": samples,
                    "stats": {
                        metric: _stats(values)
                        for metric, values in samples.items()
                    },
                }
            )
    finally:
        if own_runner:
            runner.close()
    wall = time.perf_counter() - start

    total_trials = n * len(cells)
    cached = (
        (active_cache.hits - hits_before) if active_cache is not None else 0
    )
    return {
        "kind": "experiment",
        "name": spec.name,
        "scenario": spec.scenario,
        "variables": {var: list(levels) for var, levels in spec.variables},
        "metrics": list(spec.metrics),
        "seed_base": spec.seed_base,
        "seeds": spec.seeds,
        "trials": n,
        "scale": resolved_scale,
        "jobs": runner.jobs,
        "cells": cell_reports,
        "cell_count": len(cells),
        "trials_total": total_trials,
        "trials_cached": cached,
        "trials_executed": total_trials - cached,
        "wall_time_s": round(wall, 4),
        "events_total": events_total,
        "events_per_sec": round(events_total / wall) if wall > 0 else None,
        "results_digest": _results_digest(cell_reports),
        "code_fingerprint": code_fingerprint(),
        "baseline": spec.baseline,
    }


def run_experiments(
    specs: Iterable[ExperimentSpec],
    trials: int | None = None,
    jobs: int | None = None,
    scale: float | None = None,
    cache: TrialCache | None = None,
) -> list[dict]:
    """Run several specs through one shared runner (one warm worker pool)."""
    specs = list(specs)
    with ParallelRunner(jobs=resolve_jobs(jobs, default=1), cache=cache) as runner:
        return [
            run_experiment(spec, trials=trials, scale=scale, runner=runner)
            for spec in specs
        ]


def samples_by_cell(report: dict, metric: str) -> dict[str, list]:
    """``{cell key: samples}`` for one metric, preserving cell order.

    Single-variable specs key by the bare level value (``"MS Manners"``);
    multi-variable specs key by the canonical ``k=v,...`` label.
    """
    single = len(report["variables"]) == 1
    out: dict[str, list] = {}
    for cell in report["cells"]:
        if single:
            (value,) = cell["params"].values()
            key = str(value)
        else:
            key = cell["label"]
        out[key] = cell["samples"][metric]
    return out


# ---------------------------------------------------------------------------
# Baseline regression deltas
# ---------------------------------------------------------------------------

def baseline_deltas(
    report: dict,
    baseline_dir: str | Path = DEFAULT_BASELINE_DIR,
    tolerance: float = 0.20,
) -> dict | None:
    """Regression deltas vs the committed ``BENCH_<baseline>.json``.

    Returns ``None`` when the spec names no baseline.  Otherwise the
    fresh report's throughput/wall-time are diffed against the committed
    baseline through :func:`repro.analysis.bench.compare_reports` — the
    same gate CI applies to ``repro bench`` — plus signed fractional
    deltas for the report artifact.  A missing baseline file is reported,
    not raised: the artifact still carries the fresh numbers.
    """
    name = report.get("baseline")
    if not name:
        return None
    from repro.analysis.bench import compare_reports, load_report

    try:
        baseline = load_report(name, baseline_dir)
    except (OSError, json.JSONDecodeError):
        return {"name": name, "missing": True, "deltas": {}, "failures": []}

    deltas: dict[str, float] = {}
    for key, better in (("events_per_sec", "higher"), ("wall_time_s", "lower")):
        base = baseline.get(key)
        fresh = report.get(key)
        if base and fresh is not None:
            delta = fresh / base - 1.0
            deltas[key] = round(delta, 4)
            regressed = delta < 0 if better == "higher" else delta > 0
            deltas[f"{key}_regressed"] = bool(
                regressed and abs(delta) > tolerance
            )
    return {
        "name": name,
        "missing": False,
        "deltas": deltas,
        "failures": compare_reports(baseline, report, tolerance=tolerance),
    }


# ---------------------------------------------------------------------------
# Report artifact
# ---------------------------------------------------------------------------

def write_experiment_report(payload: dict, out_dir: str | Path) -> Path:
    """Write the report artifact under ``out_dir``; return the path.

    A single experiment writes ``EXP_<name>.json``; a combined payload
    (``{"kind": "experiment-report", "experiments": [...]}``) writes
    ``EXP_report.json``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if payload.get("kind") == "experiment":
        path = out / f"EXP_{payload['name']}.json"
    else:
        path = out / "EXP_report.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_experiment_report(path: str | Path) -> dict:
    """Load a report artifact written by :func:`write_experiment_report`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


# ---------------------------------------------------------------------------
# The registered experiments: the paper's figure benches + the ablations
# ---------------------------------------------------------------------------

_CONTENTION_MODES = (
    "unregulated",
    "CPU priority",
    "MS Manners",
    "BeNice",
)

register(ExperimentSpec(
    name="fig3_database",
    scenario="defrag_database",
    variables={"mode": ("not running",) + _CONTENTION_MODES},
    metrics=("hi_time", "li_time", "events_fired"),
    seed_base=1000,
    baseline="defrag_database",
    summary="Figure 3: database run time under five defragmenter regimes",
))

register(ExperimentSpec(
    name="fig4_setup",
    scenario="groveler_setup",
    variables={"mode": (
        "not running", "unregulated", "CPU priority", "MS Manners",
    )},
    metrics=("hi_time", "li_time", "events_fired"),
    seed_base=2000,
    summary="Figure 4: Office-style Setup time under four Groveler regimes",
))

register(ExperimentSpec(
    name="fig5_idle",
    scenario="defrag_idle",
    variables={"mode": _CONTENTION_MODES},
    metrics=("li_time", "events_fired"),
    seed_base=3000,
    baseline="defrag_idle",
    summary="Figure 5: defragment time on an otherwise-idle system",
))

register(ExperimentSpec(
    name="fig6_contended",
    scenario="defrag_database",
    variables={"mode": _CONTENTION_MODES},
    metrics=("li_time", "events_fired"),
    seed_base=4000,
    summary="Figure 6: defragment time with the database workload",
))

register(ExperimentSpec(
    name="fig6_defrag_alone",
    scenario="defrag_idle",
    variables={"mode": ("unregulated",)},
    metrics=("li_time", "events_fired"),
    seed_base=4000,
    summary="Figure 6 control: defragmenter alone (sharing arithmetic)",
))

register(ExperimentSpec(
    name="fig6_database_alone",
    scenario="defrag_database",
    variables={"mode": ("not running",)},
    metrics=("hi_time", "events_fired"),
    seed_base=4000,
    trials_factor=0.5,
    min_trials=2,
    summary="Figure 6 control: database alone at half the trial budget",
))

register(ExperimentSpec(
    name="ablation_backoff",
    scenario="ablation_backoff",
    variables={"backoff": ("exponential", "constant")},
    metrics=("hi_time", "li_done", "probes_during_hi", "overshoot"),
    seed_base=9,
    trials=1,
    summary="Ablation 4.1: exponential suspension backoff vs constant",
))

register(ExperimentSpec(
    name="ablation_comparator",
    scenario="ablation_comparator",
    variables={"comparator": ("statistical", "direct")},
    metrics=(
        "finish_time",
        "poor_judgments",
        "judged",
        "total_suspension",
        "finished",
    ),
    seed_base=5,
    trials=1,
    summary="Ablation 4.2: statistical sign test vs direct judging",
))

register(ExperimentSpec(
    name="smoke",
    scenario="defrag_idle",
    variables={"mode": ("unregulated", "MS Manners")},
    metrics=("li_time", "events_fired"),
    seed_base=3000,
    default_trials=3,
    scale=0.05,
    baseline="defrag_idle",
    summary="CI smoke: two-mode idle sweep at bench scale (digest parity)",
))
