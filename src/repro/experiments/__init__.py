"""Reusable scenario functions for the paper's experiments (section 9)."""

from repro.experiments.scenarios import (
    EXPERIMENT_CONFIG,
    MEASURED_SCENARIOS,
    CalibrationResult,
    IsolationResult,
    TrialResult,
    calibration_trial,
    defrag_database_trial,
    defrag_idle_trial,
    groveler_setup_trial,
    measured_trial,
    mode_sweep,
    thread_isolation_trial,
)

__all__ = [
    "EXPERIMENT_CONFIG",
    "MEASURED_SCENARIOS",
    "CalibrationResult",
    "IsolationResult",
    "TrialResult",
    "calibration_trial",
    "defrag_database_trial",
    "defrag_idle_trial",
    "groveler_setup_trial",
    "measured_trial",
    "mode_sweep",
    "thread_isolation_trial",
]
