"""Reusable scenario functions for the paper's experiments (section 9)."""

from repro.experiments.scenarios import (
    EXPERIMENT_CONFIG,
    CalibrationResult,
    IsolationResult,
    TrialResult,
    calibration_trial,
    defrag_database_trial,
    defrag_idle_trial,
    groveler_setup_trial,
    thread_isolation_trial,
)

__all__ = [
    "EXPERIMENT_CONFIG",
    "CalibrationResult",
    "IsolationResult",
    "TrialResult",
    "calibration_trial",
    "defrag_database_trial",
    "defrag_idle_trial",
    "groveler_setup_trial",
    "thread_isolation_trial",
]
