"""The paper's experiments: scenario functions and the declarative platform.

:mod:`repro.experiments.scenarios` holds the reusable per-trial scenario
functions (section 9); :mod:`repro.experiments.ablations` the
design-choice ablation trials (sections 4.1-4.2); and
:mod:`repro.experiments.spec` the declarative :class:`ExperimentSpec`
registry plus the single runner that fans any spec's cross product
through the parallel trial engine.
"""

from repro.experiments.ablations import (
    backoff_ablation_trial,
    comparator_ablation_trial,
)
from repro.experiments.scenarios import (
    EXPERIMENT_CONFIG,
    MEASURED_SCENARIOS,
    CalibrationResult,
    IsolationResult,
    TrialResult,
    calibration_trial,
    defrag_database_trial,
    defrag_idle_trial,
    groveler_setup_trial,
    measured_trial,
    mode_sweep,
    thread_isolation_trial,
)
from repro.experiments.spec import (
    EXPERIMENTS,
    SCENARIOS,
    ExperimentSpec,
    baseline_deltas,
    cell_seed_base,
    enumerate_cells,
    get_experiment,
    register,
    register_scenario,
    run_experiment,
    run_experiments,
    samples_by_cell,
    write_experiment_report,
)

__all__ = [
    "EXPERIMENT_CONFIG",
    "EXPERIMENTS",
    "MEASURED_SCENARIOS",
    "SCENARIOS",
    "CalibrationResult",
    "ExperimentSpec",
    "IsolationResult",
    "TrialResult",
    "backoff_ablation_trial",
    "baseline_deltas",
    "calibration_trial",
    "cell_seed_base",
    "comparator_ablation_trial",
    "defrag_database_trial",
    "defrag_idle_trial",
    "enumerate_cells",
    "get_experiment",
    "groveler_setup_trial",
    "measured_trial",
    "mode_sweep",
    "register",
    "register_scenario",
    "run_experiment",
    "run_experiments",
    "samples_by_cell",
    "thread_isolation_trial",
    "write_experiment_report",
]
