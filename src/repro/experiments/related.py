"""Section 2's prior approaches on the Figure-3 scenario.

Runs the defragmenter/database experiment under each of the paper's
related-work regulation strategies, so their qualitative failure modes can
be compared quantitatively against MS Manners:

* *scheduled windows* — the defragmenter may only run inside a fixed
  nightly window, here placed where the operator guessed the machine
  would be idle (and sometimes guessed wrong);
* *screen saver* — the defragmenter runs whenever no "user input" has
  arrived recently; a server receives none, so it runs regardless of the
  database load;
* *process-queue scan* — the defragmenter runs only when no
  high-importance process exists; the database server process never
  exits, so the defragmenter starves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.database import DatabaseServer, LoadWorkload
from repro.apps.defragmenter import Defragmenter
from repro.core.config import MannersConfig
from repro.experiments.scenarios import (
    EXPERIMENT_CONFIG,
    HI_START_DELAY,
    _build_kernel,
    _fragmented_volume,
)
from repro.simos.sim_manners import SimManners
from repro.simos.workload import Burst
from repro.strategies.baselines import (
    InputIdleGate,
    ProcessQueueGate,
    ScheduledWindows,
)

__all__ = ["RelatedResult", "STRATEGIES", "related_strategy_trial"]

#: Strategy identifiers accepted by :func:`related_strategy_trial`.
STRATEGIES = (
    "unregulated",
    "scheduled",
    "screensaver",
    "queue-scan",
    "ms-manners",
)


@dataclass
class RelatedResult:
    """Outcome of one related-approach trial."""

    strategy: str
    hi_time: float | None
    li_time: float | None
    li_finished: bool
    extras: dict = field(default_factory=dict)


def related_strategy_trial(
    strategy: str,
    seed: int,
    scale: float = 1.0,
    config: MannersConfig = EXPERIMENT_CONFIG,
    horizon: float | None = None,
) -> RelatedResult:
    """One Figure-3-style trial under a section-2 baseline strategy.

    The database process exists from t = 0 (it is a continuously running
    server) and its bulk load is applied at t = 30; the defragmenter
    starts at t = 0 under the given strategy.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    kernel = _build_kernel(seed)
    volume = _fragmented_volume(kernel, seed, file_count=max(16, int(3200 * scale)))
    if horizon is None:
        horizon = max(4000.0, 6000.0 * scale + 600.0)
    workload = LoadWorkload(batches=max(20, int(7000 * scale)))
    database = DatabaseServer(kernel, volume, workload=workload, seed=seed + 1)
    # The server process itself runs for the whole experiment...
    resident = database.spawn_resident(lifetime=horizon)
    # ...and receives two workloads at unpredictable times: one shortly
    # after the defragmenter starts, one much later (inside any plausible
    # "scheduled maintenance" window).
    database.spawn_load(start_after=HI_START_DELAY)
    # Lands just after any plausible "scheduled maintenance" window opens,
    # so a fixed schedule is caught mid-run by unanticipated activity.
    second_load_at = horizon / 6.0 + 20.0
    database.spawn_load(start_after=second_load_at)

    manners: SimManners | None = None
    if strategy == "ms-manners":
        manners = SimManners(kernel, config)
    defrag = Defragmenter(kernel, [volume], manners=manners)
    threads = defrag.spawn()

    if strategy == "scheduled":
        # The operator scheduled the nightly window where activity was
        # *expected* to be low — after the first sixth of the run.  The
        # second workload lands inside it: unanticipated activity that a
        # fixed schedule cannot regulate against.
        window = Burst(horizon / 6.0, horizon)
        ScheduledWindows(kernel, threads, [window]).spawn()
    elif strategy == "screensaver":
        # A server: the last user input was at boot and never recurs, so
        # after the idle threshold the machine always looks "unused".
        InputIdleGate(
            kernel, threads, last_input=lambda: 0.0, idle_threshold=60.0
        ).spawn()
    elif strategy == "queue-scan":
        ProcessQueueGate(kernel, threads, hi_processes=lambda: (resident,)).spawn()

    kernel.run(until=horizon)

    result = RelatedResult(
        strategy=strategy,
        hi_time=database.results[0].elapsed,
        li_time=defrag.results["C"].elapsed,
        li_finished=defrag.results["C"].elapsed is not None,
    )
    result.extras["move_ops"] = defrag.results["C"].totals.get("move_ops", 0)
    result.extras["hi2_time"] = database.results[1].elapsed
    return result
