"""Machine-wide orchestration of regulated processes (paper section 7.1).

"The first supervisor thread that spins up in any process spawns a
superintendent process. ... Before releasing a thread, a supervisor waits
for permission from the superintendent, which shares execution time among
the processes."

:class:`Superintendent` arbitrates an execution token among registered
processes using the same priority + decay-usage policy as the per-process
supervisor (see :mod:`repro.core.scheduling`).  Combined with the
supervisors, it realizes machine-wide time-multiplex isolation: at most one
low-importance *thread*, across all regulated processes, executes at a time
(section 4.5).

Like the rest of :mod:`repro.core`, the superintendent is pure and
time-fed.  In the paper the superintendent is a separate OS process talking
to supervisors over shared memory; here it is an object that supervisors
share in-process (the simulator hosts all "processes" in one interpreter),
and :mod:`repro.realtime` offers a file-lock-backed variant for regulating
genuinely separate OS processes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Hashable

from repro.core.scheduling import MultiplexArbiter
from repro.obs import events as obs_events
from repro.obs.telemetry import scope_label

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["Superintendent"]


class Superintendent:
    """Shares the machine-wide execution token among regulated processes."""

    __slots__ = ("_arbiter", "_telemetry")

    def __init__(
        self, usage_decay: float = 0.9, telemetry: "Telemetry | None" = None
    ) -> None:
        self._arbiter = MultiplexArbiter(usage_decay=usage_decay)
        self._telemetry = telemetry

    # -- membership --------------------------------------------------------------
    def register_process(self, pid: Hashable, priority: int = 0) -> None:
        """Admit a process (called by its supervisor on first use)."""
        self._arbiter.add(pid, priority=priority)

    def unregister_process(self, pid: Hashable) -> None:
        """Withdraw a process; frees the token if it was held."""
        self._arbiter.remove(pid)

    def __contains__(self, pid: Hashable) -> bool:
        return pid in self._arbiter

    # -- token protocol -------------------------------------------------------------
    @property
    def holder(self) -> Hashable | None:
        """The process currently holding the execution token."""
        return self._arbiter.owner

    def acquire(self, pid: Hashable, now: float) -> bool:
        """Try to take the token for ``pid``; return whether it now holds it.

        A process asking for the token is eligible immediately; fairness
        across repeated contention comes from decay usage.
        """
        self._arbiter.set_eligible_at(pid, min(self._arbiter.eligible_at(pid), now))
        before = self._arbiter.owner
        holds = self._arbiter.acquire(now) == pid
        tel = self._telemetry
        if tel is not None and holds and before != pid:
            tel.tick(now)
            tel.metrics.inc("token_handoffs")
            if tel.emitting:
                tel.emit(
                    obs_events.TokenHandoff(
                        t=now, src=tel.label, process=scope_label(pid), action="acquired"
                    )
                )
        return holds

    def release(self, pid: Hashable, now: float, until: float | None = None) -> None:
        """Give up the token, optionally declaring when ``pid`` next wants it.

        ``until`` lets a supervisor whose threads are all suspended tell the
        superintendent when the process will want the token again, so
        passive arbitration can re-seat it then.  Without a hint the
        process is out of contention entirely until it next calls
        :meth:`acquire` — a released process must never win a token it is
        not asking for.
        """
        was_holder = self._arbiter.owner == pid
        self._arbiter.set_eligible_at(pid, until if until is not None else math.inf)
        self._arbiter.release(pid)
        tel = self._telemetry
        if tel is not None and was_holder:
            tel.tick(now)
            if tel.emitting:
                tel.emit(
                    obs_events.TokenHandoff(
                        t=now, src=tel.label, process=scope_label(pid), action="released"
                    )
                )

    def charge(self, pid: Hashable, amount: float) -> None:
        """Accrue execution usage against a process (decay-usage sharing)."""
        self._arbiter.charge(pid, amount)

    def set_priority(self, pid: Hashable, priority: int) -> None:
        """Change a process's arbitration priority."""
        self._arbiter.set_priority(pid, priority)

    def next_eligible_time(self, now: float) -> float | None:
        """Earliest future time a waiting process becomes eligible."""
        when = self._arbiter.next_eligible_time(now)
        if when is None or math.isinf(when):
            return None
        return when
