"""Persistent target-rate storage (paper section 7.1).

"The library persistently maintains target rates for the regulated
application. ... Periodically and at termination, target rate information is
written to this same file to preserve targets for future executions."

:class:`TargetStore` keeps one JSON document per application identity in a
directory.  Writes are atomic (write-to-temp, fsync, rename) so a crash
mid-save can never corrupt an existing target file — a regulator that loses
its targets silently would re-enter bootstrap and probation, which for a
long-running service is a real regression.  Transient write failures are
retried with bounded exponential backoff before surfacing as
:class:`~repro.core.errors.PersistenceError`.

Reads degrade rather than fail: a missing file simply means "no prior
calibration"; a *corrupt* file raises :class:`PersistenceError` when the
store is strict, but with ``strict=False`` it is **quarantined** — renamed
to ``<name>.corrupt`` so the damaged bytes survive for post-mortem — and
treated as missing, letting the regulator re-bootstrap instead of dying
mid-regulation (§6.2's persistence contract under the fault model of
``docs/robustness.md``).

The stored document wraps the snapshot produced by
:meth:`repro.core.controller.ThreadRegulator.export_state` with a format
version for forward compatibility.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.core.errors import PersistenceError
from repro.obs import events as obs_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["TargetStore", "FORMAT_VERSION", "QUARANTINE_SUFFIX"]

#: Version tag embedded in every persisted document.
FORMAT_VERSION = 1

#: Appended to a corrupt target file's name when it is quarantined.
QUARANTINE_SUFFIX = ".corrupt"

_SAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]+")


def _safe_filename(app_id: str) -> str:
    """Map an application identity to a filesystem-safe filename."""
    cleaned = _SAFE_CHARS.sub("_", app_id.strip())
    if not cleaned.strip("._-"):
        raise PersistenceError(f"unusable application identity: {app_id!r}")
    return f"{cleaned}.manners.json"


class TargetStore:
    """Directory-backed persistence for calibration state.

    Args:
        directory: Where the per-application JSON files live.
        strict: When ``True`` (default), unreadable or malformed files
            raise :class:`PersistenceError`; when ``False`` they are
            quarantined as ``<name>.corrupt`` and reported as missing.
        save_retries: Additional save attempts after the first failure.
        save_backoff: Base seconds between retries (doubles per attempt).
        sleep: Injectable sleep for the retry backoff (tests, simulators).
        telemetry: Optional telemetry handle; quarantines and retried
            saves emit ``anomaly``/``recovery`` events through it.
    """

    __slots__ = ("_dir", "_strict", "_save_retries", "_save_backoff", "_sleep", "_telemetry", "quarantined", "save_failures")

    def __init__(
        self,
        directory: str | os.PathLike[str],
        strict: bool = True,
        save_retries: int = 2,
        save_backoff: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if save_retries < 0:
            raise PersistenceError(f"save_retries must be >= 0, got {save_retries}")
        if not save_backoff >= 0.0:  # rejects NaN as well as negatives
            raise PersistenceError(f"save_backoff must be >= 0, got {save_backoff}")
        self._dir = Path(directory)
        self._strict = strict
        self._save_retries = save_retries
        self._save_backoff = save_backoff
        self._sleep = sleep
        self._telemetry = telemetry
        #: Files set aside by lenient loads, newest last.
        self.quarantined: list[Path] = []
        #: Save attempts that failed (including ones later retried OK).
        self.save_failures = 0

    @property
    def directory(self) -> Path:
        """The backing directory."""
        return self._dir

    @property
    def strict(self) -> bool:
        """Whether corrupt files raise instead of being quarantined."""
        return self._strict

    def path_for(self, app_id: str) -> Path:
        """The file that holds ``app_id``'s targets."""
        return self._dir / _safe_filename(app_id)

    def quarantine_path_for(self, app_id: str) -> Path:
        """Where ``app_id``'s targets land if quarantined as corrupt."""
        path = self.path_for(app_id)
        return path.with_name(path.name + QUARANTINE_SUFFIX)

    # -- operations ----------------------------------------------------------------
    def load(
        self, app_id: str, strict: bool | None = None
    ) -> Mapping[str, Any] | None:
        """Return the persisted snapshot for ``app_id``, or ``None``.

        ``strict`` overrides the store-level mode for this call.  Strict
        loads raise :class:`PersistenceError` for unreadable or malformed
        files; lenient loads quarantine them (rename to ``*.corrupt``) and
        return ``None`` so the caller re-bootstraps.
        """
        effective_strict = self._strict if strict is None else strict
        path = self.path_for(app_id)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except UnicodeDecodeError as exc:
            return self._fail(
                effective_strict, path, f"corrupt target file {path}: {exc}"
            )
        except OSError as exc:
            return self._fail(effective_strict, path, f"cannot read {path}: {exc}")
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as exc:
            return self._fail(
                effective_strict, path, f"corrupt target file {path}: {exc}"
            )
        if not isinstance(document, dict):
            return self._fail(
                effective_strict, path, f"corrupt target file {path}: not an object"
            )
        version = document.get("version")
        if version != FORMAT_VERSION:
            return self._fail(
                effective_strict,
                path,
                f"target file {path} has unsupported version {version!r}",
            )
        state = document.get("state")
        if not isinstance(state, dict):
            return self._fail(
                effective_strict, path, f"target file {path} is missing its state"
            )
        return state

    def save(self, app_id: str, state: Mapping[str, Any]) -> Path:
        """Atomically persist ``state`` for ``app_id``; return the path.

        Transient :class:`OSError` failures are retried up to
        ``save_retries`` times with exponential backoff; only a fully
        exhausted attempt sequence raises :class:`PersistenceError`.
        """
        path = self.path_for(app_id)
        document = {"version": FORMAT_VERSION, "app_id": app_id, "state": state}
        last_error: OSError | None = None
        for attempt in range(self._save_retries + 1):
            try:
                self._write_atomically(path, document)
                return path
            except OSError as exc:
                last_error = exc
                self.save_failures += 1
                self._note_save_failure(exc, attempt)
                if attempt < self._save_retries:
                    self._sleep(self._save_backoff * (2.0**attempt))
        raise PersistenceError(
            f"cannot save targets to {path} after "
            f"{self._save_retries + 1} attempts: {last_error}"
        ) from last_error

    def delete(self, app_id: str) -> bool:
        """Remove ``app_id``'s targets; return whether a file existed."""
        path = self.path_for(app_id)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise PersistenceError(f"cannot delete {path}: {exc}") from exc

    # -- internals --------------------------------------------------------------------
    def _write_atomically(self, path: Path, document: Mapping[str, Any]) -> None:
        self._dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=self._dir
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            # Never leave the temp file behind on any failure.
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _fail(self, strict: bool, path: Path, message: str) -> None:
        if strict:
            raise PersistenceError(message)
        self._quarantine(path, message)
        return None

    def _quarantine(self, path: Path, message: str) -> None:
        """Set a corrupt file aside as ``<name>.corrupt`` (best effort)."""
        target = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:
            # The file may be gone or the directory read-only; treating it
            # as missing is still the right degraded behaviour.
            return
        self.quarantined.append(target)
        tel = self._telemetry
        if tel is not None:
            tel.emit(
                obs_events.AnomalyDetected(
                    t=tel.now,
                    src=tel.label,
                    anomaly="corrupt_target",
                    detail=message,
                )
            )
            tel.emit(
                obs_events.RecoveryAction(
                    t=tel.now,
                    src=tel.label,
                    action="quarantine",
                    detail=str(target),
                )
            )
            tel.metrics.inc("target_files_quarantined")

    def _note_save_failure(self, exc: OSError, attempt: int) -> None:
        tel = self._telemetry
        if tel is not None:
            tel.emit(
                obs_events.AnomalyDetected(
                    t=tel.now,
                    src=tel.label,
                    anomaly="save_failure",
                    value=float(attempt),
                    detail=str(exc),
                )
            )
            if attempt < self._save_retries:
                tel.emit(
                    obs_events.RecoveryAction(
                        t=tel.now, src=tel.label, action="save_retry"
                    )
                )
            tel.metrics.inc("target_save_failures")
