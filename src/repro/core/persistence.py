"""Persistent target-rate storage (paper section 7.1).

"The library persistently maintains target rates for the regulated
application. ... Periodically and at termination, target rate information is
written to this same file to preserve targets for future executions."

:class:`TargetStore` keeps one JSON document per application identity in a
directory.  Writes are atomic (write-to-temp, fsync, rename) so a crash
mid-save can never corrupt an existing target file — a regulator that loses
its targets silently would re-enter bootstrap and probation, which for a
long-running service is a real regression.  A missing file simply means "no
prior calibration"; a *corrupt* file raises
:class:`~repro.core.errors.PersistenceError` by default (or is treated as
missing with ``strict=False``).

The stored document wraps the snapshot produced by
:meth:`repro.core.controller.ThreadRegulator.export_state` with a format
version for forward compatibility.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Any, Mapping

from repro.core.errors import PersistenceError

__all__ = ["TargetStore", "FORMAT_VERSION"]

#: Version tag embedded in every persisted document.
FORMAT_VERSION = 1

_SAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]+")


def _safe_filename(app_id: str) -> str:
    """Map an application identity to a filesystem-safe filename."""
    cleaned = _SAFE_CHARS.sub("_", app_id.strip())
    if not cleaned.strip("._-"):
        raise PersistenceError(f"unusable application identity: {app_id!r}")
    return f"{cleaned}.manners.json"


class TargetStore:
    """Directory-backed persistence for calibration state."""

    def __init__(self, directory: str | os.PathLike[str], strict: bool = True) -> None:
        self._dir = Path(directory)
        self._strict = strict

    @property
    def directory(self) -> Path:
        """The backing directory."""
        return self._dir

    def path_for(self, app_id: str) -> Path:
        """The file that holds ``app_id``'s targets."""
        return self._dir / _safe_filename(app_id)

    # -- operations ----------------------------------------------------------------
    def load(self, app_id: str) -> Mapping[str, Any] | None:
        """Return the persisted snapshot for ``app_id``, or ``None``.

        Raises :class:`PersistenceError` for unreadable or malformed files
        when the store is strict; otherwise treats them as missing.
        """
        path = self.path_for(app_id)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            return self._fail(f"cannot read {path}: {exc}")
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as exc:
            return self._fail(f"corrupt target file {path}: {exc}")
        if not isinstance(document, dict):
            return self._fail(f"corrupt target file {path}: not an object")
        version = document.get("version")
        if version != FORMAT_VERSION:
            return self._fail(
                f"target file {path} has unsupported version {version!r}"
            )
        state = document.get("state")
        if not isinstance(state, dict):
            return self._fail(f"target file {path} is missing its state")
        return state

    def save(self, app_id: str, state: Mapping[str, Any]) -> Path:
        """Atomically persist ``state`` for ``app_id``; return the path."""
        path = self.path_for(app_id)
        document = {"version": FORMAT_VERSION, "app_id": app_id, "state": state}
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=path.name + ".", suffix=".tmp", dir=self._dir
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, indent=2, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                # Never leave the temp file behind on any failure.
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise PersistenceError(f"cannot save targets to {path}: {exc}") from exc
        return path

    def delete(self, app_id: str) -> bool:
        """Remove ``app_id``'s targets; return whether a file existed."""
        path = self.path_for(app_id)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise PersistenceError(f"cannot delete {path}: {exc}") from exc

    # -- internals --------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        if self._strict:
            raise PersistenceError(message)
        return None
