"""Per-thread regulation state machine (paper sections 4.1-4.4, 7.1).

:class:`ThreadRegulator` is the component behind the paper's
``Testpoint(index, count, metrics)`` call for a single regulated thread.  It
is *pure*: it never sleeps, spawns threads, or reads a clock.  The embedding
substrate (the simulator bridge, the realtime adapter, or BeNice) calls
:meth:`ThreadRegulator.on_testpoint` with a timestamp and cumulative progress
counters and receives a :class:`TestpointDecision` saying how long the thread
must now be suspended (0 to proceed immediately).

Responsibilities, mapped to the paper:

* lightweight gate for rapid successive calls (section 7.1);
* per-metric-set progress deltas; duration measured from when the previous
  testpoint *released* the thread, so suspension time is never mistaken for
  slow progress (section 4.1);
* target durations from per-set calibrators — exponential averaging for
  single-metric sets, ridge regression for concurrent multi-metric sets
  (sections 4.4, 6.2, 6.3);
* statistical rate comparison via the sequential sign test, spanning metric
  sets/phases (sections 4.2, 6.1);
* exponential suspension backoff with cap (section 4.1);
* bootstrap with no true regulation, followed by a probationary period with
  a capped duty cycle (section 4.3);
* subsampling: testpoints that arrive while the thread should still have
  been suspended (an application overriding regulation) are excluded from
  calibration (section 4.3);
* hung-thread discard: an interval longer than the hung threshold is
  presumed to contain external delay and contributes no rate measurement
  (section 7.1);
* clock-anomaly guards (section 4.1's sanity checks under the fault model
  of ``docs/robustness.md``): a backward timestamp, a zero-elapsed
  interval, or an implausible rate spike (more than
  ``rate_spike_factor`` times the calibrated rate) discards the sample —
  rebasing baselines, perturbing neither the calibrated target nor the
  sign test — and reports an ``anomaly`` event.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.calibration import Calibrator, make_calibrator
from repro.core.comparator import RateComparator, StatisticalComparator
from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.errors import MetricError, RegulationStateError
from repro.core.rate import MIN_MEASURABLE_DURATION
from repro.core.signtest import Judgment
from repro.core.suspension import SuspensionTimer
from repro.obs import events as obs_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["TestpointDecision", "RegulatorStats", "ThreadRegulator"]

#: Tolerance (seconds) when deciding whether a testpoint arrived before the
#: end of its thread's mandated suspension.  Absorbs clock jitter in real
#: substrates; exact in the simulator.
_OFF_PROTOCOL_SLACK = 1e-6

def _encode_time(value: float) -> float | None:
    """JSON-safe encoding for pre-priming time baselines (``-inf`` → ``None``)."""
    return None if value == -math.inf else value


def _decode_time(value: float | None) -> float:
    """Inverse of :func:`_encode_time`."""
    return -math.inf if value is None else float(value)


#: Minimum calibration samples a metric set needs before its samples are
#: submitted to the comparator.  A set seen for the first time mid-run
#: (a new execution phase) calibrates briefly before it can trigger
#: regulation, mirroring the per-set allocate-on-first-use behaviour of the
#: library interface (section 7.1).
_SET_WARMUP_SAMPLES = 4


@dataclass(frozen=True, slots=True)
class TestpointDecision:
    """Outcome of one testpoint call.

    Attributes:
        processed: ``False`` when the lightweight gate absorbed the call
            (too soon since the previous processed testpoint); all other
            fields are then inert.
        delay: Seconds the thread must be suspended before proceeding.
            0.0 means proceed immediately.
        judgment: The comparator's verdict for this testpoint, or ``None``
            if no comparison was made (priming call, bootstrap, warm-up,
            hung discard).
        duration: Measured seconds since the thread was last released.
        target_duration: Target duration for this sample's progress, or
            ``None`` when no comparison was made.
        deltas: Progress deltas for the reporting metric set.
        calibrated: Whether this sample was folded into the calibrator.
        bootstrap: Whether the thread is still in its bootstrap phase.
        probation_delay: Portion of ``delay`` imposed by the probationary
            duty-cycle cap rather than by a POOR judgment.
        discarded_hung: Whether the interval was discarded as a presumed
            hang / external delay.
        off_protocol: Whether this testpoint arrived before the previous
            suspension had been served (application overriding regulation).
        anomaly: Reason the sample was discarded by an anomaly guard
            (``"clock_backward"``, ``"zero_elapsed"``, ``"rate_spike"``,
            or a reason passed to
            :meth:`ThreadRegulator.discard_next_interval` such as
            ``"watchdog_stall"``), or ``None`` for a normal sample.
    """

    processed: bool
    delay: float = 0.0
    judgment: Judgment | None = None
    duration: float = 0.0
    target_duration: float | None = None
    deltas: tuple[float, ...] = ()
    calibrated: bool = False
    bootstrap: bool = False
    probation_delay: float = 0.0
    discarded_hung: bool = False
    off_protocol: bool = False
    anomaly: str | None = None

    @property
    def should_suspend(self) -> bool:
        """Whether the caller must suspend the thread before continuing."""
        return self.delay > 0.0


@dataclass(slots=True)
class RegulatorStats:
    """Aggregate counters for introspection, tracing, and experiments."""

    testpoints: int = 0
    lightweight: int = 0
    processed: int = 0
    poor_judgments: int = 0
    good_judgments: int = 0
    indeterminate: int = 0
    calibration_samples: int = 0
    hung_discards: int = 0
    off_protocol_samples: int = 0
    clock_anomalies: int = 0
    zero_elapsed_discards: int = 0
    rate_spike_discards: int = 0
    forced_discards: int = 0
    total_suspension: float = 0.0
    probation_suspension: float = 0.0


class _MetricSetState:
    """Per-metric-set bookkeeping: last counters and the calibrator."""

    __slots__ = ("arity", "last_counters", "calibrator")

    def __init__(self, arity: int, calibrator: Calibrator) -> None:
        self.arity = arity
        self.last_counters: tuple[float, ...] | None = None
        self.calibrator = calibrator


class ThreadRegulator:
    """Full regulation state machine for one low-importance thread."""

    # verify: allow-slots (the verify regulator invariant monitor shadows
    # on_testpoint through the instance dict; one regulator per thread, so
    # the per-instance dict is not hot-path allocation churn)

    def __init__(
        self,
        config: MannersConfig = DEFAULT_CONFIG,
        comparator: RateComparator | None = None,
        start_time: float | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self._config = config
        self._telemetry = telemetry
        self._comparator = comparator or StatisticalComparator(
            alpha=config.alpha,
            beta=config.beta,
            max_samples=config.max_sign_samples,
            telemetry=telemetry,
        )
        self._suspension = SuspensionTimer(
            initial=config.initial_suspension,
            maximum=config.max_suspension,
            telemetry=telemetry,
        )
        #: Telemetry-only probation tracking (never affects decisions).
        self._was_in_probation = False
        self._sets: dict[int, _MetricSetState] = {}
        #: Time the thread was last released (previous testpoint arrival plus
        #: its mandated delay); ``None`` until the priming testpoint.
        self._interval_start: float | None = None
        #: End of the suspension mandated by the previous decision; testpoints
        #: arriving before this are off-protocol.
        self._resume_at: float = -math.inf
        #: Arrival time of the most recent processed testpoint.
        self._last_arrival: float = -math.inf
        self._start_time = start_time
        self._processed_testpoints = 0
        #: Reason to discard the next processed testpoint (set by the
        #: supervisor's watchdog); ``None`` when nothing is pending.
        self._discard_next: str | None = None
        self.stats = RegulatorStats()

    # -- introspection ---------------------------------------------------------
    @property
    def config(self) -> MannersConfig:
        """The regulator's configuration."""
        return self._config

    @property
    def suspension(self) -> SuspensionTimer:
        """The exponential suspension timer (read-mostly)."""
        return self._suspension

    @property
    def in_bootstrap(self) -> bool:
        """Whether the thread is still within its bootstrap testpoints."""
        return self._processed_testpoints < self._config.bootstrap_testpoints

    def in_probation(self, now: float) -> bool:
        """Whether ``now`` falls within the probationary period."""
        if self._start_time is None or self._config.probation_period <= 0.0:
            return False
        return now < self._start_time + self._config.probation_period

    def metric_set_indices(self) -> tuple[int, ...]:
        """Indices of the metric sets seen so far."""
        return tuple(sorted(self._sets))

    def calibrator(self, index: int) -> Calibrator:
        """The calibrator for metric set ``index`` (must exist)."""
        try:
            return self._sets[index].calibrator
        except KeyError:
            raise RegulationStateError(f"unknown metric set index {index}") from None

    def target_duration(self, index: int, deltas: Sequence[float]) -> float:
        """Target duration for ``deltas`` under set ``index``'s calibration."""
        return self.calibrator(index).target_duration(deltas)

    # -- persistence -------------------------------------------------------------
    def export_state(self, include_runtime: bool = False) -> dict:
        """Serializable snapshot of the regulator's learned and phase state.

        Always captured: per-set calibrations (with their exact warm-up
        counts), the suspension timer's backoff position, the open sign-test
        window, the processed-testpoint count (bootstrap phase), and the
        start time (probation phase) — everything needed for a restored
        regulator to issue the same verdicts an uninterrupted one would.

        With ``include_runtime=True``, the snapshot additionally captures
        the in-flight interval baselines (release time, suspension deadline,
        last arrival, per-set last counters, pending forced discard), making
        the save→load round trip *bit-identical* mid-run: the restored
        regulator's subsequent decision stream matches the original's
        exactly.  Runtime baselines are clock readings, so they only make
        sense when the restored regulator resumes on the same clock (the
        simulator, or a checkpoint of a live run); plain restarts should
        leave them out and let the first testpoint re-prime.
        """
        state: dict = {
            "sets": {
                str(index): {
                    "arity": set_state.arity,
                    "calibration": set_state.calibrator.export_state(),
                }
                for index, set_state in self._sets.items()
            },
            "suspension": self._suspension.export_state(),
            "processed_testpoints": self._processed_testpoints,
            "start_time": self._start_time,
        }
        comparator = self._comparator
        if hasattr(comparator, "export_state"):
            state["comparator"] = comparator.export_state()
        if include_runtime:
            state["runtime"] = {
                "interval_start": self._interval_start,
                "resume_at": _encode_time(self._resume_at),
                "last_arrival": _encode_time(self._last_arrival),
                "discard_next": self._discard_next,
                "was_in_probation": self._was_in_probation,
                "last_counters": {
                    str(index): (
                        None
                        if set_state.last_counters is None
                        else list(set_state.last_counters)
                    )
                    for index, set_state in self._sets.items()
                },
            }
        return state

    def import_state(self, state: Mapping) -> None:
        """Restore a snapshot persisted by :meth:`export_state`.

        Every section is optional, so snapshots from older format revisions
        still load.  Current snapshots restore the exact phase: calibrator
        warm-up counts, suspension backoff (including saturation), the open
        sign-test window, the bootstrap testpoint count, and the probation
        start time all survive the round trip.  Legacy snapshots (a bare
        ``sets`` mapping) keep the original restart semantics: persisted
        targets carry full weight and bootstrap is skipped (section 7.1).
        """
        sets = state.get("sets", {})
        for key, entry in sets.items():
            index = int(key)
            arity = int(entry["arity"])
            set_state = self._ensure_set(index, arity)
            set_state.calibrator.import_state(entry["calibration"])
        if "suspension" in state:
            self._suspension.import_state(state["suspension"])
        comparator = self._comparator
        if "comparator" in state and hasattr(comparator, "import_state"):
            comparator.import_state(state["comparator"])
        if "processed_testpoints" in state:
            self._processed_testpoints = max(
                self._processed_testpoints, int(state["processed_testpoints"])
            )
        elif sets:
            self._processed_testpoints = max(
                self._processed_testpoints, self._config.bootstrap_testpoints
            )
        if state.get("start_time") is not None:
            self._start_time = float(state["start_time"])
        runtime = state.get("runtime")
        if runtime is not None:
            interval_start = runtime.get("interval_start")
            self._interval_start = (
                None if interval_start is None else float(interval_start)
            )
            self._resume_at = _decode_time(runtime.get("resume_at"))
            self._last_arrival = _decode_time(runtime.get("last_arrival"))
            self._discard_next = runtime.get("discard_next")
            self._was_in_probation = bool(runtime.get("was_in_probation", False))
            for key, counters in runtime.get("last_counters", {}).items():
                index = int(key)
                if counters is not None and index in self._sets:
                    self._sets[index].last_counters = tuple(
                        float(c) for c in counters
                    )

    # -- main entry point -----------------------------------------------------------
    def on_testpoint(
        self, now: float, index: int, counters: Sequence[float]
    ) -> TestpointDecision:
        """Process a testpoint; return what the thread must do next.

        Args:
            now: Current clock reading, in seconds.
            index: Metric-set index (the first argument of the paper's
                ``Testpoint`` call); a new index allocates a fresh metric
                set on first use.
            counters: Cumulative progress counters for the set, one per
                metric, monotone non-decreasing across calls.
        """
        self.stats.testpoints += 1
        if self._start_time is None:
            self._start_time = now
        tel = self._telemetry
        if tel is not None:
            tel.tick(now)
            tel.metrics.inc("testpoints")

        arity = len(counters)
        set_state = self._ensure_set(index, arity)
        values = self._validate_counters(set_state, counters)

        # Priming call: establish baselines, no measurement possible yet.
        if self._interval_start is None:
            self._interval_start = now
            self._last_arrival = now
            set_state.last_counters = values
            self._processed_testpoints += 1
            self.stats.processed += 1
            if tel is not None:
                tel.metrics.inc("testpoints_processed")
                tel.emit(
                    obs_events.PhaseTransition(
                        t=now,
                        src=tel.label,
                        phase="bootstrap" if self.in_bootstrap else "regulating",
                    )
                )
            return TestpointDecision(processed=True, bootstrap=self.in_bootstrap)

        # Clock-anomaly guard (section 4.1): a timestamp earlier than the
        # previous processed testpoint means the substrate's clock stepped
        # backwards.  The interval is meaningless, so rebase everything on
        # the regressed reading — one discard, not a run of them — and
        # cancel any pending suspension deadline we can no longer trust.
        if now < self._last_arrival - _OFF_PROTOCOL_SLACK:
            self.stats.clock_anomalies += 1
            set_state.last_counters = values
            was_bootstrap = self.in_bootstrap
            self._processed_testpoints += 1
            self.stats.processed += 1
            if tel is not None:
                tel.metrics.inc("testpoints_processed")
                self._note_bootstrap_exit(tel, was_bootstrap, now)
            return self._discard_anomalous(
                now,
                "clock_backward",
                bootstrap=self.in_bootstrap,
                detail=f"testpoint at {now} precedes previous at {self._last_arrival}",
            )

        # Lightweight gate (section 7.1): absorb rapid successive calls.
        # Time is measured from the thread's release when it honoured its
        # suspension, and from its previous call when it did not (an
        # off-protocol caller hammering testpoints must still be gated).
        since_release = now - self._interval_start
        since_arrival = now - self._last_arrival
        gate = self._config.min_testpoint_interval
        if (0.0 <= since_release < gate) or (since_release < 0.0 and since_arrival < gate):
            self.stats.lightweight += 1
            if tel is not None:
                tel.metrics.inc("testpoints_lightweight")
            return TestpointDecision(processed=False)

        if tel is not None:
            in_probation_now = self.in_probation(now)
            if self._was_in_probation and not in_probation_now:
                tel.emit(
                    obs_events.PhaseTransition(
                        t=now, src=tel.label, phase="probation_ended"
                    )
                )
            self._was_in_probation = in_probation_now

        # A pending forced discard (the supervisor's watchdog evicted this
        # thread mid-interval): the interval spans an external stall, so it
        # carries no usable rate information — adopt the counters and
        # rebase, exactly like a hung discard but below the hung threshold.
        if self._discard_next is not None:
            reason = self._discard_next
            self._discard_next = None
            self.stats.forced_discards += 1
            set_state.last_counters = values
            was_bootstrap = self.in_bootstrap
            self._processed_testpoints += 1
            self.stats.processed += 1
            if tel is not None:
                tel.metrics.inc("testpoints_processed")
                self._note_bootstrap_exit(tel, was_bootstrap, now)
            return self._discard_anomalous(
                now,
                reason,
                duration=max(now - self._interval_start, 0.0),
                bootstrap=self.in_bootstrap,
            )

        off_protocol = now < self._resume_at - _OFF_PROTOCOL_SLACK
        if off_protocol:
            self.stats.off_protocol_samples += 1
            # The thread executed when regulation said to suspend; measure
            # from when it was last *observed*, not from the phantom release.
            duration = max(now - self._last_arrival, 0.0)
        else:
            duration = max(now - self._interval_start, 0.0)

        if set_state.last_counters is None:
            # First report for a set introduced mid-run: baseline only.
            set_state.last_counters = values
            was_bootstrap = self.in_bootstrap
            self._processed_testpoints += 1
            self.stats.processed += 1
            if tel is not None:
                tel.metrics.inc("testpoints_processed")
                self._note_bootstrap_exit(tel, was_bootstrap, now)
            self._finish(now, delay=0.0)
            return TestpointDecision(processed=True, bootstrap=self.in_bootstrap)

        deltas = tuple(new - old for new, old in zip(values, set_state.last_counters))
        set_state.last_counters = values
        was_bootstrap = self.in_bootstrap
        self._processed_testpoints += 1
        self.stats.processed += 1
        if tel is not None:
            tel.metrics.inc("testpoints_processed")
            self._note_bootstrap_exit(tel, was_bootstrap, now)
            if off_protocol:
                tel.metrics.inc("off_protocol_samples")

        # Hung-thread discard (section 7.1): an interval spanning a large
        # external delay carries no usable rate information.
        if duration > self._config.hung_threshold:
            self.stats.hung_discards += 1
            if tel is not None:
                tel.metrics.inc("discards_hung")
                tel.emit(
                    obs_events.SampleDiscarded(
                        t=now, src=tel.label, reason="hung", duration=duration
                    )
                )
                tel.emit(
                    obs_events.TestpointProcessed(
                        t=now,
                        src=tel.label,
                        set_index=index,
                        duration=duration,
                        deltas=deltas,
                        bootstrap=self.in_bootstrap,
                        off_protocol=off_protocol,
                        discarded_hung=True,
                    )
                )
            self._finish(now, delay=0.0)
            return TestpointDecision(
                processed=True,
                duration=duration,
                deltas=deltas,
                discarded_hung=True,
                bootstrap=self.in_bootstrap,
                off_protocol=off_protocol,
            )

        # Zero-elapsed guard (section 4.1): with no *measurable* time between
        # processed testpoints (a frozen or coarsely quantized clock) the
        # sample has no rate.  Sub-epsilon durations count as zero here —
        # matching the RateSample.rate() contract — because dividing by them
        # manufactures absurd finite rates that would corrupt the calibrated
        # target.  Judging such a sample would also feed the sign test a
        # spurious faster-than-target observation, so discard instead.
        if duration <= MIN_MEASURABLE_DURATION:
            self.stats.zero_elapsed_discards += 1
            return self._discard_anomalous(
                now,
                "zero_elapsed",
                deltas=deltas,
                bootstrap=self.in_bootstrap,
                off_protocol=off_protocol,
            )

        # Rate-spike guard (section 4.1): progress more than
        # ``rate_spike_factor`` times faster than the calibrated target is
        # physically implausible (a clock glitch or torn counter read, not
        # a suddenly thousandfold-faster machine).  Folding it into the
        # calibrator would corrupt the learned target, so discard it before
        # calibration and judgment.
        if (
            not self.in_bootstrap
            and not off_protocol
            and set_state.calibrator.sample_count >= _SET_WARMUP_SAMPLES
            and any(d > 0.0 for d in deltas)
        ):
            expected = set_state.calibrator.target_duration(deltas)
            if (
                math.isfinite(expected)
                and expected > 0.0
                and duration * self._config.rate_spike_factor < expected
            ):
                self.stats.rate_spike_discards += 1
                return self._discard_anomalous(
                    now,
                    "rate_spike",
                    duration=duration,
                    deltas=deltas,
                    bootstrap=self.in_bootstrap,
                    off_protocol=off_protocol,
                    detail=(
                        f"duration {duration} vs target {expected} "
                        f"(factor {self._config.rate_spike_factor})"
                    ),
                )

        # Causal tracing (repro.obs.trace2): the testpoint span roots this
        # decision's tree — calibration updates, sign-test samples, the
        # judgment, and the suspension all parent back to it.
        ctx = tel.trace_ctx if tel is not None and tel.emitting else None
        if ctx is not None:
            ctx.testpoint = ctx.new_id()
            tel.emit(
                obs_events.Span(
                    t=now,
                    src=tel.label,
                    span_id=ctx.testpoint,
                    name="testpoint",
                    attrs={
                        "set_index": index,
                        "duration": duration,
                        "off_protocol": off_protocol,
                        "probation": self.in_probation(now),
                    },
                )
            )

        # Calibration (section 4.3): every on-protocol sample feeds the
        # calibrator with equal weight; off-protocol samples are subsampled
        # away because they would not have executed under strict regulation.
        calibrated = False
        if not off_protocol and duration > 0.0:
            if tel is not None:
                if tel.emitting:
                    tel.emit(
                        obs_events.CalibrationSample(
                            t=now,
                            src=tel.label,
                            set_index=index,
                            duration=duration,
                            deltas=deltas,
                        )
                    )
                tel.metrics.inc("calibration_samples")
            set_state.calibrator.update(duration, deltas)
            self.stats.calibration_samples += 1
            calibrated = True
        elif tel is not None and off_protocol:
            tel.metrics.inc("discards_subsample")
            tel.emit(
                obs_events.SampleDiscarded(
                    t=now, src=tel.label, reason="subsample", duration=duration
                )
            )

        bootstrap = self.in_bootstrap
        warming = set_state.calibrator.sample_count < _SET_WARMUP_SAMPLES

        judgment: Judgment | None = None
        target_duration: float | None = None
        delay = 0.0
        if not bootstrap and not warming:
            target_duration = set_state.calibrator.target_duration(deltas)
            judgment = self._comparator.observe(duration, target_duration)
            if judgment is Judgment.POOR:
                self.stats.poor_judgments += 1
                # Backoff level of the suspension being imposed now (the
                # on_poor call below increments consecutive_poor).
                level = self._suspension.consecutive_poor
                delay = self._suspension.on_poor()
                if tel is not None:
                    tel.metrics.inc("judgments_poor")
                    tel.metrics.inc("suspensions")
                    tel.metrics.histogram("suspension_delay").observe(delay)
                    tel.emit(
                        obs_events.SuspensionStarted(
                            t=now, src=tel.label, delay=delay, level=level
                        )
                    )
            elif judgment is Judgment.GOOD:
                self.stats.good_judgments += 1
                self._suspension.on_good()
                if tel is not None:
                    tel.metrics.inc("judgments_good")
            else:
                self.stats.indeterminate += 1
                if tel is not None:
                    tel.metrics.inc("judgments_indeterminate")

        # Probationary duty-cycle cap (section 4.3): until the probation
        # period expires, the thread may execute at most ``probation_duty``
        # of the time, bounding the damage of a target bootstrapped on a
        # loaded system.
        probation_delay = 0.0
        if self.in_probation(now):
            floor = duration * (1.0 - self._config.probation_duty) / self._config.probation_duty
            if floor > delay:
                probation_delay = floor - delay
                delay = floor
            self.stats.probation_suspension += probation_delay

        if ctx is not None and delay > 0.0:
            # POOR-imposed suspensions chain to the judgment that caused
            # them; probation-floor suspensions chain to the testpoint.
            tel.emit(
                obs_events.Span(
                    t=now,
                    src=tel.label,
                    span_id=ctx.new_id(),
                    parent=(
                        ctx.judgment
                        if judgment is Judgment.POOR
                        else ctx.testpoint
                    ),
                    name="suspension",
                    attrs={
                        "delay": delay,
                        "level": self._suspension.consecutive_poor,
                        "probation_delay": probation_delay,
                        "target": target_duration,
                    },
                )
            )

        self.stats.total_suspension += delay
        if tel is not None:
            tel.metrics.counter("execution_seconds").inc(duration)
            tel.metrics.counter("suspension_seconds").inc(delay)
            tel.metrics.histogram("testpoint_duration").observe(duration)
            tel.metrics.gauge("backoff_level").set(
                float(self._suspension.consecutive_poor)
            )
            if target_duration is not None:
                tel.metrics.gauge("target_duration").set(target_duration)
            if tel.emitting:
                tel.emit(
                    obs_events.TestpointProcessed(
                        t=now,
                        src=tel.label,
                        set_index=index,
                        duration=duration,
                        target_duration=target_duration,
                        deltas=deltas,
                        delay=delay,
                        judgment=None if judgment is None else judgment.value,
                        calibrated=calibrated,
                        bootstrap=bootstrap,
                        probation_delay=probation_delay,
                        off_protocol=off_protocol,
                    )
                )
        self._finish(now, delay)
        return TestpointDecision(
            processed=True,
            delay=delay,
            judgment=judgment,
            duration=duration,
            target_duration=target_duration,
            deltas=deltas,
            calibrated=calibrated,
            bootstrap=bootstrap,
            probation_delay=probation_delay,
            off_protocol=off_protocol,
        )

    def mark_resumed(self, when: float) -> None:
        """Correct the release time after the caller served a suspension.

        Real substrates sleep with jitter; calling this with the actual wake
        time keeps the next interval's duration exact.  Optional: without
        it, the regulator assumes the mandated delay was served precisely.
        """
        if self._interval_start is not None and when > self._interval_start:
            self._interval_start = when

    def discard_next_interval(self, reason: str = "external_stall") -> None:
        """Mark the in-flight interval as unusable for rate measurement.

        Called by the supervisor's watchdog when it evicts this thread for
        stalling: the interval ending at the thread's next processed
        testpoint spans the stall, so that testpoint will adopt its
        counters, rebase, and contribute nothing to calibration or the
        sign test.  ``reason`` becomes the decision's
        :attr:`TestpointDecision.anomaly` and the ``anomaly`` event's tag.
        """
        self._discard_next = reason

    # -- internals --------------------------------------------------------------
    def _discard_anomalous(
        self,
        now: float,
        anomaly: str,
        *,
        duration: float = 0.0,
        deltas: tuple[float, ...] = (),
        bootstrap: bool = False,
        off_protocol: bool = False,
        detail: str = "",
    ) -> TestpointDecision:
        """Drop the current sample, rebase times, report the anomaly."""
        tel = self._telemetry
        if tel is not None:
            tel.metrics.inc("discards_anomaly")
            tel.emit(
                obs_events.AnomalyDetected(
                    t=now, src=tel.label, anomaly=anomaly, value=duration, detail=detail
                )
            )
            tel.emit(
                obs_events.SampleDiscarded(
                    t=now, src=tel.label, reason=anomaly, duration=duration
                )
            )
            tel.emit(
                obs_events.RecoveryAction(
                    t=now, src=tel.label, action="sample_discarded", detail=anomaly
                )
            )
        self._finish(now, delay=0.0)
        return TestpointDecision(
            processed=True,
            duration=duration,
            deltas=deltas,
            bootstrap=bootstrap,
            off_protocol=off_protocol,
            anomaly=anomaly,
        )

    def _finish(self, now: float, delay: float) -> None:
        self._last_arrival = now
        self._interval_start = now + delay
        self._resume_at = now + delay

    def _note_bootstrap_exit(
        self, tel: "Telemetry", was_bootstrap: bool, now: float
    ) -> None:
        if was_bootstrap and not self.in_bootstrap:
            tel.emit(
                obs_events.PhaseTransition(t=now, src=tel.label, phase="regulating")
            )

    def _ensure_set(self, index: int, arity: int) -> _MetricSetState:
        state = self._sets.get(index)
        if state is None:
            if arity < 1:
                raise MetricError(
                    f"metric set {index} must have at least one metric"
                )
            state = _MetricSetState(
                arity,
                make_calibrator(
                    arity, self._config, telemetry=self._telemetry, set_index=index
                ),
            )
            self._sets[index] = state
        return state

    def _validate_counters(
        self, state: _MetricSetState, counters: Sequence[float]
    ) -> tuple[float, ...]:
        if len(counters) != state.arity:
            raise MetricError(
                f"metric set expects {state.arity} metrics, got {len(counters)}"
            )
        values = tuple(float(c) for c in counters)
        for i, value in enumerate(values):
            if not math.isfinite(value):
                raise MetricError(f"metric {i} is not finite: {value}")
        if state.last_counters is not None:
            for i, (new, old) in enumerate(zip(values, state.last_counters)):
                if new < old:
                    raise MetricError(
                        f"metric {i} regressed from {old} to {new}; counters "
                        "must be cumulative and monotone"
                    )
        return values
