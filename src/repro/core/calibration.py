"""Automatic target-rate calibration (paper sections 4.3, 4.4, 6.2, 6.3).

A *calibrator* learns, per metric set, the progress rates the application
achieves when it is not contending for resources.  Two concrete calibrators
implement a common duck-typed interface (``update``, ``target_duration``,
``ready``, ``export_state``, ``import_state``):

* :class:`SingleMetricCalibrator` — exponential average of the measured
  progress rate (Eq. 4), for metric sets with one metric.
* :class:`RidgeCalibrator` (from :mod:`repro.core.regression`) — ridge
  regression over decayed sufficient statistics, for metric sets with
  several concurrent metrics.

Both express their output as a **target duration** for a given progress
vector (section 4.4): the time the progress *should* have taken at target
rates.  The comparator then asks whether the measured duration exceeded the
target duration — the formulation that generalizes from one metric to many.

The orchestration concerns of section 4.3 — bootstrap, probation, and
subsampling of off-protocol testpoints — live in
:class:`~repro.core.controller.ThreadRegulator`, because they apply to the
whole regulated thread rather than to any single metric set.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.core.averaging import ExponentialAverager
from repro.core.config import MannersConfig
from repro.core.errors import MetricError
from repro.core.regression import RidgeCalibrator
from repro.obs import events as obs_events
from repro.obs.metrics import RATE_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["Calibrator", "MedianScale", "SingleMetricCalibrator", "make_calibrator"]


class MedianScale:
    """Median correction for mean-based targets (Robbins-Monro tracking).

    The calibrators estimate *mean* uncontended rates (exponential average,
    Eq. 4; least squares, Eq. 8), but the statistical comparator is a sign
    test: its null hypothesis is about the *median* sample.  When the
    per-testpoint rate distribution is skewed — e.g. windows dominated by
    sequential disk chunks are far faster than windows containing file-
    boundary seeks — the mean rate exceeds the median rate, a majority of
    honest samples fall below target, and the regulator suspends a process
    that is progressing perfectly well on an idle machine.

    ``MedianScale`` multiplies target durations by a quantile-tracked
    factor: on each calibration sample the factor takes a small
    multiplicative step up (sample below target) or down (at/above
    target), with step sizes chosen so it converges to the point where a
    fraction ``below_quantile`` of honest samples fall below target, and
    tracks drift thereafter.  The default quantile of 1/3 keeps the
    steady-state sign-test stream comfortably on the GOOD side (the paper
    counts "at least as good as the target" as good progress) while still
    condemning genuine contention — which pushes *every* sample below
    target — within the minimum window.

    The factor is clamped to ``bounds`` so that sustained resource
    contention (which inflates every sample) cannot silently stretch
    targets far enough to mask itself: genuine contention roughly doubles
    durations, well past the default 1.6x ceiling.
    """

    __slots__ = ("_scale", "_up", "_down", "_lo", "_hi")

    def __init__(
        self,
        eta: float = 0.02,
        bounds: tuple[float, float] = (0.5, 1.6),
        below_quantile: float = 1.0 / 3.0,
    ) -> None:
        if not 0.0 < eta < 0.5:
            raise ValueError(f"eta must be in (0, 0.5), got {eta}")
        lo, hi = bounds
        if not 0.0 < lo <= 1.0 <= hi:
            raise ValueError(f"bounds must bracket 1.0, got {bounds}")
        if not 0.0 < below_quantile < 1.0:
            raise ValueError(f"below_quantile must be in (0, 1), got {below_quantile}")
        self._scale = 1.0
        # Zero expected log-step at P(below) = below_quantile:
        #   P(below) * up == (1 - P(below)) * down.
        self._up = (1.0 + eta) ** (1.0 - below_quantile)
        self._down = (1.0 + eta) ** below_quantile
        self._lo = lo
        self._hi = hi

    @property
    def scale(self) -> float:
        """The current multiplicative correction."""
        return self._scale

    def observe(self, duration: float, predicted: float) -> None:
        """Step toward the target quantile given one (measured, predicted) pair."""
        if predicted <= 0.0 or duration <= 0.0:
            return
        if duration > predicted * self._scale:
            self._scale = min(self._scale * self._up, self._hi)
        else:
            self._scale = max(self._scale / self._down, self._lo)

    def export_state(self) -> float:
        """The persisted form (just the factor)."""
        return self._scale

    def import_state(self, value: float) -> None:
        """Restore a persisted factor (clamped into bounds)."""
        self._scale = min(max(float(value), self._lo), self._hi)


@runtime_checkable
class Calibrator(Protocol):
    """Common interface of target-rate calibrators."""

    @property
    def arity(self) -> int:
        """Number of metrics in this calibrator's metric set."""
        ...  # pragma: no cover - protocol stub

    @property
    def sample_count(self) -> int:
        """Calibration samples absorbed so far."""
        ...  # pragma: no cover - protocol stub

    def update(self, duration: float, deltas: Sequence[float]) -> None:
        """Fold in one calibration-eligible testpoint sample."""
        ...  # pragma: no cover - protocol stub

    def target_duration(self, deltas: Sequence[float]) -> float:
        """Target duration for a progress vector at calibrated rates."""
        ...  # pragma: no cover - protocol stub

    def export_state(self) -> dict:
        """Serializable snapshot."""
        ...  # pragma: no cover - protocol stub

    def import_state(self, state: dict) -> None:
        """Restore a snapshot."""
        ...  # pragma: no cover - protocol stub


class SingleMetricCalibrator:
    """Exponential-average calibrator for a one-metric set (Eq. 4).

    The target rate is the exponential average of per-testpoint progress
    rates; the target duration for a progress delta ``dp`` is then
    ``dp / target_rate``.
    """

    __slots__ = ("_avg", "_median", "_telemetry", "_set_index")

    def __init__(
        self,
        window: int,
        telemetry: "Telemetry | None" = None,
        set_index: int = 0,
    ) -> None:
        self._avg = ExponentialAverager(window)
        self._median = MedianScale()
        self._telemetry = telemetry
        self._set_index = set_index

    @property
    def arity(self) -> int:
        return 1

    @property
    def sample_count(self) -> int:
        return self._avg.sample_count

    @property
    def target_rate(self) -> float | None:
        """Calibrated rate in progress units per second, or ``None``."""
        return self._avg.value

    def update(self, duration: float, deltas: Sequence[float]) -> None:
        """Fold one (duration, progress-delta) sample into the average."""
        if len(deltas) != 1:
            raise MetricError(f"expected 1 metric, got {len(deltas)}")
        dp = float(deltas[0])
        if not math.isfinite(duration) or duration <= 0.0:
            # A zero-length interval carries no rate information.
            return
        if not math.isfinite(dp) or dp < 0.0:
            raise MetricError(f"progress delta must be finite and non-negative: {dp}")
        self._median.observe(duration, self._mean_duration(deltas))
        self._avg.update(dp / duration)
        tel = self._telemetry
        if tel is not None:
            if tel.emitting:
                tel.emit(
                    obs_events.TargetUpdated(
                        t=tel.now,
                        src=tel.label,
                        set_index=self._set_index,
                        sample_count=self._avg.sample_count,
                        target_rate=self._avg.value,
                        scale=self._median.scale,
                    )
                )
                ctx = tel.trace_ctx
                if ctx is not None:
                    tel.emit(
                        obs_events.Span(
                            t=tel.now,
                            src=tel.label,
                            span_id=ctx.new_id(),
                            parent=ctx.testpoint,
                            name="calibration_update",
                            attrs={
                                "set_index": self._set_index,
                                "sample_count": self._avg.sample_count,
                                "target_rate": self._avg.value,
                                "scale": self._median.scale,
                            },
                        )
                    )
            if self._avg.value is not None:
                tel.metrics.gauge("target_rate").set(self._avg.value)
            tel.metrics.gauge("calibration_scale").set(self._median.scale)
            tel.metrics.histogram("progress_rate", RATE_BUCKETS).observe(
                dp / duration
            )

    def _mean_duration(self, deltas: Sequence[float]) -> float:
        rate = self._avg.value
        if rate is None or rate <= 0.0:
            return 0.0
        return float(deltas[0]) / rate

    def target_duration(self, deltas: Sequence[float]) -> float:
        """Target duration for the delta at the calibrated (median-corrected) rate."""
        if len(deltas) != 1:
            raise MetricError(f"expected 1 metric, got {len(deltas)}")
        return self._mean_duration(deltas) * self._median.scale

    def export_state(self) -> dict:
        """Serializable snapshot (rate + warm-up count + median factor).

        ``samples`` records the averager's warm-up position; without it a
        restored calibrator weighted its next update ``1/n`` instead of
        ``1/(samples+1)`` and the save→load round trip drifted from the
        uninterrupted run.
        """
        return {
            "rate": self._avg.value,
            "samples": self._avg.sample_count,
            "median_scale": self._median.export_state(),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot.

        Snapshots carrying a ``samples`` count restore the averager's exact
        warm-up position, so the subsequent update stream is bit-identical
        to an uninterrupted run.  Legacy snapshots (rate only) fall back to
        the section 7.1 restart semantics: the persisted rate carries full
        window weight.
        """
        rate = state.get("rate")
        if rate is None:
            return
        rate = float(rate)
        if not math.isfinite(rate) or rate < 0.0:
            raise MetricError(f"persisted rate must be finite and non-negative: {rate}")
        if "samples" in state:
            samples = int(state["samples"])
            if samples < 1:
                raise MetricError(
                    f"persisted sample count must be >= 1 with a rate, got {samples}"
                )
            self._avg.import_state({"value": rate, "count": samples})
        else:
            self._avg.seed(rate)
        if "median_scale" in state:
            self._median.import_state(state["median_scale"])


def make_calibrator(
    arity: int,
    config: MannersConfig,
    telemetry: "Telemetry | None" = None,
    set_index: int = 0,
) -> Calibrator:
    """Build the appropriate calibrator for a metric set of ``arity`` metrics.

    One metric: exponential averaging of the rate (section 6.2).  Several
    concurrent metrics: ridge regression over decayed sufficient statistics
    (section 6.3).  With ``telemetry``, the calibrator emits a
    ``target_updated`` event per absorbed sample, tagged ``set_index``.
    """
    if arity < 1:
        raise MetricError(f"metric set must have at least one metric, got {arity}")
    if arity == 1:
        return SingleMetricCalibrator(
            config.averaging_n, telemetry=telemetry, set_index=set_index
        )
    return RidgeCalibrator(
        arity,
        theta=config.theta,
        nu=config.ridge_nu,
        min_rate=config.min_metric_rate,
        telemetry=telemetry,
        set_index=set_index,
    )
