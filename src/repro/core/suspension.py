"""Exponential suspension timer (paper section 4.1).

On each POOR judgment the regulator suspends the low-importance process for
the current suspension time and then doubles it, up to a cap; on a GOOD
judgment the suspension time resets to its initial value.  INDETERMINATE
judgments preserve the current value (section 4.2): the process keeps
running and collecting samples, but if it is eventually judged poor the
backoff continues from where it left off.

The exponential increase makes the low-importance process adapt to the time
scale of the high-importance workload: brief activity costs only short
suspensions, while sustained activity pushes the process to infrequent
execution probes.  The cap bounds the worst-case resumption latency
(the "suspension overshoot" visible in the paper's Figure 7).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.errors import ConfigError
from repro.obs import events as obs_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["capped_backoff", "SuspensionTimer"]

#: ``2.0 ** k`` raises :class:`OverflowError` once ``k`` exceeds the IEEE-754
#: double exponent range (k >= 1024).  Any doubling count that large has
#: certainly pinned the backoff at its cap, so the law short-circuits there.
_MAX_DOUBLINGS = 1024


def capped_backoff(initial: float, k: int, maximum: float) -> float:
    """Suspension imposed on the ``k``-th consecutive poor judgment (§4.1).

    Computes ``min(initial * 2**k, maximum)`` without tripping the two float
    overflow hazards the naive expression has: ``2.0 ** k`` raises
    :class:`OverflowError` for ``k >= 1024``, and ``initial * 2.0 ** k`` can
    silently overflow to ``inf`` for smaller ``k`` when ``initial`` is large.
    Both cases are far past any finite cap, so they clamp to ``maximum``.

    ``maximum`` may be ``inf`` (an uncapped analytic model); the result is
    then the exact doubled value while representable and ``inf`` beyond.

    The overflow clamp itself is the shared
    :func:`repro.simos.engine.clamp_horizon` helper — one policy for every
    horizon that can outgrow float math, here and in the wheel core's
    far-future band.
    """
    if k < 0:
        raise ConfigError(f"doubling count must be non-negative, got {k}")
    if not initial > 0:
        raise ConfigError(f"initial suspension must be positive, got {initial}")
    from repro.simos.engine import clamp_horizon

    grown = math.inf if k >= _MAX_DOUBLINGS else initial * (2.0 ** k)
    return clamp_horizon(grown, maximum)


class SuspensionTimer:
    """Tracks the suspension duration across judgments.

    The timer distinguishes the *current* suspension time (what the next
    POOR judgment will impose) from the *consecutive poor count*, which the
    analytic model in :mod:`repro.core.queueing` calls ``k``: the suspension
    imposed on the k-th consecutive poor judgment is
    ``min(initial * 2**k, maximum)`` for ``k = 0, 1, 2, ...``.
    """

    __slots__ = ("initial", "maximum", "_current", "_consecutive_poor", "_telemetry")

    def __init__(
        self,
        initial: float = 1.0,
        maximum: float = 256.0,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        # Explicit finiteness checks: NaN compares False against everything,
        # so ``initial <= 0`` alone would wave a NaN straight through and
        # poison every subsequent backoff computation (§4.1 sanity checks).
        if not math.isfinite(initial) or initial <= 0:
            raise ConfigError(
                f"initial suspension must be finite and positive, got {initial}"
            )
        if not math.isfinite(maximum) or maximum < initial:
            raise ConfigError(
                f"maximum suspension {maximum} must be finite and >= "
                f"initial {initial}"
            )
        self.initial = float(initial)
        self.maximum = float(maximum)
        self._current = self.initial
        self._consecutive_poor = 0
        self._telemetry = telemetry

    # -- state -----------------------------------------------------------------
    @property
    def current(self) -> float:
        """Suspension the next POOR judgment will impose, in seconds."""
        return self._current

    @property
    def consecutive_poor(self) -> int:
        """POOR judgments since the last GOOD judgment (or start)."""
        return self._consecutive_poor

    @property
    def saturated(self) -> bool:
        """Whether the suspension time has reached its cap."""
        return self._current >= self.maximum

    # -- transitions -------------------------------------------------------------
    def on_poor(self) -> float:
        """Record a POOR judgment; return the suspension to impose now.

        The returned value is the *pre-doubling* current suspension time, so
        the first poor judgment suspends for ``initial`` seconds, the second
        for ``2 * initial``, and so on — matching section 4.1: "On each
        testpoint that indicates poor progress, the suspension time is
        doubled, up to a set limit."
        """
        # Clamp to the configured band: the invariant
        # ``initial <= current <= maximum`` survives any call sequence, so
        # downstream sleep/park math never sees a negative or runaway value.
        imposed = min(max(self._current, self.initial), self.maximum)
        self._current = min(imposed * 2.0, self.maximum)
        self._consecutive_poor += 1
        return imposed

    def on_good(self) -> None:
        """Record a GOOD judgment; restore the initial suspension time."""
        tel = self._telemetry
        if tel is not None and self._consecutive_poor > 0:
            tel.emit(
                obs_events.BackoffReset(
                    t=tel.now, src=tel.label, from_level=self._consecutive_poor
                )
            )
            ctx = tel.trace_ctx if tel.emitting else None
            if ctx is not None:
                # Parent: the GOOD judgment that triggered this reset (the
                # comparator judged before the regulator called on_good).
                tel.emit(
                    obs_events.Span(
                        t=tel.now,
                        src=tel.label,
                        span_id=ctx.new_id(),
                        parent=ctx.judgment,
                        name="backoff_reset",
                        attrs={"from_level": self._consecutive_poor},
                    )
                )
            tel.metrics.inc("backoff_resets")
        self._current = self.initial
        self._consecutive_poor = 0

    def reset(self) -> None:
        """Alias for :meth:`on_good`, for symmetry with other components."""
        self.on_good()

    # -- persistence -------------------------------------------------------------
    def export_state(self) -> dict:
        """Return the timer's backoff position as a JSON-safe dict.

        Captures both the current suspension time (including saturation at
        the cap) and the consecutive-poor count, so a restored regulator
        resumes the exponential schedule exactly where it left off rather
        than restarting from ``initial``.
        """
        return {
            "current": self._current,
            "consecutive_poor": self._consecutive_poor,
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        The restored suspension time is clamped into this timer's configured
        ``[initial, maximum]`` band, so a snapshot taken under a different
        configuration can never overshoot the cap or undershoot the floor.
        """
        current = float(state.get("current", self.initial))
        if math.isnan(current):
            raise ConfigError("suspension snapshot current must not be NaN")
        consecutive_poor = int(state.get("consecutive_poor", 0))
        if consecutive_poor < 0:
            raise ConfigError(
                f"consecutive_poor must be non-negative, got {consecutive_poor}"
            )
        self._current = min(max(current, self.initial), self.maximum)
        self._consecutive_poor = consecutive_poor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SuspensionTimer(current={self._current}, "
            f"consecutive_poor={self._consecutive_poor})"
        )
