"""Per-process supervisor: time-multiplex isolation of regulated threads.

The paper's library spins up one supervisor thread per process
(section 7.1).  Every regulated application thread records its progress at a
testpoint and then waits for the supervisor to signal it to proceed; the
supervisor releases at most one thread at a time, chosen by priority and
decay-usage scheduling, and defers to the machine-wide superintendent before
releasing anyone.

This module implements the supervisor as a pure decision engine.  The
embedding substrate (simulator bridge or realtime adapter) owns the actual
blocking and waking; it drives the supervisor through three calls:

* :meth:`Supervisor.on_testpoint` — a thread reported progress; returns the
  thread's :class:`~repro.core.controller.TestpointDecision` (lightweight
  calls pass straight through without giving up the execution slot).
* :meth:`Supervisor.poll` — (re)assign the execution slot; returns the
  thread that may now run, or ``None``.
* :meth:`Supervisor.next_wake_time` — when to poll again if nobody is
  eligible yet.

A thread may proceed from its testpoint exactly when it is past its
regulator-mandated suspension *and* it holds the execution slot (and,
transitively, its process holds the superintendent token).

Hung threads (section 7.1): if the slot owner fails to testpoint within the
hung threshold, :meth:`check_hung` evicts it so another thread can run; the
evicted thread's eventual testpoint is discarded by its regulator (the
interval exceeds the same threshold) and it simply re-queues for the slot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.core.comparator import RateComparator
from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.controller import TestpointDecision, ThreadRegulator
from repro.core.errors import RegulationStateError
from repro.core.scheduling import MultiplexArbiter
from repro.core.superintendent import Superintendent
from repro.obs import events as obs_events
from repro.obs.telemetry import scope_label

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["Supervisor", "ThreadRecord"]


@dataclass(slots=True)
class ThreadRecord:
    """Supervisor-side state for one regulated thread."""

    regulator: ThreadRegulator
    #: Time of the thread's most recent processed testpoint.
    last_testpoint: float = -math.inf
    #: Time the thread was last released to run (for usage charging).
    released_at: float | None = None
    #: Whether the thread was evicted as hung and has not yet returned.
    hung: bool = False
    #: Learned release-to-testpoint spacing (exponential average); the
    #: watchdog's notion of how long this thread normally runs between
    #: testpoints.  ``None`` until the first observed interval.
    spacing_ema: float | None = None


class Supervisor:
    """Arbitrates the execution slot among one process's regulated threads."""

    __slots__ = ("_config", "_threads", "_arbiter", "_superintendent", "_telemetry", "_pid")

    def __init__(
        self,
        config: MannersConfig = DEFAULT_CONFIG,
        superintendent: Superintendent | None = None,
        process_id: Hashable = "process",
        process_priority: int = 0,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self._config = config
        self._arbiter = MultiplexArbiter(usage_decay=config.usage_decay)
        self._threads: dict[Hashable, ThreadRecord] = {}
        self._superintendent = superintendent
        self._pid = process_id
        self._telemetry = telemetry
        if superintendent is not None and process_id not in superintendent:
            superintendent.register_process(process_id, priority=process_priority)

    # -- membership ----------------------------------------------------------------
    @property
    def config(self) -> MannersConfig:
        """The supervisor's (and its regulators' default) configuration."""
        return self._config

    @property
    def process_id(self) -> Hashable:
        """Identity under which this process is registered machine-wide."""
        return self._pid

    def register_thread(
        self,
        tid: Hashable,
        priority: int = 0,
        config: MannersConfig | None = None,
        comparator: "RateComparator | None" = None,
    ) -> ThreadRegulator:
        """Admit a thread for regulation; returns its fresh regulator.

        ``comparator`` overrides the statistical rate comparator (used by
        the direct-comparison ablation).
        """
        if tid in self._threads:
            raise RegulationStateError(f"thread {tid!r} already registered")
        tel = self._telemetry
        regulator = ThreadRegulator(
            config or self._config,
            comparator=comparator,
            telemetry=None if tel is None else tel.scoped(scope_label(tid)),
        )
        self._threads[tid] = ThreadRecord(regulator=regulator)
        self._arbiter.add(tid, priority=priority)
        return regulator

    def unregister_thread(self, tid: Hashable) -> None:
        """Withdraw a thread (at its exit); frees the slot if it held it."""
        self._record(tid)
        del self._threads[tid]
        self._arbiter.remove(tid)

    def set_thread_priority(self, tid: Hashable, priority: int) -> None:
        """The paper's relative-priority library call (section 7.1)."""
        self._record(tid)
        self._arbiter.set_priority(tid, priority)

    def thread_ids(self) -> tuple[Hashable, ...]:
        """Registered thread identities."""
        return tuple(self._threads)

    def regulator(self, tid: Hashable) -> ThreadRegulator:
        """The per-thread regulator."""
        return self._record(tid).regulator

    # -- the testpoint path -------------------------------------------------------------
    def on_testpoint(
        self, now: float, tid: Hashable, index: int, counters: Sequence[float]
    ) -> TestpointDecision:
        """Process thread ``tid``'s testpoint.

        On a processed (non-lightweight) testpoint the thread gives up the
        execution slot and becomes eligible again after its mandated delay;
        call :meth:`poll` afterwards to find out who runs next.  Lightweight
        calls return immediately and the thread keeps the slot.
        """
        record = self._record(tid)
        decision = record.regulator.on_testpoint(now, index, counters)
        if not decision.processed:
            return decision
        # Charge the run interval to both arbitration levels.
        if record.released_at is not None:
            used = max(now - record.released_at, 0.0)
            self._arbiter.charge(tid, used)
            if self._superintendent is not None:
                self._superintendent.charge(self._pid, used)
            # Teach the watchdog this thread's normal testpoint spacing.
            if record.spacing_ema is None:
                record.spacing_ema = used
            else:
                record.spacing_ema = 0.7 * record.spacing_ema + 0.3 * used
        record.last_testpoint = now
        record.released_at = None
        record.hung = False
        self._arbiter.set_eligible_at(tid, now + decision.delay)
        self._arbiter.release(tid)
        # Every processed testpoint is also a machine-wide arbitration
        # point: give the superintendent token back (staying in passive
        # contention from now) so decay usage can share execution time
        # among processes, not just among this process's threads.
        if self._superintendent is not None:
            self._superintendent.release(self._pid, now, until=now)
        return decision

    def poll(self, now: float) -> Hashable | None:
        """(Re)assign the execution slot; return the thread that may run.

        Respects the superintendent: the slot is only filled while this
        process holds the machine-wide token.  When no thread is eligible,
        the token is released (with a hint for when this process next wants
        it) so other processes can run.
        """
        current = self._arbiter.owner
        if current is not None:
            return current
        candidate = self._arbiter.peek(now)
        if candidate is None:
            if self._superintendent is not None:
                hint = self._arbiter.next_eligible_time(now)
                self._superintendent.release(self._pid, now, until=hint)
            return None
        if self._superintendent is not None and not self._superintendent.acquire(
            self._pid, now
        ):
            return None
        owner = self._arbiter.acquire(now)
        if owner is not None:
            self._record(owner).released_at = now
            tel = self._telemetry
            if tel is not None:
                tel.tick(now)
                tel.metrics.inc("slot_grants")
                if tel.emitting:
                    tel.emit(
                        obs_events.SlotGranted(
                            t=now,
                            src=tel.label,
                            process=scope_label(self._pid),
                            thread=scope_label(owner),
                        )
                    )
        return owner

    @property
    def running(self) -> Hashable | None:
        """The thread currently holding this process's execution slot."""
        return self._arbiter.owner

    def next_wake_time(self, now: float) -> float | None:
        """When to poll again: the earliest pending thread eligibility.

        ``None`` means either a thread is eligible right now (poll
        immediately) or there are no waiting threads at all; disambiguate
        with :meth:`poll`.
        """
        return self._arbiter.next_eligible_time(now)

    def next_poll_time(self, now: float) -> float | None:
        """Like :meth:`next_wake_time`, but also accounting for the
        superintendent's retry time (a polling token, e.g. the cross-
        process file token, has no way to push a notification)."""
        candidates = []
        thread_wake = self._arbiter.next_eligible_time(now)
        if thread_wake is not None and math.isfinite(thread_wake):
            candidates.append(thread_wake)
        if self._superintendent is not None:
            token_wake = self._superintendent.next_eligible_time(now)
            if token_wake is not None and math.isfinite(token_wake):
                candidates.append(token_wake)
        return min(candidates) if candidates else None

    # -- hung-thread handling --------------------------------------------------------------
    def watchdog_threshold(self, tid: Hashable) -> float:
        """Stall threshold the watchdog applies to ``tid``, in seconds.

        With ``watchdog_multiplier`` disabled (0, the default) or no
        learned spacing yet this is simply the hung threshold; otherwise
        it is ``watchdog_multiplier`` times the thread's learned
        testpoint spacing, floored at ``min_testpoint_interval`` and
        capped at the hung threshold.
        """
        record = self._record(tid)
        threshold = self._config.hung_threshold
        multiplier = self._config.watchdog_multiplier
        if multiplier > 0.0 and record.spacing_ema is not None:
            learned = max(
                multiplier * record.spacing_ema,
                self._config.min_testpoint_interval,
            )
            threshold = min(threshold, learned)
        return threshold

    def check_hung(self, now: float) -> Hashable | None:
        """Evict the slot owner if it has not testpointed within threshold.

        Returns the evicted thread, or ``None``.  The substrate should call
        this from its wake timer; after an eviction, :meth:`poll` will seat
        another thread.

        The threshold is :meth:`watchdog_threshold`: normally the hung
        threshold of section 7.1, but with ``watchdog_multiplier``
        enabled a thread stalled for that multiple of its own learned
        testpoint spacing is evicted early — and its regulator is told to
        discard the interval (the regulator's own hung discard only
        covers gaps beyond the full hung threshold).
        """
        owner = self._arbiter.owner
        if owner is None:
            return None
        record = self._record(owner)
        started = record.released_at if record.released_at is not None else record.last_testpoint
        threshold = self.watchdog_threshold(owner)
        stalled_for = now - started
        if stalled_for <= threshold:
            return None
        record.hung = True
        watchdog = threshold < self._config.hung_threshold
        if watchdog:
            # Below the hung threshold the regulator would happily measure
            # the stall as a slow interval; tell it to discard instead.
            record.regulator.discard_next_interval("watchdog_stall")
        tel = self._telemetry
        if tel is not None:
            tel.tick(now)
            tel.metrics.inc("slot_evictions")
            tel.emit(
                obs_events.SlotEvicted(
                    t=now,
                    src=tel.label,
                    process=scope_label(self._pid),
                    thread=scope_label(owner),
                    idle_for=stalled_for,
                )
            )
            ctx = tel.trace_ctx if tel.emitting else None
            if ctx is not None:
                tel.emit(
                    obs_events.Span(
                        t=now,
                        src=tel.label,
                        span_id=ctx.new_id(),
                        name="watchdog_eviction",
                        attrs={
                            "process": scope_label(self._pid),
                            "thread": scope_label(owner),
                            "idle_for": stalled_for,
                            "threshold": threshold,
                            "watchdog": watchdog,
                        },
                    )
                )
            if watchdog:
                tel.metrics.inc("watchdog_evictions")
                tel.emit(
                    obs_events.AnomalyDetected(
                        t=now,
                        src=tel.label,
                        anomaly="watchdog_stall",
                        value=stalled_for,
                        detail=scope_label(owner),
                    )
                )
                tel.emit(
                    obs_events.RecoveryAction(
                        t=now,
                        src=tel.label,
                        action="watchdog_release",
                        detail=scope_label(owner),
                    )
                )
        if record.released_at is not None:
            used = max(now - record.released_at, 0.0)
            self._arbiter.charge(owner, used)
            if self._superintendent is not None:
                self._superintendent.charge(self._pid, used)
        record.released_at = None
        # A hung thread is out of contention until it testpoints again
        # (its next on_testpoint restores eligibility); otherwise the
        # freed slot could be handed straight back to it.
        self._arbiter.set_eligible_at(owner, math.inf)
        self._arbiter.release(owner)
        return owner

    def is_hung(self, tid: Hashable) -> bool:
        """Whether ``tid`` is currently presumed hung."""
        return self._record(tid).hung

    # -- internals --------------------------------------------------------------------------
    def _record(self, tid: Hashable) -> ThreadRecord:
        try:
            return self._threads[tid]
        except KeyError:
            raise RegulationStateError(f"unknown thread {tid!r}") from None
