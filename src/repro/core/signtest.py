"""Paired-sample sign test for progress-rate judgment (paper section 6.1).

Each testpoint contributes one paired comparison: the measured duration since
the previous testpoint versus the target duration computed from the
calibrated target rates (equivalently, measured rate versus target rate for a
single metric).  The comparator accumulates these binary outcomes and, after
each sample, asks the sign test for one of three verdicts:

* :attr:`Judgment.POOR` — progress is below target with confidence
  ``1 - alpha``; the regulator should suspend and double the suspension time.
* :attr:`Judgment.GOOD` — progress is at or above target with confidence
  ``1 - beta``; the regulator should reset the suspension time.
* :attr:`Judgment.INDETERMINATE` — not enough data; keep running and keep
  collecting samples.

Because the test is non-parametric it makes no assumption about the
distribution of progress-rate noise, and because each sample is compared
against *its own* target (per phase, or the summed multi-metric target
duration), samples from different execution phases combine into a single
judgment (section 4.4).

The decision thresholds come from exact Binomial(n, 1/2) tails:

* poor when ``P(R >= r | p = 1/2) <= alpha`` — under the null hypothesis
  that the true median rate is at least the target, at most half the samples
  should fall below target;
* good when ``P(R <= r | p = 1/2) <= beta`` — under the marginal alternative
  that the median rate is exactly at target, seeing this few below-target
  samples would be surprising.

The minimum window that can recognize poor progress is Eq. (1):
``m = ceil(log2(1 / alpha))`` — the all-below-target run whose null
probability ``2**-n`` first drops below ``alpha``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from functools import lru_cache
from statistics import NormalDist

from repro.core.binomial import binomial_cdf, binomial_sf
from repro.core.errors import ConfigError

#: Window size beyond which thresholds use the normal approximation with
#: continuity correction instead of exact binomial tails.  Exact sums cost
#: O(n) per evaluation, which is prohibitive when a progress stream that
#: hovers exactly at its target grows the window into the thousands; at
#: these sizes the approximation is accurate to within a sample.
_EXACT_LIMIT = 256

_NORMAL = NormalDist()

__all__ = ["Judgment", "SignTest", "poor_threshold", "good_threshold", "min_poor_samples"]


class Judgment(enum.Enum):
    """Tri-state outcome of the statistical rate comparison."""

    POOR = "poor"
    GOOD = "good"
    INDETERMINATE = "indeterminate"


@lru_cache(maxsize=16384)
def poor_threshold(n: int, alpha: float) -> int:
    """Smallest ``r`` such that ``P(R >= r | n, 1/2) <= alpha``.

    Returns ``n + 1`` when no count of below-target samples out of ``n`` is
    extreme enough (i.e. the window is too small to ever judge poor).
    Exact for windows up to ``_EXACT_LIMIT``; a continuity-corrected normal
    approximation beyond that.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
    z = _NORMAL.inv_cdf(1.0 - alpha)
    guess = n / 2.0 + z * math.sqrt(n) / 2.0 + 0.5
    if n > _EXACT_LIMIT:
        return min(max(math.ceil(guess), 0), n + 1)
    if binomial_sf(n, n) > alpha:
        return n + 1
    # Adjust the normal-approximation guess against the exact tail.
    r = min(max(int(guess), 0), n)
    while r <= n and binomial_sf(n, r) > alpha:
        r += 1
    while r > 0 and binomial_sf(n, r - 1) <= alpha:
        r -= 1
    return r


@lru_cache(maxsize=16384)
def good_threshold(n: int, beta: float) -> int:
    """Largest ``r`` such that ``P(R <= r | n, 1/2) <= beta``.

    Returns ``-1`` when no count is small enough (window too small to judge
    good).  Exact for windows up to ``_EXACT_LIMIT``; a continuity-corrected
    normal approximation beyond that.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 < beta < 1.0:
        raise ConfigError(f"beta must be in (0, 1), got {beta}")
    z = _NORMAL.inv_cdf(1.0 - beta)
    guess = n / 2.0 - z * math.sqrt(n) / 2.0 - 0.5
    if n > _EXACT_LIMIT:
        return min(max(math.floor(guess), -1), n)
    if binomial_cdf(n, 0) > beta:
        return -1
    r = min(max(int(guess), 0), n)
    while r >= 0 and binomial_cdf(n, r) > beta:
        r -= 1
    while r < n and binomial_cdf(n, r + 1) <= beta:
        r += 1
    return r


def min_poor_samples(alpha: float) -> int:
    """Eq. (1): minimum window size that can recognize poor progress."""
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
    return math.ceil(math.log2(1.0 / alpha))


@lru_cache(maxsize=64)
def _threshold_tables(
    alpha: float, beta: float, max_samples: int
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Precomputed ``(poor, good)`` decision thresholds for n = 0..max_samples.

    ``poor[n]`` / ``good[n]`` equal :func:`poor_threshold` /
    :func:`good_threshold` exactly; the tables are shared across every
    :class:`SignTest` with the same configuration, so the binomial tail
    walks run once per (alpha, beta, max_samples) per process and the
    per-sample hot path reduces to two tuple indexings.
    """
    poor = tuple(poor_threshold(n, alpha) for n in range(max_samples + 1))
    good = tuple(good_threshold(n, beta) for n in range(max_samples + 1))
    return poor, good


@dataclass(slots=True)
class SignTest:
    """Sequential paired-sample sign test.

    Feed one boolean per testpoint via :meth:`add_sample` (``True`` when the
    sample indicates below-target progress) and receive a
    :class:`Judgment`.  On a POOR or GOOD verdict the window resets
    automatically so the next judgment starts fresh, matching the paper's
    regulator, which acts on each judgment (suspend or reset suspension
    time) and then begins collecting anew.

    ``max_samples`` bounds the window: a stream that hovers exactly at the
    target could stay indeterminate for a very long time, and an unbounded
    window would make the test increasingly sluggish.  When the bound is hit
    the window restarts without issuing a judgment.
    """

    alpha: float = 0.05
    beta: float = 0.2
    max_samples: int = 4096
    # Window state and the precomputed verdict tables, established in
    # __post_init__; excluded from init/repr/eq so the dataclass surface
    # (construction, comparison) is unchanged by slots.
    _n: int = field(init=False, repr=False, compare=False, default=0)
    _below: int = field(init=False, repr=False, compare=False, default=0)
    _poor_table: tuple = field(init=False, repr=False, compare=False)
    _good_table: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0.0 < self.beta < 1.0:
            raise ConfigError(f"beta must be in (0, 1), got {self.beta}")
        if self.max_samples < 8:
            raise ConfigError("max_samples must be >= 8")
        self._n = 0
        self._below = 0
        # The per-sample path indexes these tables instead of walking
        # binomial tails: after construction, add_sample never calls
        # binomial_sf/binomial_cdf and allocates nothing.
        self._poor_table, self._good_table = _threshold_tables(
            self.alpha, self.beta, self.max_samples
        )

    # -- state ---------------------------------------------------------------
    @property
    def sample_count(self) -> int:
        """Number of samples in the current window."""
        return self._n

    @property
    def below_count(self) -> int:
        """Number of below-target samples in the current window."""
        return self._below

    def reset(self) -> None:
        """Discard the current window."""
        self._n = 0
        self._below = 0

    def export_state(self) -> dict:
        """Snapshot the open sample window as a JSON-safe dict.

        The window is part of the regulator's verdict stream: dropping it on
        a save→load cycle shifts every subsequent judgment boundary.
        """
        return {"samples": self._n, "below": self._below}

    def import_state(self, state: dict) -> None:
        """Restore a window snapshot produced by :meth:`export_state`."""
        samples = int(state.get("samples", 0))
        below = int(state.get("below", 0))
        if not 0 <= below <= samples:
            raise ConfigError(
                f"below count {below} must be within [0, samples={samples}]"
            )
        if samples >= self.max_samples:
            raise ConfigError(
                f"window of {samples} samples exceeds max_samples="
                f"{self.max_samples}"
            )
        self._n = samples
        self._below = below

    # -- operation -----------------------------------------------------------
    def add_sample(self, below_target: bool) -> Judgment:
        """Record one paired comparison and return the current verdict.

        POOR and GOOD verdicts consume (reset) the window.
        """
        self._n += 1
        if below_target:
            self._below += 1
        verdict = self.evaluate(self._n, self._below)
        if verdict is not Judgment.INDETERMINATE:
            self.reset()
        elif self._n >= self.max_samples:
            self.reset()
        return verdict

    def thresholds(self, n: int) -> tuple[int, int]:
        """The decision row for a window of ``n`` samples: ``(poor_at, good_at)``.

        ``below >= poor_at`` judges POOR and ``below <= good_at`` judges
        GOOD (``poor_at = n + 1`` / ``good_at = -1`` mean the window is too
        small for that verdict).  This is the threshold-table row the
        tracing layer stamps into sign-test spans so an audit trail shows
        the exact evidence bar each sample was held to.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n <= self.max_samples:
            return self._poor_table[n], self._good_table[n]
        return poor_threshold(n, self.alpha), good_threshold(n, self.beta)

    def evaluate(self, n: int, below: int) -> Judgment:
        """Stateless verdict for ``below`` below-target samples out of ``n``.

        Uses the precomputed threshold tables for ``n <= max_samples`` (the
        only range :meth:`add_sample` can reach); larger ad-hoc windows
        fall back to the threshold functions.
        """
        if n <= 0:
            return Judgment.INDETERMINATE
        if n <= self.max_samples:
            if below >= self._poor_table[n]:
                return Judgment.POOR
            if below <= self._good_table[n]:
                return Judgment.GOOD
            return Judgment.INDETERMINATE
        if below >= poor_threshold(n, self.alpha):
            return Judgment.POOR
        if below <= good_threshold(n, self.beta):
            return Judgment.GOOD
        return Judgment.INDETERMINATE

    @property
    def min_poor_samples(self) -> int:
        """Eq. (1) for this test's ``alpha``."""
        return min_poor_samples(self.alpha)
