"""Decay-usage arbitration for time-multiplex isolation (paper section 4.5).

If several low-importance threads ran concurrently they would contend with
*each other*, depressing each other's progress rates and driving mutual
exponential suspension — unfair and potentially unstable.  MS Manners
therefore lets only one low-importance thread (machine-wide, one process)
execute at a time, multiplexing among them.

:class:`MultiplexArbiter` is the pure arbitration primitive used at both
levels: the per-process supervisor arbitrates its regulated threads, and the
machine-wide superintendent arbitrates processes.  Candidates have a
priority (higher wins; the paper's supervisor "favors high-priority threads
over low-priority threads") and, within a priority level, execution time is
shared by *decay usage scheduling* (Hellerstein '93, cited in section 7.1):
each candidate accrues usage while it owns the slot, usage decays
geometrically at every arbitration decision, and the least-used eligible
candidate wins.

The arbiter is time-fed, never time-reading: callers pass ``now`` into every
method, so the same code serves the simulator and wall-clock substrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.core.errors import ConfigError, RegulationStateError

__all__ = ["CandidateState", "MultiplexArbiter"]


@dataclass(slots=True)
class CandidateState:
    """Arbitration state of one candidate (thread or process)."""

    priority: int = 0
    #: Earliest time the candidate may own the slot (end of its suspension).
    eligible_at: float = -math.inf
    #: Decayed execution usage; lower wins within a priority level.
    usage: float = 0.0
    #: Monotone admission order; breaks exact ties deterministically.
    order: int = 0


class MultiplexArbiter:
    """At-most-one-owner arbitration with priority and decay usage."""

    __slots__ = ("_candidates", "_decay", "_next_order", "_owner")

    def __init__(self, usage_decay: float = 0.9) -> None:
        if not 0.0 < usage_decay < 1.0:
            raise ConfigError(f"usage_decay must be in (0, 1), got {usage_decay}")
        self._decay = usage_decay
        self._candidates: dict[Hashable, CandidateState] = {}
        self._owner: Hashable | None = None
        self._next_order = 0

    # -- membership --------------------------------------------------------------
    def add(self, key: Hashable, priority: int = 0) -> None:
        """Admit a candidate.  Re-adding an existing key is an error."""
        if key in self._candidates:
            raise RegulationStateError(f"candidate {key!r} already registered")
        self._candidates[key] = CandidateState(priority=priority, order=self._next_order)
        self._next_order += 1

    def remove(self, key: Hashable) -> None:
        """Withdraw a candidate; frees the slot if it was the owner."""
        if key not in self._candidates:
            raise RegulationStateError(f"unknown candidate {key!r}")
        del self._candidates[key]
        if self._owner == key:
            self._owner = None

    def __contains__(self, key: Hashable) -> bool:
        return key in self._candidates

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._candidates)

    def __len__(self) -> int:
        return len(self._candidates)

    # -- candidate attributes -------------------------------------------------------
    def set_priority(self, key: Hashable, priority: int) -> None:
        """Change a candidate's priority (takes effect at the next decision)."""
        self._state(key).priority = priority

    def priority(self, key: Hashable) -> int:
        """The candidate's current priority."""
        return self._state(key).priority

    def set_eligible_at(self, key: Hashable, when: float) -> None:
        """Set the earliest time the candidate may own the slot."""
        self._state(key).eligible_at = when

    def eligible_at(self, key: Hashable) -> float:
        """The candidate's earliest ownership time."""
        return self._state(key).eligible_at

    def charge(self, key: Hashable, amount: float) -> None:
        """Accrue execution usage against a candidate."""
        if amount < 0:
            raise ValueError(f"usage charge must be non-negative, got {amount}")
        self._state(key).usage += amount

    def usage(self, key: Hashable) -> float:
        """The candidate's decayed usage."""
        return self._state(key).usage

    # -- arbitration -------------------------------------------------------------------
    @property
    def owner(self) -> Hashable | None:
        """The candidate currently holding the slot, if any."""
        return self._owner

    def release(self, key: Hashable) -> None:
        """The owner relinquishes the slot (idempotent for non-owners)."""
        if self._owner == key:
            self._owner = None

    def acquire(self, now: float) -> Hashable | None:
        """Assign the slot to the best eligible candidate, if it is free.

        Decays every candidate's usage (one decision step), then picks the
        eligible candidate with the highest priority, breaking ties by
        lowest usage and then admission order.  Returns the (possibly
        pre-existing) owner, or ``None`` when the slot stays empty.
        """
        if self._owner is not None:
            return self._owner
        best: Hashable | None = None
        best_key: tuple[float, float, int] | None = None
        for key, state in self._candidates.items():
            if state.eligible_at > now:
                continue
            rank = (-state.priority, state.usage, state.order)
            if best_key is None or rank < best_key:
                best = key
                best_key = rank
        if best is not None:
            for state in self._candidates.values():
                state.usage *= self._decay
            self._owner = best
        return best

    def peek(self, now: float) -> Hashable | None:
        """Return the candidate :meth:`acquire` would pick, without mutating.

        Returns the current owner when the slot is held.
        """
        if self._owner is not None:
            return self._owner
        best: Hashable | None = None
        best_key: tuple[float, float, int] | None = None
        for key, state in self._candidates.items():
            if state.eligible_at > now:
                continue
            rank = (-state.priority, state.usage, state.order)
            if best_key is None or rank < best_key:
                best = key
                best_key = rank
        return best

    def next_eligible_time(self, now: float) -> float | None:
        """Earliest future time a non-owner candidate becomes eligible.

        Returns ``None`` when a candidate is already eligible (the slot can
        be filled at ``now``) or when there are no candidates at all.
        Substrates use this to schedule their wake-up timer.
        """
        earliest: float | None = None
        for key, state in self._candidates.items():
            if key == self._owner:
                continue
            if state.eligible_at <= now:
                return None
            if earliest is None or state.eligible_at < earliest:
                earliest = state.eligible_at
        return earliest

    # -- internals -----------------------------------------------------------------------
    def _state(self, key: Hashable) -> CandidateState:
        try:
            return self._candidates[key]
        except KeyError:
            raise RegulationStateError(f"unknown candidate {key!r}") from None
