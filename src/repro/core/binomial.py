"""Exact binomial tail probabilities for the sign test.

The statistical comparator (paper section 6.1) uses a paired-sample sign
test, whose decision thresholds are quantiles of the Binomial(n, 1/2)
distribution.  The window sizes involved are small (tens of samples), so we
compute tails exactly in log space rather than with a normal approximation.
This module is dependency-free; the test suite cross-checks it against
:mod:`scipy.stats`.

All functions treat the number of "successes" as the count of below-target
samples ``r`` out of ``n`` paired comparisons.
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = [
    "log_binomial_pmf",
    "binomial_pmf",
    "binomial_sf",
    "binomial_cdf",
]


@lru_cache(maxsize=65536)
def log_binomial_pmf(n: int, r: int, p: float = 0.5) -> float:
    """Return ``log P(R = r)`` for ``R ~ Binomial(n, p)``.

    Returns ``-inf`` for impossible outcomes.  ``n`` must be non-negative
    and ``p`` in [0, 1].
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if r < 0 or r > n:
        return -math.inf
    if p == 0.0:
        return 0.0 if r == 0 else -math.inf
    if p == 1.0:
        return 0.0 if r == n else -math.inf
    return (
        math.lgamma(n + 1)
        - math.lgamma(r + 1)
        - math.lgamma(n - r + 1)
        + r * math.log(p)
        + (n - r) * math.log1p(-p)
    )


def binomial_pmf(n: int, r: int, p: float = 0.5) -> float:
    """Return ``P(R = r)`` for ``R ~ Binomial(n, p)``."""
    lp = log_binomial_pmf(n, r, p)
    return 0.0 if lp == -math.inf else math.exp(lp)


def binomial_sf(n: int, r: int, p: float = 0.5) -> float:
    """Return the upper tail ``P(R >= r)`` for ``R ~ Binomial(n, p)``.

    This is the survival function evaluated *inclusively* at ``r``, which is
    the form the sign test needs: the probability, under the null
    hypothesis, of seeing at least as many below-target samples as were
    observed.
    """
    if r <= 0:
        return 1.0
    if r > n:
        return 0.0
    # Sum the smaller tail for accuracy, then complement if needed.
    if r > (n + 1) // 2 or p <= 0.5:
        total = 0.0
        for k in range(r, n + 1):
            total += binomial_pmf(n, k, p)
        return min(total, 1.0)
    return max(0.0, 1.0 - binomial_cdf(n, r - 1, p))


def binomial_cdf(n: int, r: int, p: float = 0.5) -> float:
    """Return the lower tail ``P(R <= r)`` for ``R ~ Binomial(n, p)``."""
    if r < 0:
        return 0.0
    if r >= n:
        return 1.0
    total = 0.0
    for k in range(0, r + 1):
        total += binomial_pmf(n, k, p)
    return min(total, 1.0)
