"""The MS Manners control system: progress-based regulation.

This package implements the paper's primary contribution as pure,
substrate-independent feedback logic.  The main entry points are:

* :class:`~repro.core.library.Manners` — the single-call application facade
  (the paper's ``Testpoint`` interface) for one thread;
* :class:`~repro.core.controller.ThreadRegulator` — the full per-thread
  state machine, for substrates that manage their own time and blocking;
* :class:`~repro.core.supervisor.Supervisor` and
  :class:`~repro.core.superintendent.Superintendent` — time-multiplex
  isolation across threads and processes;
* :class:`~repro.core.config.MannersConfig` — tuning parameters with the
  paper's experimental defaults.

See DESIGN.md for the component-by-component mapping to the paper.
"""

from repro.core.averaging import ExponentialAverager, decay_from_window, window_from_decay
from repro.core.calibration import Calibrator, SingleMetricCalibrator, make_calibrator
from repro.core.clock import Clock, ManualClock, MonotonicClock
from repro.core.comparator import DirectComparator, RateComparator, StatisticalComparator
from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.controller import RegulatorStats, TestpointDecision, ThreadRegulator
from repro.core.errors import (
    ClockError,
    ConfigError,
    MannersError,
    MetricError,
    PersistenceError,
    RegulationStateError,
)
from repro.core.library import Manners
from repro.core.parametric import ParametricComparator
from repro.core.persistence import TargetStore
from repro.core.sanity import ProgressSanityChecker, SanityVerdict
from repro.core.rate import RateCalculator, RateSample
from repro.core.regression import RidgeCalibrator
from repro.core.scheduling import MultiplexArbiter
from repro.core.signtest import Judgment, SignTest, good_threshold, min_poor_samples, poor_threshold
from repro.core.superintendent import Superintendent
from repro.core.supervisor import Supervisor, ThreadRecord
from repro.core.suspension import SuspensionTimer

__all__ = [
    "Calibrator",
    "Clock",
    "ClockError",
    "ConfigError",
    "DEFAULT_CONFIG",
    "DirectComparator",
    "ExponentialAverager",
    "Judgment",
    "Manners",
    "MannersConfig",
    "MannersError",
    "ManualClock",
    "MetricError",
    "MonotonicClock",
    "MultiplexArbiter",
    "ParametricComparator",
    "PersistenceError",
    "ProgressSanityChecker",
    "RateCalculator",
    "RateComparator",
    "RateSample",
    "RegulationStateError",
    "RegulatorStats",
    "RidgeCalibrator",
    "SanityVerdict",
    "SignTest",
    "SingleMetricCalibrator",
    "StatisticalComparator",
    "Superintendent",
    "Supervisor",
    "SuspensionTimer",
    "TargetStore",
    "TestpointDecision",
    "ThreadRecord",
    "ThreadRegulator",
    "decay_from_window",
    "good_threshold",
    "make_calibrator",
    "min_poor_samples",
    "poor_threshold",
    "window_from_decay",
]
