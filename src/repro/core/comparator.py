"""Rate comparators: statistical (paper section 4.2) and direct (ablation).

A comparator consumes one (measured duration, target duration) pair per
processed testpoint and produces a :class:`~repro.core.signtest.Judgment`.
A sample indicates *below-target* progress when the measured duration
exceeds the target duration — the duration formulation of section 4.4, which
is equivalent to rate-versus-target-rate for a single metric and extends to
summed per-metric target durations for several.

* :class:`StatisticalComparator` — accumulates below/above bits in a
  sequential paired-sample sign test and judges only once it is confident
  (the paper's design; necessary because progress measurements are noisy —
  see Figure 8).
* :class:`DirectComparator` — judges every sample immediately.  This is the
  strawman section 4.2 warns against ("overreactive and highly erratic");
  it exists for the ablation benchmark that demonstrates why the sign test
  is needed.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.errors import MetricError
from repro.core.signtest import Judgment, SignTest
from repro.obs import events as obs_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

__all__ = ["RateComparator", "StatisticalComparator", "DirectComparator"]


@runtime_checkable
class RateComparator(Protocol):
    """Common interface of rate comparators."""

    def observe(self, measured_duration: float, target_duration: float) -> Judgment:
        """Fold in one testpoint's comparison; return the current verdict."""
        ...  # pragma: no cover - protocol stub

    def reset(self) -> None:
        """Discard any accumulated comparison state."""
        ...  # pragma: no cover - protocol stub


def _is_below_target(measured_duration: float, target_duration: float) -> bool:
    if not math.isfinite(measured_duration) or measured_duration < 0.0:
        raise MetricError(
            f"measured duration must be finite and non-negative: {measured_duration}"
        )
    if not math.isfinite(target_duration) or target_duration < 0.0:
        raise MetricError(
            f"target duration must be finite and non-negative: {target_duration}"
        )
    # Taking longer than the target duration means progressing below the
    # target rate.  Equality counts as at-target (good), per section 4.1:
    # "If the actual progress rate is at least as good as the target...".
    return measured_duration > target_duration


class StatisticalComparator:
    """Sign-test-backed comparator (the paper's statistical rate comparator).

    Wraps a :class:`~repro.core.signtest.SignTest`.  INDETERMINATE verdicts
    leave all regulator state untouched (the process continues to its next
    testpoint, preserving the current suspension time); POOR and GOOD
    verdicts consume the sample window.
    """

    __slots__ = ("_test", "_telemetry", "_window_opened")

    def __init__(
        self,
        alpha: float = 0.05,
        beta: float = 0.2,
        max_samples: int = 4096,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self._test = SignTest(alpha=alpha, beta=beta, max_samples=max_samples)
        self._telemetry = telemetry
        #: Telemetry-only: substrate time the open window's first sample
        #: arrived, for the time-to-detect histogram and judgment spans.
        self._window_opened = 0.0

    @property
    def sample_count(self) -> int:
        """Samples in the current (unjudged) window."""
        return self._test.sample_count

    @property
    def below_count(self) -> int:
        """Below-target samples in the current window."""
        return self._test.below_count

    def observe(self, measured_duration: float, target_duration: float) -> Judgment:
        """Fold in one comparison; return the sign test's current verdict."""
        below = _is_below_target(measured_duration, target_duration)
        tel = self._telemetry
        if tel is None:
            # Disabled-telemetry hot path: add_sample is table-driven
            # (precomputed thresholds, no binomial walks) and allocates
            # nothing — guarded by bench_engine_hotpath.
            return self._test.add_sample(below)
        test = self._test
        if test.sample_count == 0:
            self._window_opened = tel.now
        # The window resets on a definitive verdict; capture its size first
        # (only when an event will actually be built — a NullSink run skips
        # the captures and the event construction, keeping just metrics).
        emitting = tel.emitting
        ctx = tel.trace_ctx if emitting else None
        if emitting:
            samples = test.sample_count + 1
            below_count = test.below_count + (1 if below else 0)
        if ctx is not None:
            # One span per accumulation step, carrying the exact evidence:
            # the sample's comparison and the threshold-table row it was
            # held to.  Parented to the testpoint that produced the sample.
            poor_at, good_at = test.thresholds(samples)
            sample_span = ctx.new_id()
            ctx.window.append(sample_span)
            tel.emit(
                obs_events.Span(
                    t=tel.now,
                    src=tel.label,
                    span_id=sample_span,
                    parent=ctx.testpoint,
                    name="signtest_sample",
                    attrs={
                        "n": samples,
                        "below": below,
                        "below_count": below_count,
                        "poor_at": poor_at,
                        "good_at": good_at,
                        "measured": measured_duration,
                        "target": target_duration,
                    },
                )
            )
        verdict = test.add_sample(below)
        if verdict is not Judgment.INDETERMINATE:
            time_to_detect = tel.now - self._window_opened
            if emitting:
                tel.emit(
                    obs_events.JudgmentIssued(
                        t=tel.now,
                        src=tel.label,
                        judgment=verdict.value,
                        samples=samples,
                        below=below_count,
                    )
                )
            if ctx is not None:
                judgment_span = ctx.new_id()
                tel.emit(
                    obs_events.Span(
                        t=tel.now,
                        src=tel.label,
                        span_id=judgment_span,
                        parent=ctx.testpoint,
                        links=tuple(ctx.window),
                        name="judgment",
                        attrs={
                            "judgment": verdict.value,
                            "samples": samples,
                            "below": below_count,
                            "poor_at": poor_at,
                            "good_at": good_at,
                            "time_to_detect": time_to_detect,
                        },
                    )
                )
                ctx.judgment = judgment_span
                ctx.window.clear()
            tel.metrics.inc(f"signtest_{verdict.value}_windows")
            tel.metrics.histogram("time_to_detect").observe(time_to_detect)
        elif ctx is not None and test.sample_count == 0:
            # The window hit max_samples and restarted without a verdict;
            # its sample spans no longer feed a future judgment.
            ctx.window.clear()
        return verdict

    def reset(self) -> None:
        """Discard the current sample window."""
        self._test.reset()

    def export_state(self) -> dict:
        """Snapshot the open sign-test window (see ``SignTest.export_state``)."""
        return self._test.export_state()

    def import_state(self, state: dict) -> None:
        """Restore an open sign-test window snapshot."""
        self._test.import_state(state)


class DirectComparator:
    """Immediate per-sample comparator (ablation strawman).

    Every below-target sample is judged POOR and every at-or-above-target
    sample GOOD, with no statistical accumulation.
    """

    __slots__ = ()

    def observe(self, measured_duration: float, target_duration: float) -> Judgment:
        """Judge this single sample immediately (no accumulation)."""
        if _is_below_target(measured_duration, target_duration):
            return Judgment.POOR
        return Judgment.GOOD

    def reset(self) -> None:
        """No accumulated state to discard."""
