"""Exponential averaging for target-rate calibration (paper section 6.2).

The automatic calibrator tracks the target progress rate as an exponential
average of per-testpoint rate measurements:

    r  <-  theta * r + (1 - theta) * dp / d          (Eq. 4)
    theta = (n - 1) / n                              (Eq. 5)

Because the regulator suspends the process whenever progress is poor, few
testpoints reflect contended progress and many reflect uncontended progress,
so the unweighted average converges to the uncontended (ideal) rate — the
key insight of section 4.3.

:class:`ExponentialAverager` is a small, reusable primitive; the calibrators
in :mod:`repro.core.calibration` compose it with bootstrap and subsampling
logic, and :mod:`repro.core.regression` applies the same decay to regression
sufficient statistics (Eqs. 11-12).
"""

from __future__ import annotations

import math

from repro.core.errors import ConfigError, MetricError

__all__ = ["ExponentialAverager", "decay_from_window", "window_from_decay"]


def decay_from_window(n: int | float) -> float:
    """Eq. (5): convert an averaging window ``n`` to the decay ``theta``."""
    if n < 2:
        raise ConfigError(f"averaging window must be >= 2, got {n}")
    return (n - 1) / n


def window_from_decay(theta: float) -> float:
    """Inverse of :func:`decay_from_window`: ``n = 1 / (1 - theta)``."""
    if not 0.0 <= theta < 1.0:
        raise ConfigError(f"decay must be in [0, 1), got {theta}")
    return 1.0 / (1.0 - theta)


class ExponentialAverager:
    """Exponentially weighted mean with equal per-sample weight.

    Early samples are averaged arithmetically until ``window`` samples have
    been seen (a standard bias correction: with a fixed ``theta`` the first
    few estimates would be dominated by the initial value); thereafter the
    update is the paper's Eq. (4).
    """

    __slots__ = ("_theta", "_window", "_value", "_count")

    def __init__(self, window: int, initial: float | None = None) -> None:
        self._theta = decay_from_window(window)
        self._window = int(window)
        self._value = initial
        #: Samples absorbed so far; saturates at the window size.
        self._count = 0 if initial is None else self._window

    @property
    def theta(self) -> float:
        """The decay factor ``(n - 1) / n``."""
        return self._theta

    @property
    def window(self) -> int:
        """The averaging window ``n``."""
        return self._window

    @property
    def value(self) -> float | None:
        """Current estimate, or ``None`` before the first sample."""
        return self._value

    @property
    def sample_count(self) -> int:
        """Samples absorbed (clamped to the window once saturated)."""
        return self._count

    def update(self, sample: float) -> float:
        """Fold one sample into the average; return the new estimate."""
        if not math.isfinite(sample):
            raise ValueError(f"sample must be finite, got {sample}")
        if self._value is None:
            self._value = float(sample)
            self._count = 1
            return self._value
        if self._count < self._window:
            # Arithmetic warm-up: exact mean of the first k samples.
            self._count += 1
            self._value += (sample - self._value) / self._count
        else:
            self._value = self._theta * self._value + (1.0 - self._theta) * sample
        return self._value

    def export_state(self) -> dict:
        """Snapshot the estimate *and* warm-up position as a JSON-safe dict.

        :meth:`seed` alone cannot reproduce a mid-warm-up averager — it
        installs the value at full window weight, so the next update is
        weighted ``1/n`` instead of ``1/(count+1)`` and the restored stream
        drifts from the original.  Round-tripping through
        ``export_state``/``import_state`` is exact.
        """
        return {"value": self._value, "count": self._count}

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state` bit-exactly."""
        value = state.get("value")
        count = int(state.get("count", 0))
        if value is None:
            self._value = None
            self._count = 0
            return
        value = float(value)
        if not math.isfinite(value):
            raise MetricError(f"persisted estimate must be finite, got {value}")
        if count < 1:
            raise MetricError(f"count must be >= 1 when a value is present, got {count}")
        self._value = value
        self._count = min(count, self._window)

    def seed(self, value: float) -> None:
        """Install a persisted estimate as if fully warmed up.

        Used when a regulated application restarts and reloads its target
        rates from stable storage (section 7.1): the persisted target should
        carry full weight immediately rather than being treated as a single
        sample.
        """
        if not math.isfinite(value):
            raise ValueError(f"seed must be finite, got {value}")
        self._value = float(value)
        self._count = self._window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExponentialAverager(window={self._window}, value={self._value!r}, "
            f"count={self._count})"
        )
