"""Progress-metric sanity checking (paper section 11, future work).

"Our method can be thwarted by a malicious program that provides false
progress information.  We could possibly detect this in some instances by
performing sanity checks on the progress metrics relative to measurable
system resource usage."

:class:`ProgressSanityChecker` implements that check.  It learns, by the
same decayed-sufficient-statistics machinery the calibrator uses, how much
*measured resource usage* (bytes of I/O, CPU seconds — anything the OS can
observe without the application's cooperation) normally accompanies a unit
of *reported progress*.  A window whose reported progress far outruns its
resource footprint is flagged as implausible; sustained implausibility is
the signature of a process inflating its counters to dodge regulation.

The checker is advisory: it never regulates by itself (resource usage is a
poor progress signal, as section 11 explains — consumption and progress
can be negatively correlated).  It answers one narrow question: *is this
application's story about its own progress physically plausible?*
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.averaging import ExponentialAverager
from repro.core.errors import ConfigError, MetricError

__all__ = ["SanityVerdict", "ProgressSanityChecker", "ClockAnomalyGuard"]


class ClockAnomalyGuard:
    """Classifies successive clock readings as sane or anomalous (§4.1).

    The paper mandates sanity checks on progress measurements; timestamps
    are half of every measurement.  The guard tracks the last accepted
    reading and classifies each new one:

    * ``"backward"`` — the reading regressed (a stepped wall clock, a
      deserialized stale timestamp);
    * ``"jump"`` — the reading leapt forward by more than ``max_jump``
      seconds (a suspended VM, a laptop lid close);
    * ``None`` — plausible; the reading becomes the new baseline.

    Anomalous readings do **not** move the baseline backward: a backward
    step is measured against the furthest point the clock ever reached, so
    a one-off glitch produces one anomaly, not a run of them.  Forward
    jumps *do* advance the baseline (time really has passed; only the
    spanning interval is suspect).
    """

    __slots__ = ("max_jump", "last", "backward_steps", "forward_jumps")

    def __init__(self, max_jump: float = math.inf) -> None:
        if max_jump <= 0 or math.isnan(max_jump):
            raise ConfigError(f"max_jump must be positive, got {max_jump}")
        self.max_jump = max_jump
        #: Furthest plausible reading seen so far (``None`` until primed).
        self.last: float | None = None
        self.backward_steps = 0
        self.forward_jumps = 0

    def check(self, now: float) -> str | None:
        """Classify ``now``; return ``"backward"``, ``"jump"``, or ``None``."""
        if not math.isfinite(now):
            self.backward_steps += 1
            return "backward"
        if self.last is None:
            self.last = now
            return None
        if now < self.last:
            self.backward_steps += 1
            return "backward"
        if now - self.last > self.max_jump:
            self.forward_jumps += 1
            self.last = now
            return "jump"
        self.last = now
        return None


@dataclass(frozen=True, slots=True)
class SanityVerdict:
    """Outcome of one sanity observation."""

    #: Reported progress per unit of observed resource usage, normalized by
    #: the learned baseline (1.0 = exactly as expensive as usual).
    progress_ratio: float
    #: Whether this window's story is implausible (ratio above threshold).
    implausible: bool
    #: Decayed fraction of recent windows that were implausible.
    suspicion: float


class ProgressSanityChecker:
    """Cross-checks reported progress against observed resource usage."""

    __slots__ = ("_baseline", "_min_samples", "_threshold", "_suspicion", "_suspicion_threshold")

    def __init__(
        self,
        window: int = 200,
        ratio_threshold: float = 4.0,
        suspicion_threshold: float = 0.5,
        min_samples: int = 16,
    ) -> None:
        """Configure the checker.

        Args:
            window: Exponential-averaging window for the baseline cost.
            ratio_threshold: A window reporting more than this multiple of
                the usual progress-per-resource is implausible.
            suspicion_threshold: Decayed implausible fraction above which
                :attr:`suspicious` trips.
            min_samples: Baseline samples required before judging.
        """
        if ratio_threshold <= 1.0:
            raise ConfigError(f"ratio_threshold must exceed 1, got {ratio_threshold}")
        if not 0.0 < suspicion_threshold <= 1.0:
            raise ConfigError(
                f"suspicion_threshold must be in (0, 1], got {suspicion_threshold}"
            )
        if min_samples < 2:
            raise ConfigError(f"min_samples must be >= 2, got {min_samples}")
        self._baseline = ExponentialAverager(window)
        self._suspicion = ExponentialAverager(max(window // 4, 8))
        self._threshold = ratio_threshold
        self._suspicion_threshold = suspicion_threshold
        self._min_samples = min_samples

    # -- state -------------------------------------------------------------------
    @property
    def baseline_progress_per_resource(self) -> float | None:
        """Learned units of progress per unit of resource usage."""
        return self._baseline.value

    @property
    def suspicion(self) -> float:
        """Decayed fraction of recent windows judged implausible."""
        return self._suspicion.value or 0.0

    @property
    def suspicious(self) -> bool:
        """Whether sustained implausibility has crossed the threshold."""
        return (
            self._baseline.sample_count >= self._min_samples
            and self.suspicion > self._suspicion_threshold
        )

    @property
    def ready(self) -> bool:
        """Whether enough baseline has accumulated to judge."""
        return self._baseline.sample_count >= self._min_samples

    # -- operation -----------------------------------------------------------------
    def observe(
        self, progress: float | Sequence[float], resource_usage: float
    ) -> SanityVerdict:
        """Fold in one window of (reported progress, observed usage).

        ``progress`` may be a scalar or a metric vector (summed); usage is
        any non-negative scalar observable (bytes transferred, CPU time).
        Windows with no reported progress are uninformative and pass.
        """
        total = (
            float(progress)
            if isinstance(progress, (int, float))
            else float(sum(progress))
        )
        if not math.isfinite(total) or total < 0:
            raise MetricError(f"progress must be finite and non-negative: {total}")
        if not math.isfinite(resource_usage) or resource_usage < 0:
            raise MetricError(
                f"resource usage must be finite and non-negative: {resource_usage}"
            )
        if total == 0.0:
            return SanityVerdict(0.0, False, self.suspicion)

        observed_rate = total / max(resource_usage, 1e-12)
        baseline = self._baseline.value
        if baseline is None or self._baseline.sample_count < self._min_samples:
            self._baseline.update(observed_rate)
            self._suspicion.update(0.0)
            return SanityVerdict(1.0, False, self.suspicion)

        ratio = observed_rate / max(baseline, 1e-12)
        implausible = ratio > self._threshold
        self._suspicion.update(1.0 if implausible else 0.0)
        if not implausible:
            # Only plausible windows refine the baseline; otherwise a
            # cheater would teach the checker its own inflated cost model.
            self._baseline.update(observed_rate)
        return SanityVerdict(ratio, implausible, self.suspicion)
