"""Parametric rate comparator (paper section 11, future work).

"The non-parametric hypothesis test used by the statistical comparator
requires a minimum number of samples to make a judgment.  A parametric
test could be more responsive, but it would require modeling the progress
rate distribution for each progress metric of an application."

:class:`ParametricComparator` is that alternative: a Wald sequential
probability ratio test (SPRT) on the *log* of measured-to-target duration
ratios, under a Gaussian model whose variance is estimated online.  Using
the magnitudes of the samples (not just their signs) lets strong evidence
— e.g. three samples each taking twice their target — condemn in fewer
than the sign test's minimum ``m = ceil(log2(1/alpha))`` samples.

The price is exactly the modeling assumption the paper names: when the
log-ratio distribution is heavy-tailed or skewed, the Gaussian SPRT's
error rates are no longer guaranteed.  The comparator therefore clamps
individual log-ratios to bound the influence of outliers, and the
benchmark suite compares its responsiveness and false-positive behaviour
against the sign test empirically.

Hypotheses (on the median duration ratio ``rho = measured/target``):

* H0 (good):  ``log rho = 0``   — progressing at target;
* H1 (poor):  ``log rho >= log(degradation)`` — meaningfully degraded.

Wald thresholds: condemn when the log-likelihood ratio exceeds
``log((1-beta)/alpha)``; acquit when it falls below ``log(beta/(1-alpha))``.
"""

from __future__ import annotations

import math

from repro.core.errors import ConfigError, MetricError
from repro.core.signtest import Judgment

__all__ = ["ParametricComparator"]


class ParametricComparator:
    """Gaussian SPRT on log duration ratios (RateComparator-compatible)."""

    __slots__ = ("_mu1", "_sigma2", "_sigma_theta", "_clamp", "_min_samples", "_samples", "_llr", "_lower", "_upper")

    def __init__(
        self,
        alpha: float = 0.05,
        beta: float = 0.2,
        degradation: float = 1.5,
        initial_sigma: float = 0.35,
        sigma_window: int = 200,
        clamp: float = 2.0,
        min_samples: int = 2,
    ) -> None:
        """Configure the test.

        Args:
            alpha: Target type-I error (condemning good progress).
            beta: Target type-II error (acquitting poor progress).
            degradation: The duration ratio H1 is centred on; 1.5 means
                "50% slower counts as contention".
            initial_sigma: Prior standard deviation of log-ratios, used
                until the online estimate warms up.
            sigma_window: Exponential window for the variance estimate.
            clamp: Log-ratios are clamped to ±``clamp`` to bound the
                influence of any single outlier (a crude heavy-tail guard).
            min_samples: Verdicts are withheld until this many samples are
                in the window, so no single freak measurement (one
                pathological seek) can condemn or acquit on its own.
        """
        if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0:
            raise ConfigError(f"alpha/beta must be in (0, 1), got {alpha}, {beta}")
        if alpha >= beta:
            raise ConfigError(
                f"regulation is unstable unless alpha < beta, got {alpha}, {beta}"
            )
        if degradation <= 1.0:
            raise ConfigError(f"degradation must exceed 1, got {degradation}")
        if initial_sigma <= 0 or clamp <= 0:
            raise ConfigError("initial_sigma and clamp must be positive")
        if sigma_window < 8:
            raise ConfigError(f"sigma_window must be >= 8, got {sigma_window}")
        if min_samples < 1:
            raise ConfigError(f"min_samples must be >= 1, got {min_samples}")
        self._min_samples = min_samples
        self._mu1 = math.log(degradation)
        self._upper = math.log((1.0 - beta) / alpha)
        self._lower = math.log(beta / (1.0 - alpha))
        self._sigma2 = initial_sigma**2
        self._sigma_theta = (sigma_window - 1) / sigma_window
        self._clamp = clamp
        self._llr = 0.0
        self._samples = 0

    # -- state ----------------------------------------------------------------
    @property
    def log_likelihood_ratio(self) -> float:
        """Accumulated evidence (positive favours H1 = poor)."""
        return self._llr

    @property
    def sample_count(self) -> int:
        """Samples in the current (unjudged) window."""
        return self._samples

    @property
    def sigma(self) -> float:
        """Current log-ratio standard-deviation estimate."""
        return math.sqrt(self._sigma2)

    def reset(self) -> None:
        """Discard accumulated evidence (variance estimate is retained)."""
        self._llr = 0.0
        self._samples = 0

    # -- operation ---------------------------------------------------------------
    def observe(self, measured_duration: float, target_duration: float) -> Judgment:
        """Fold in one testpoint's comparison; return the current verdict."""
        if not math.isfinite(measured_duration) or measured_duration < 0:
            raise MetricError(f"bad measured duration: {measured_duration}")
        if not math.isfinite(target_duration) or target_duration < 0:
            raise MetricError(f"bad target duration: {target_duration}")
        if measured_duration <= 0.0 or target_duration <= 0.0:
            return Judgment.INDETERMINATE  # no rate information
        x = math.log(measured_duration / target_duration)
        x = max(-self._clamp, min(self._clamp, x))
        # Track variance around the H0 mean — but only from samples
        # consistent with H0.  Samples beyond the midpoint toward H1 are
        # *evidence* of degradation, not noise; folding them into the
        # variance would let contention inflate sigma and dilute its own
        # log-likelihood contribution (the same self-poisoning the paper's
        # calibrator avoids by suspension-driven subsampling).
        if x < self._mu1 / 2.0:
            self._sigma2 = (
                self._sigma_theta * self._sigma2 + (1 - self._sigma_theta) * x * x
            )
            self._sigma2 = min(max(self._sigma2, 1e-4), self._clamp**2)
        # Gaussian log-likelihood ratio for H1 (mean mu1) vs H0 (mean 0).
        self._llr += (self._mu1 * x - 0.5 * self._mu1**2) / self._sigma2
        self._samples += 1
        if self._samples < self._min_samples:
            return Judgment.INDETERMINATE
        if self._llr >= self._upper:
            self.reset()
            return Judgment.POOR
        if self._llr <= self._lower:
            self.reset()
            return Judgment.GOOD
        return Judgment.INDETERMINATE
