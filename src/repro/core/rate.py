"""Per-testpoint progress and duration bookkeeping (paper section 4.1).

A :class:`RateCalculator` keeps, per metric set, the progress counters and
timestamp of the previous processed testpoint.  At each new testpoint it
produces a :class:`RateSample` holding the elapsed duration and the progress
deltas since then.  Progress counters are cumulative and monotone (the
application reports totals, as Windows NT performance counters do); the
calculator derives deltas and rejects counter regressions.

The calculator also implements the *lightweight gate* of section 7.1: calls
arriving faster than the minimum testpoint interval are absorbed — their
progress simply accumulates until enough time has passed to justify full
testpoint processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import MetricError

__all__ = ["RateSample", "RateCalculator"]


@dataclass(frozen=True)
class RateSample:
    """One processed testpoint's measurements.

    Attributes:
        when: Clock reading at this testpoint, in seconds.
        duration: Elapsed seconds since the previous processed testpoint.
        deltas: Progress made along each metric since the previous processed
            testpoint (same order as the metric set's declaration).
    """

    when: float
    duration: float
    deltas: tuple[float, ...]

    def rate(self, metric: int = 0) -> float:
        """Progress rate along ``metric`` in units/second.

        Raises :class:`MetricError` for an out-of-range metric and
        :class:`ZeroDivisionError` is avoided by returning ``inf`` for a
        zero-duration sample with progress (and 0.0 with none).
        """
        if not 0 <= metric < len(self.deltas):
            raise MetricError(
                f"metric index {metric} out of range for {len(self.deltas)} metrics"
            )
        if self.duration <= 0.0:
            return float("inf") if self.deltas[metric] > 0 else 0.0
        return self.deltas[metric] / self.duration


class RateCalculator:
    """Tracks cumulative progress counters and emits per-testpoint samples.

    One instance per (thread, metric set).  The first call establishes the
    baseline and yields no sample.
    """

    __slots__ = ("_arity", "_last_when", "_last_counters", "_pending")

    def __init__(self, arity: int) -> None:
        if arity < 1:
            raise MetricError(f"metric set must have at least one metric, got {arity}")
        self._arity = arity
        self._last_when: float | None = None
        self._last_counters: tuple[float, ...] | None = None
        #: Progress absorbed from lightweight-gated calls since the last
        #: processed testpoint, already folded into ``_last_counters`` deltas
        #: by virtue of counters being cumulative.  Kept for introspection.
        self._pending = 0

    @property
    def arity(self) -> int:
        """Number of metrics in this metric set."""
        return self._arity

    @property
    def primed(self) -> bool:
        """Whether a baseline observation exists."""
        return self._last_when is not None

    def observe(self, when: float, counters: Sequence[float]) -> RateSample | None:
        """Process a testpoint at time ``when`` with cumulative ``counters``.

        Returns a :class:`RateSample` with the deltas since the previous
        processed testpoint, or ``None`` on the priming call.

        Raises:
            MetricError: wrong arity, non-finite or regressing counters, or
                a timestamp earlier than the previous one.
        """
        values = self._validate(when, counters)
        if self._last_when is None or self._last_counters is None:
            self._last_when = when
            self._last_counters = values
            return None
        duration = when - self._last_when
        deltas = tuple(
            new - old for new, old in zip(values, self._last_counters)
        )
        self._last_when = when
        self._last_counters = values
        self._pending = 0
        return RateSample(when=when, duration=duration, deltas=deltas)

    def rebase(self, when: float, counters: Sequence[float]) -> None:
        """Reset the baseline without emitting a sample.

        Used after a hung-thread episode (section 7.1): the interval spanning
        the hang must not be factored into the progress rate, so the next
        sample starts from here.
        """
        values = self._validate(when, counters)
        self._last_when = when
        self._last_counters = values
        self._pending = 0

    # -- internals -------------------------------------------------------------
    def _validate(self, when: float, counters: Sequence[float]) -> tuple[float, ...]:
        if len(counters) != self._arity:
            raise MetricError(
                f"expected {self._arity} metrics, got {len(counters)}"
            )
        values = tuple(float(c) for c in counters)
        for i, value in enumerate(values):
            if not value == value or value in (float("inf"), float("-inf")):
                raise MetricError(f"metric {i} is not finite: {value}")
        if self._last_counters is not None:
            for i, (new, old) in enumerate(zip(values, self._last_counters)):
                if new < old:
                    raise MetricError(
                        f"metric {i} regressed from {old} to {new}; cumulative "
                        "progress counters must be monotone"
                    )
        if self._last_when is not None and when < self._last_when:
            raise MetricError(
                f"testpoint time {when} precedes previous testpoint {self._last_when}"
            )
        return values
