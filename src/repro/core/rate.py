"""Per-testpoint progress and duration bookkeeping (paper section 4.1).

A :class:`RateCalculator` keeps, per metric set, the progress counters and
timestamp of the previous processed testpoint.  At each new testpoint it
produces a :class:`RateSample` holding the elapsed duration and the progress
deltas since then.  Progress counters are cumulative and monotone (the
application reports totals, as Windows NT performance counters do); the
calculator derives deltas and rejects counter regressions.

The calculator also implements the *lightweight gate* of section 7.1: calls
arriving faster than the minimum testpoint interval are absorbed — their
progress simply accumulates until enough time has passed to justify full
testpoint processing.

Guard modes: by default malformed observations (regressing counters,
backward timestamps, non-finite values) raise
:class:`~repro.core.errors.MetricError` — the right behaviour when the
caller controls both clock and counters.  With ``strict=False`` the
calculator instead *discards* the anomalous observation, rebases its
baseline on whatever parts of it were usable, and records the reason in
:attr:`RateCalculator.last_anomaly` — the §4.1 sanity-check behaviour for
substrates fed by untrusted clocks or torn counter reads.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import MetricError

__all__ = ["MIN_MEASURABLE_DURATION", "RateSample", "RateCalculator"]

#: Durations at or below this many seconds are indistinguishable from a
#: frozen clock at double precision: dividing a progress delta by them
#: manufactures astronomically large but *finite* rates (e.g. 1e-10 units
#: over 2e-308 s reads as ~5e297 units/s) that sail past the §4.1
#: rate-spike guard's multiplicative threshold.  The rate contract treats
#: them exactly like a zero-duration interval instead.
MIN_MEASURABLE_DURATION = sys.float_info.epsilon


@dataclass(frozen=True, slots=True)
class RateSample:
    """One processed testpoint's measurements.

    Attributes:
        when: Clock reading at this testpoint, in seconds.
        duration: Elapsed seconds since the previous processed testpoint.
        deltas: Progress made along each metric since the previous processed
            testpoint (same order as the metric set's declaration).
    """

    when: float
    duration: float
    deltas: tuple[float, ...]

    def rate(self, metric: int = 0) -> float:
        """Progress rate along ``metric`` in units/second.

        The zero-duration contract is explicit (§4.1): an interval no longer
        than :data:`MIN_MEASURABLE_DURATION` — including ``+0.0``, ``-0.0``
        and denormal-range durations that would otherwise manufacture absurd
        finite rates — reads as ``inf`` when the metric made progress and
        ``0.0`` when it did not.  A genuinely negative duration is a clock
        anomaly the §4.1 guards must discard *before* a sample is built, so
        it raises :class:`MetricError` rather than silently aliasing to the
        zero-duration case.

        Raises :class:`MetricError` for an out-of-range metric or a negative
        duration.
        """
        if not 0 <= metric < len(self.deltas):
            raise MetricError(
                f"metric index {metric} out of range for {len(self.deltas)} metrics"
            )
        # ``-0.0 < 0.0`` is False, so a negative-zero duration correctly
        # falls through to the zero-duration branch below.
        if self.duration < 0.0 or math.isnan(self.duration):
            raise MetricError(
                f"duration {self.duration} is not a valid elapsed interval; "
                "backward clock readings must be discarded by the anomaly "
                "guards before rates are read"
            )
        if self.duration <= MIN_MEASURABLE_DURATION:
            return math.inf if self.deltas[metric] > 0 else 0.0
        return self.deltas[metric] / self.duration


class RateCalculator:
    """Tracks cumulative progress counters and emits per-testpoint samples.

    One instance per (thread, metric set).  The first call establishes the
    baseline and yields no sample.
    """

    __slots__ = (
        "_arity",
        "_last_when",
        "_last_counters",
        "_pending",
        "_strict",
        "anomalies",
        "last_anomaly",
    )

    def __init__(self, arity: int, strict: bool = True) -> None:
        if arity < 1:
            raise MetricError(f"metric set must have at least one metric, got {arity}")
        self._arity = arity
        self._strict = strict
        self._last_when: float | None = None
        self._last_counters: tuple[float, ...] | None = None
        #: Progress absorbed from lightweight-gated calls since the last
        #: processed testpoint, already folded into ``_last_counters`` deltas
        #: by virtue of counters being cumulative.  Kept for introspection.
        self._pending = 0
        #: Observations discarded by the lenient guard (``strict=False``).
        self.anomalies = 0
        #: Reason for the most recent discard (``"clock_backward"``,
        #: ``"counter_regression"``, ``"non_finite"``), or ``None``.
        self.last_anomaly: str | None = None

    @property
    def arity(self) -> int:
        """Number of metrics in this metric set."""
        return self._arity

    @property
    def strict(self) -> bool:
        """Whether malformed observations raise instead of being discarded."""
        return self._strict

    @property
    def primed(self) -> bool:
        """Whether a baseline observation exists."""
        return self._last_when is not None

    def observe(self, when: float, counters: Sequence[float]) -> RateSample | None:
        """Process a testpoint at time ``when`` with cumulative ``counters``.

        Returns a :class:`RateSample` with the deltas since the previous
        processed testpoint, or ``None`` on the priming call.

        Raises:
            MetricError: wrong arity always; non-finite or regressing
                counters or a backward timestamp when strict.  When lenient
                (``strict=False``) those anomalies instead discard the
                observation (returning ``None``) and rebase the baseline.
        """
        try:
            values = self._validate(when, counters)
        except MetricError:
            # Arity mismatches are caller bugs, not measurement anomalies:
            # they raise even in lenient mode.
            if self._strict or len(counters) != self._arity:
                raise
            self._discard(when, counters)
            return None
        if self._last_when is None or self._last_counters is None:
            self._last_when = when
            self._last_counters = values
            return None
        duration = when - self._last_when
        deltas = tuple(
            new - old for new, old in zip(values, self._last_counters)
        )
        self._last_when = when
        self._last_counters = values
        self._pending = 0
        return RateSample(when=when, duration=duration, deltas=deltas)

    def rebase(self, when: float, counters: Sequence[float]) -> None:
        """Reset the baseline without emitting a sample.

        Used after a hung-thread episode (section 7.1): the interval spanning
        the hang must not be factored into the progress rate, so the next
        sample starts from here.
        """
        values = self._validate(when, counters)
        self._last_when = when
        self._last_counters = values
        self._pending = 0

    # -- internals -------------------------------------------------------------
    def _discard(self, when: float, counters: Sequence[float]) -> None:
        """Lenient-mode recovery: classify the anomaly and rebase (§4.1).

        A backward timestamp keeps the furthest time seen (the counters,
        being valid, still rebase); a counter regression (an application
        restart resetting its counters) adopts the new counters as the new
        baseline; non-finite garbage leaves the baseline untouched.
        """
        self.anomalies += 1
        self._pending = 0
        values = tuple(float(c) for c in counters)
        finite = all(v == v and v not in (float("inf"), float("-inf")) for v in values)
        if not finite:
            self.last_anomaly = "non_finite"
            return
        if self._last_counters is not None and any(
            new < old for new, old in zip(values, self._last_counters)
        ):
            self.last_anomaly = "counter_regression"
            self._last_counters = values
            if self._last_when is not None:
                self._last_when = max(self._last_when, when)
            return
        self.last_anomaly = "clock_backward"
        self._last_counters = values
        # Keep the furthest time reached: the next valid sample measures
        # from there instead of inventing a negative duration.

    def _validate(self, when: float, counters: Sequence[float]) -> tuple[float, ...]:
        if len(counters) != self._arity:
            raise MetricError(
                f"expected {self._arity} metrics, got {len(counters)}"
            )
        values = tuple(float(c) for c in counters)
        for i, value in enumerate(values):
            if not value == value or value in (float("inf"), float("-inf")):
                raise MetricError(f"metric {i} is not finite: {value}")
        if not when == when or when in (float("inf"), float("-inf")):
            raise MetricError(f"testpoint time is not finite: {when}")
        if self._last_counters is not None:
            for i, (new, old) in enumerate(zip(values, self._last_counters)):
                if new < old:
                    raise MetricError(
                        f"metric {i} regressed from {old} to {new}; cumulative "
                        "progress counters must be monotone"
                    )
        if self._last_when is not None and when < self._last_when:
            raise MetricError(
                f"testpoint time {when} precedes previous testpoint {self._last_when}"
            )
        return values
