"""Single-call application facade (paper section 7.1).

The paper packages MS Manners as a library whose entire interface is one
function::

    Testpoint(int index, int count, int *metrics);

:class:`Manners` is that interface for a single regulated thread, with the
Windows-isms replaced by Python idioms: the metric count is implicit in the
sequence length, and instead of blocking internally the call returns the
number of seconds the caller must pause (0.0 to continue immediately).  The
blocking variants — which *do* sleep, coordinate multiple threads through a
supervisor, and share the machine with other regulated processes through a
superintendent — live in :mod:`repro.realtime` (wall clock) and
:mod:`repro.simos.sim_manners` (simulated clock); both are thin shells over
the same components this facade wires together.

The facade also handles target persistence: given an application identity
and a :class:`~repro.core.persistence.TargetStore`, targets are loaded at
construction (skipping bootstrap on restart) and saved periodically and at
:meth:`Manners.close`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.clock import Clock, MonotonicClock
from repro.core.config import DEFAULT_CONFIG, MannersConfig
from repro.core.controller import TestpointDecision, ThreadRegulator
from repro.core.persistence import TargetStore

__all__ = ["Manners"]


class Manners:
    """Progress-based regulation for one thread, one call at a time.

    Example::

        manners = Manners()
        for item in work:
            process(item)
            done += 1
            pause = manners.testpoint([done])
            if pause > 0.0:
                time.sleep(pause)

    Applications with sequential phases pass a different ``index`` per phase;
    applications progressing along several dimensions concurrently pass all
    metrics in one call (section 4.4).
    """

    #: Default interval between automatic target saves, in clock seconds.
    DEFAULT_SAVE_INTERVAL = 300.0

    __slots__ = ("_regulator", "_store", "_app_id", "_clock", "_save_interval", "_last_save")

    def __init__(
        self,
        config: MannersConfig = DEFAULT_CONFIG,
        clock: Clock | None = None,
        app_id: str | None = None,
        store: TargetStore | None = None,
        save_interval: float = DEFAULT_SAVE_INTERVAL,
    ) -> None:
        if (app_id is None) != (store is None):
            raise ValueError("app_id and store must be provided together")
        self._clock = clock or MonotonicClock()
        self._regulator = ThreadRegulator(config)
        self._app_id = app_id
        self._store = store
        self._save_interval = save_interval
        self._last_save = self._clock.now()
        if store is not None and app_id is not None:
            persisted = store.load(app_id)
            if persisted is not None:
                self._regulator.import_state(persisted)

    # -- the interface -------------------------------------------------------------
    def testpoint(self, metrics: Sequence[float], index: int = 0) -> float:
        """Report cumulative progress; return seconds the caller must pause.

        Args:
            metrics: Cumulative progress counters for metric set ``index``
                (monotone non-decreasing across calls).
            index: Metric-set index; use a distinct index per execution
                phase.

        Returns:
            Seconds to pause before continuing (0.0 = proceed immediately).
        """
        return self.testpoint_detailed(metrics, index).delay

    def testpoint_detailed(
        self, metrics: Sequence[float], index: int = 0
    ) -> TestpointDecision:
        """Like :meth:`testpoint` but returning the full decision record."""
        now = self._clock.now()
        decision = self._regulator.on_testpoint(now, index, metrics)
        if (
            self._store is not None
            and decision.processed
            and now - self._last_save >= self._save_interval
        ):
            self.save_targets()
        return decision

    # -- persistence & lifecycle ----------------------------------------------------
    def save_targets(self) -> None:
        """Persist the current calibration (no-op without a store)."""
        if self._store is not None and self._app_id is not None:
            self._store.save(self._app_id, self._regulator.export_state())
            self._last_save = self._clock.now()

    def close(self) -> None:
        """Save targets one final time (call at application exit)."""
        self.save_targets()

    def __enter__(self) -> "Manners":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------------
    @property
    def regulator(self) -> ThreadRegulator:
        """The underlying per-thread regulator (for inspection/telemetry)."""
        return self._regulator
