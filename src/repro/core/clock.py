"""Clock abstraction decoupling regulation logic from time sources.

The MS Manners control system is pure feedback logic: it consumes timestamped
progress reports and produces suspension decisions.  Nothing in
:mod:`repro.core` ever sleeps or reads the wall clock directly; instead the
embedding substrate supplies a :class:`Clock`:

* :class:`MonotonicClock` — wall-clock time for regulating real processes
  (used by :mod:`repro.realtime`).
* :class:`ManualClock` — an explicitly advanced clock for tests and for the
  discrete-event simulator (:mod:`repro.simos` drives regulators with the
  simulation time).

All clocks report seconds as floats and are required to be monotonic
non-decreasing; :class:`ManualClock` raises
:class:`~repro.core.errors.ClockError` on an attempt to move backwards.
:class:`GuardedClock` wraps an *untrusted* time source (one that may step
backwards or leap) and presents a monotonic, anomaly-counting view of it.
"""

from __future__ import annotations

import math
import time
from typing import Protocol, runtime_checkable

from repro.core.errors import ClockError
from repro.core.sanity import ClockAnomalyGuard

__all__ = ["Clock", "MonotonicClock", "ManualClock", "GuardedClock"]


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now() -> float`` method reporting seconds."""

    def now(self) -> float:
        """Return the current time in seconds.  Must be non-decreasing."""
        ...  # pragma: no cover - protocol stub


class MonotonicClock:
    """Wall-clock seconds from :func:`time.monotonic`.

    The process-wide monotonic clock never goes backwards and is unaffected
    by system clock adjustments, which matters for a regulator that may run
    for days (the paper's calibration experiment runs for 48 hours).
    """

    __slots__ = ()

    def now(self) -> float:
        """Current monotonic wall-clock reading, in seconds."""
        # The one sanctioned wall-clock read in repro.core: this adapter
        # IS the real-time substrate's clock source (everything else must
        # take a Clock so seeded simulations stay deterministic).
        return time.monotonic()  # verify: allow-wall-clock


class ManualClock:
    """A clock advanced explicitly by the caller.

    Used by the test suite and by the simulator bridge.  Supports both
    absolute (:meth:`set`) and relative (:meth:`advance`) movement, and
    refuses to travel backwards.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if not math.isfinite(start):
            raise ClockError(f"clock start must be finite, got {start}")
        self._now = float(start)

    def now(self) -> float:
        """Current manual time, in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds; return the new time."""
        if not math.isfinite(delta) or delta < 0:
            raise ClockError(f"cannot advance clock by {delta}")
        self._now += delta
        return self._now

    def set(self, when: float) -> float:
        """Set the absolute time; must not be earlier than the current time."""
        if not math.isfinite(when) or when < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ManualClock(now={self._now!r})"


class GuardedClock:
    """A monotonic, anomaly-absorbing view of an untrusted time source.

    Wraps any :class:`Clock` (or zero-argument callable) whose readings may
    regress or leap — a wall clock subject to NTP steps, a deserialized
    timestamp stream, a fault-injected source — and guarantees
    non-decreasing output: a backward reading is *clamped* to the furthest
    time seen (and counted), so downstream regulation code never observes
    time running in reverse.  Forward jumps beyond ``max_jump`` pass
    through (time really advanced) but are counted, letting the embedding
    substrate discard the spanning measurement interval (§4.1).
    """

    __slots__ = ("_source", "_guard")

    def __init__(self, source: "Clock", max_jump: float = math.inf) -> None:
        self._source = source
        self._guard = ClockAnomalyGuard(max_jump=max_jump)

    @property
    def backward_steps(self) -> int:
        """Readings clamped because the source moved backwards."""
        return self._guard.backward_steps

    @property
    def forward_jumps(self) -> int:
        """Readings that leapt forward by more than ``max_jump`` seconds."""
        return self._guard.forward_jumps

    def now(self) -> float:
        """Current guarded reading: non-decreasing, never NaN/inf."""
        raw = self._source.now()
        anomaly = self._guard.check(raw)
        if anomaly == "backward" or self._guard.last is None:
            # Clamped: report the furthest plausible time instead.  A
            # guard that has never accepted a reading (all-NaN source)
            # degrades to zero rather than propagating the poison.
            return self._guard.last if self._guard.last is not None else 0.0
        return raw
